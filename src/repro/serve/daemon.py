"""The ``repro serve`` daemon: a persistent graph-analytics server.

One asyncio process holds everything a one-shot CLI run rebuilds from
scratch — mmap'd :class:`CSRGraph` stores with their reverse-CSR
sections, warm MR engines (scratch banks, pooled executors, resident
shard workers), and a result cache — behind a concurrent query
scheduler:

* connections arrive on a unix socket (``--socket``) and/or a TCP port
  (``--port``); the first request line is sniffed, so **both** surfaces
  work on **either** listener: newline-delimited JSON for ``repro
  shell``/:class:`ServeClient`, plain HTTP/1.1 + JSON for everything
  else (``POST /query``, ``GET /healthz|stats|graphs|algorithms``);
* queries run through :func:`repro.runtime.run` on a bounded worker
  pool with per-graph FIFO queues and 429-style backpressure (see
  :mod:`repro.serve.scheduler`);
* results are cached by (store signature, algorithm, canonical config,
  platform) — a repeat query on an unchanged graph is answered from the
  event loop in O(1), never waiting behind a cold run;
* every response carries the full counters snapshot, per-phase
  timings, and ``serve`` metadata (cache hit, queue wait, scheduler
  state), so the server is observable from the first request.

Fault containment: malformed or oversized requests get error responses
without killing the connection; a client disconnecting mid-response
only ends that connection; a broken engine (e.g. a pool worker killed
mid-query) is closed and dropped so the next query rebuilds it; a store
file mutated under a resident graph is detected by its (mtime, size)
signature — the stale residency is retired and its cached results are
purged.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro._version import __version__
from repro.errors import ConfigurationError, ReproError
from repro.runtime.store import GraphStore
from repro.serve.admission import AdmissionController, estimate_query_cost
from repro.serve.cache import ResultCache
from repro.serve.graphs import GraphPool
from repro.serve.protocol import (
    DEFAULT_MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    QueryRequest,
    ServeError,
    cache_key,
    parse_query,
    result_payload,
)
from repro.serve.scheduler import QueryScheduler

__all__ = ["ServerConfig", "ReproServer", "ServerHandle", "start_server_thread"]

#: HTTP methods we sniff an HTTP connection by.
_HTTP_METHODS = (
    b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ", b"PATCH "
)

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can tune, with test-friendly defaults."""

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: Optional[int] = None
    max_workers: int = 2
    max_queue_depth: int = 16
    max_pending: int = 64
    cache_entries: int = 256
    graph_capacity: int = 8
    engine_capacity: int = 4
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES
    store_dir: Optional[str] = None
    ensure_reverse: bool = True
    allow_shutdown: bool = True
    preload: Tuple[str, ...] = field(default_factory=tuple)
    #: Default per-query wall-clock budget in seconds (``None`` = no
    #: deadline).  A request's own ``deadline_s`` overrides it.  On
    #: expiry the query gets a ``degraded: true`` response carrying the
    #: run's last-checkpoint metadata instead of an error.
    query_deadline_s: Optional[float] = None
    #: Seconds shutdown waits for in-flight queries before abandoning
    #: them (queued queries are rejected immediately).
    shutdown_grace_s: float = 5.0
    #: Resident-memory budget in bytes (``None`` = unlimited).  A query
    #: whose estimated cost does not fit alongside the resident graphs
    #: is shed with a structured 503 ``over-budget`` + retry-after.
    memory_budget: Optional[int] = None
    #: Per-client query rate limit in requests/second (``None`` = off);
    #: an exhausted token bucket answers 429 ``rate-limited``.
    rate_limit: Optional[float] = None
    #: Token-bucket burst capacity (default: max(rate_limit, 1)).
    rate_burst: Optional[float] = None

    def __post_init__(self):
        if self.socket_path is None and self.port is None:
            raise ConfigurationError(
                "repro serve needs --socket and/or --port"
            )
        if self.query_deadline_s is not None and not self.query_deadline_s > 0:
            raise ConfigurationError("query_deadline_s must be positive")
        if not self.shutdown_grace_s >= 0:
            raise ConfigurationError("shutdown_grace_s must be >= 0")
        if self.memory_budget is not None and not self.memory_budget > 0:
            raise ConfigurationError("memory_budget must be positive")
        if self.rate_limit is not None and not self.rate_limit > 0:
            raise ConfigurationError("rate_limit must be positive")


class ReproServer:
    """The daemon; create, then ``asyncio.run(server.serve_forever())``."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.store = GraphStore(
            cache_dir=config.store_dir, capacity=config.graph_capacity
        )
        self.graphs = GraphPool(
            self.store,
            capacity=config.graph_capacity,
            engine_capacity=config.engine_capacity,
            ensure_reverse=config.ensure_reverse,
        )
        self.cache = ResultCache(capacity=config.cache_entries)
        self.scheduler = QueryScheduler(
            max_workers=config.max_workers,
            max_queue_depth=config.max_queue_depth,
            max_pending=config.max_pending,
        )
        self.admission = AdmissionController(
            memory_budget=config.memory_budget,
            rate_limit=config.rate_limit,
            rate_burst=config.rate_burst,
        )
        self.started_at: Optional[float] = None
        self.bound_port: Optional[int] = None
        self.connections = 0
        self.requests = 0
        self._servers = []
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Set the moment shutdown starts: new queries are rejected with
        #: a clean 503 ``shutting-down`` error instead of racing the
        #: closing scheduler.
        self._closing = False
        #: Open connection writers, closed explicitly at shutdown — a
        #: handler cancelled by the dying event loop never finishes its
        #: own close, which would leave clients blocked on a socket
        #: nobody will ever write to.
        self._writers: set = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.scheduler.start(self._loop)
        # Stream limit above the request bound so an oversized line is
        # diagnosed by our own check (413 + keep the connection) before
        # the reader gives up on it.
        limit = self.config.max_request_bytes + 65536
        if self.config.socket_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_connection,
                    path=self.config.socket_path,
                    limit=limit,
                )
            )
        if self.config.port is not None:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=limit,
            )
            self.bound_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        self.started_at = time.time()
        for path in self.config.preload:
            await self._loop.run_in_executor(
                None, functools.partial(self.graphs.resolve, path)
            )

    async def serve_forever(self) -> None:
        if not self._servers:
            await self.start()
        await self._stop_event.wait()
        await self._shutdown()

    def request_shutdown(self) -> None:
        """Signal the daemon to stop (threadsafe)."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed — nothing left to stop

    async def _shutdown(self) -> None:
        self._closing = True
        # Unlink the unix socket path *before* touching the listener: a
        # unix connection that only ever reaches the listen backlog gets
        # no RST when the listening fd closes, so a client dialing into
        # the shutdown race would block forever on a connected-but-
        # never-accepted socket.  With the path gone, late dialers fail
        # fast (ENOENT); dialers already queued are still accepted below
        # — the listeners stay open through the drain — and answered
        # with the structured 503 ``shutting-down`` by ``_dispatch``.
        if self.config.socket_path is not None:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
        await self.scheduler.close(grace_s=self.config.shutdown_grace_s)
        # One tick so connections accepted during the drain reach
        # ``_dispatch`` and flush their rejection before the hang-up.
        await asyncio.sleep(0)
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        # Hang up every surviving connection while the loop can still
        # flush the FIN: connections accepted in the close race (or
        # idle keep-alives) must see EOF, not block forever.
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:  # pragma: no cover - already torn down
                pass
        for writer in list(self._writers):
            try:
                await writer.wait_closed()
            except Exception:
                pass
        self._writers.clear()
        self.graphs.close()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader, writer) -> None:
        self.connections += 1
        self._writers.add(writer)
        try:
            first = await self._read_line(reader)
            if first is None or first == b"":
                return
            if first == b"__TOO_LARGE__":
                await self._send_line(
                    writer,
                    ServeError.too_large("request line too large").as_response(),
                )
                return
            if any(first.startswith(m) for m in _HTTP_METHODS):
                await self._handle_http(reader, writer, first)
            else:
                await self._handle_ndjson(reader, writer, first)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_line(self, reader) -> Optional[bytes]:
        """One request line, or the too-large sentinel, or ``None`` at EOF."""
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return b"__TOO_LARGE__"
        return line

    async def _send_line(self, writer, obj: Dict[str, Any]) -> None:
        writer.write(json.dumps(obj).encode() + b"\n")
        await writer.drain()

    # ------------------------------------------------------------------ #
    # NDJSON surface
    # ------------------------------------------------------------------ #

    async def _handle_ndjson(self, reader, writer, first: bytes) -> None:
        line: Optional[bytes] = first
        while True:
            if line is None:
                line = await self._read_line(reader)
            if line is None or line == b"":
                return  # EOF
            if line == b"__TOO_LARGE__":
                # The reader lost line sync; answer and drop the
                # connection (the client cannot tell where its next
                # request boundary is either).
                await self._send_line(
                    writer,
                    ServeError.too_large(
                        "request exceeds stream limit"
                    ).as_response(),
                )
                return
            if len(line) > self.config.max_request_bytes:
                await self._send_line(
                    writer,
                    ServeError.too_large(
                        f"request of {len(line)} bytes exceeds the "
                        f"{self.config.max_request_bytes}-byte limit"
                    ).as_response(),
                )
                line = None
                continue
            if not line.strip():
                line = None
                continue
            response = await self._dispatch_raw(line)
            await self._send_line(writer, response)
            line = None

    async def _dispatch_raw(self, line: bytes) -> Dict[str, Any]:
        self.requests += 1
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            return ServeError.bad_request(f"invalid JSON: {exc}").as_response()
        if not isinstance(obj, dict):
            return ServeError.bad_request(
                "request must be a JSON object"
            ).as_response()
        request_id = obj.get("id")
        try:
            result = await self._dispatch(obj)
        except ServeError as exc:
            return exc.as_response(request_id)
        except Exception as exc:  # pragma: no cover - defensive
            return ServeError.internal(
                f"{type(exc).__name__}: {exc}"
            ).as_response(request_id)
        response: Dict[str, Any] = {"ok": True, "result": result}
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #

    async def _dispatch(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        op = obj.get("op", "query")
        if self._closing and op in ("query", "open"):
            raise ServeError.shutting_down(
                "server is shutting down; not accepting new queries"
            )
        if op == "ping":
            return {"pong": True, "version": __version__,
                    "protocol": PROTOCOL_VERSION}
        if op == "stats":
            return self.stats()
        if op == "graphs":
            return {"graphs": self.graphs.infos()}
        if op == "algorithms":
            return {"algorithms": self._algorithms()}
        if op == "open":
            return await self._op_open(obj)
        if op == "shutdown":
            if not self.config.allow_shutdown:
                raise ServeError.bad_request(
                    "shutdown is disabled on this server"
                )
            self.request_shutdown()
            return {"stopping": True}
        if op == "query":
            return await self._op_query(obj)
        raise ServeError.bad_request(
            f"unknown op {op!r}; expected one of query|ping|stats|graphs|"
            "algorithms|open|shutdown"
        )

    def _algorithms(self):
        from repro.runtime import REGISTRY

        return [
            {
                "name": spec.name,
                "summary": spec.summary,
                "supports_executor": spec.supports_executor,
                "options": list(spec.option_names),
            }
            for spec in sorted(REGISTRY, key=lambda s: s.name)
        ]

    async def _op_open(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        path = obj.get("graph")
        if not isinstance(path, str) or not path:
            raise ServeError.bad_request("'graph' must be a non-empty path")
        key = self.graphs.path_key(path)

        def job():
            entry, retired = self.graphs.resolve(path)
            if retired is not None:
                self.cache.invalidate_signature(retired)
            return entry.info()

        info, _wait = await self.scheduler.submit(key, job)
        return {"graph": info}

    async def _op_query(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        request = parse_query(obj)
        client = obj.get("client")
        self.admission.check_rate(client if isinstance(client, str) else None)
        key = self.graphs.path_key(request.graph)

        # Admission-time cache probe: a hit is answered from the event
        # loop without touching the scheduler, so repeats on an
        # unchanged graph are O(1) even while cold queries queue.
        signature = self.graphs.peek_signature(request.graph)
        if signature is not None:
            cached = self.cache.get(cache_key(signature, request))
            if cached is not None:
                return self._attach_serve(cached, cache_hit=True, wait=0.0)

        # Memory admission: a cold query must fit the budget alongside
        # what is already resident (cache hits above cost nothing, so
        # they are never shed).
        if self.admission.memory_budget is not None:
            cost = estimate_query_cost(
                key, ensure_reverse=self.config.ensure_reverse
            )
            if cost is None:
                # No binary store yet: estimate from the source file
                # the residency path would convert.
                cost = estimate_query_cost(
                    request.graph, ensure_reverse=self.config.ensure_reverse
                )
            self.admission.check_memory(
                cost, self.graphs.resident_bytes(exclude=key)
            )

        deadline = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.query_deadline_s
        )
        job = functools.partial(self._execute_query, request)
        try:
            (payload, was_hit), wait = await self.scheduler.submit(
                key, job, deadline_s=deadline
            )
        except asyncio.TimeoutError:
            return self._degraded_response(request, deadline)
        return self._attach_serve(payload, cache_hit=was_hit, wait=wait)

    def _degraded_response(
        self, request: QueryRequest, deadline: Optional[float]
    ) -> Dict[str, Any]:
        """The deadline-expired answer: degraded metadata, not a 500.

        Reports how far the (still-running or abandoned) computation
        got via the run's last durable checkpoint — round reached,
        frontier size — when the query's algorithm checkpoints to the
        graph's ``<store>.ckpt`` tree; ``checkpoint`` is ``null``
        otherwise.
        """
        checkpoint = None
        try:
            from repro.runtime.checkpoint import (
                checkpoint_dir_for,
                latest_metadata,
            )

            signature = self.graphs.peek_signature(request.graph)
            if signature is None:
                signature = self.store.signature(request.graph)
            ckpt_dir = checkpoint_dir_for(
                request.algorithm, request.config, store_path=signature[0]
            )
            if ckpt_dir is not None:
                checkpoint = latest_metadata(ckpt_dir)
        except Exception:
            checkpoint = None  # metadata is best-effort, never an error
        return {
            "degraded": True,
            "reason": "deadline",
            "deadline_s": deadline,
            "algorithm": request.algorithm,
            "graph": request.graph,
            "checkpoint": checkpoint,
            "serve": {
                "cache_hit": False,
                "pending": self.scheduler.pending,
                "running": self.scheduler.running,
            },
        }

    def _attach_serve(
        self, payload: Dict[str, Any], *, cache_hit: bool, wait: float
    ) -> Dict[str, Any]:
        out = dict(payload)  # cached payloads are immutable; copy first
        out["serve"] = {
            "cache_hit": cache_hit,
            "queue_wait_s": round(wait, 6),
            "pending": self.scheduler.pending,
            "running": self.scheduler.running,
        }
        return out

    # ------------------------------------------------------------------ #
    # Query execution (worker thread)
    # ------------------------------------------------------------------ #

    def _execute_query(
        self, request: QueryRequest
    ) -> Tuple[Dict[str, Any], bool]:
        """Resolve → cache-check → run → cache.  Returns (payload, hit)."""
        from repro.runtime import run

        entry, retired = self.graphs.resolve(request.graph)
        if retired is not None:
            self.cache.invalidate_signature(retired)
        key = cache_key(entry.signature, request)
        cached = self.cache.get(key)
        if cached is not None:
            # A twin query completed while this one waited in the queue.
            return cached, True

        from repro.errors import WorkerFailure

        with entry.lock:
            entry.queries += 1

            def _run_once():
                engine = entry.get_engine(
                    request.executor, request.workers, request.shards
                )
                return run(
                    request.algorithm,
                    entry.graph,
                    config=request.config,
                    executor=request.executor,
                    workers=request.workers,
                    shards=request.shards,
                    engine=engine,
                    store=self.store,
                    **request.option_dict(),
                )

            try:
                try:
                    result = _run_once()
                except WorkerFailure:
                    # The driver's own recovery loop is exhausted, so
                    # the warm engine's pool is poisoned: drop it and
                    # retry exactly once on a fresh engine before
                    # surfacing an error.
                    entry.drop_engine(
                        request.executor, request.workers, request.shards
                    )
                    result = _run_once()
            except KeyError as exc:
                raise ServeError.not_found(str(exc.args[0]) if exc.args else str(exc))
            except ConfigurationError as exc:
                raise ServeError.bad_request(str(exc))
            except WorkerFailure as exc:
                entry.drop_engine(
                    request.executor, request.workers, request.shards
                )
                raise ServeError.internal(f"{type(exc).__name__}: {exc}")
            except ReproError as exc:
                raise ServeError.bad_request(f"{type(exc).__name__}: {exc}")
            except Exception as exc:
                # A broken engine (killed pool worker, poisoned shard
                # state) must not poison later queries: close and drop
                # it so the next run rebuilds from scratch.
                entry.drop_engine(
                    request.executor, request.workers, request.shards
                )
                raise ServeError.internal(f"{type(exc).__name__}: {exc}")

        payload = result_payload(result, entry.signature)
        self.cache.put(key, payload)
        return payload, False

    # ------------------------------------------------------------------ #
    # HTTP surface
    # ------------------------------------------------------------------ #

    async def _handle_http(self, reader, writer, first: bytes) -> None:
        try:
            method, target = self._parse_request_line(first)
        except ServeError as exc:
            await self._send_http(writer, exc.status, exc.as_response())
            return
        headers: Dict[str, str] = {}
        while True:
            line = await self._read_line(reader)
            if line in (None, b"__TOO_LARGE__"):
                return
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                length = int(length)
            except ValueError:
                await self._send_http(
                    writer, 400,
                    ServeError.bad_request("bad Content-Length").as_response(),
                )
                return
            if length > self.config.max_request_bytes:
                await self._send_http(
                    writer, 413,
                    ServeError.too_large(
                        f"body of {length} bytes exceeds the "
                        f"{self.config.max_request_bytes}-byte limit"
                    ).as_response(),
                )
                return
            body = await reader.readexactly(length)

        self.requests += 1
        status, response = await self._route_http(method, target, body)
        await self._send_http(writer, status, response)

    def _parse_request_line(self, line: bytes) -> Tuple[str, str]:
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ServeError.bad_request("malformed HTTP request line")
        return parts[0], parts[1]

    async def _route_http(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        try:
            if method in ("GET", "HEAD"):
                if path in ("/", "/healthz"):
                    return 200, {"ok": True, "version": __version__,
                                 "protocol": PROTOCOL_VERSION}
                if path == "/stats":
                    return 200, {"ok": True, "result": self.stats()}
                if path == "/graphs":
                    return 200, {"ok": True,
                                 "result": {"graphs": self.graphs.infos()}}
                if path == "/algorithms":
                    return 200, {
                        "ok": True,
                        "result": {"algorithms": self._algorithms()},
                    }
                raise ServeError.not_found(f"no such resource: {path}")
            if method == "POST":
                if path in ("/query", "/open", "/shutdown"):
                    try:
                        obj = json.loads(body) if body else {}
                    except json.JSONDecodeError as exc:
                        raise ServeError.bad_request(f"invalid JSON body: {exc}")
                    if not isinstance(obj, dict):
                        raise ServeError.bad_request(
                            "body must be a JSON object"
                        )
                    obj["op"] = path.lstrip("/")
                    result = await self._dispatch(obj)
                    return 200, {"ok": True, "result": result}
                raise ServeError.not_found(f"no such resource: {path}")
            return 405, ServeError(
                "method-not-allowed", f"{method} not supported", 405
            ).as_response()
        except ServeError as exc:
            return exc.status, exc.as_response()
        except Exception as exc:  # pragma: no cover - defensive
            err = ServeError.internal(f"{type(exc).__name__}: {exc}")
            return err.status, err.as_response()

    async def _send_http(
        self, writer, status: int, payload: Dict[str, Any]
    ) -> None:
        body = json.dumps(payload).encode()
        reason = _HTTP_REASONS.get(status, "OK")
        retry_after = ""
        retry_after_s = (payload.get("error") or {}).get("retry_after_s")
        if retry_after_s is not None:
            # HTTP Retry-After is integral seconds; round up so a
            # compliant client never retries before the hint.
            import math

            retry_after = (
                f"Retry-After: {max(1, math.ceil(retry_after_s))}\r\n"
            )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_after}"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        return {
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.started_at, 3)
            if self.started_at
            else 0.0,
            "connections": self.connections,
            "requests": self.requests,
            "scheduler": self.scheduler.snapshot(),
            "admission": self.admission.snapshot(),
            "cache": self.cache.snapshot(),
            "graphs": self.graphs.snapshot(),
        }


# --------------------------------------------------------------------- #
# Thread harness (tests, benchmarks, and the shell's --spawn mode)
# --------------------------------------------------------------------- #


class ServerHandle:
    """A running daemon on a background thread."""

    def __init__(self, server: ReproServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def socket_path(self) -> Optional[str]:
        return self.server.config.socket_path

    @property
    def port(self) -> Optional[int]:
        return self.server.bound_port

    def stop(self, timeout: float = 30.0) -> None:
        if not self.thread.is_alive():
            return
        self.server.request_shutdown()
        self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - hang diagnostics
            raise RuntimeError("serve daemon did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_server_thread(
    config: ServerConfig, *, start_timeout: float = 30.0
) -> ServerHandle:
    """Boot a :class:`ReproServer` on a daemon thread and wait until it
    accepts connections.  The returned handle stops it cleanly."""
    server = ReproServer(config)
    started = threading.Event()
    failure: list = []

    async def main():
        try:
            await server.start()
        except Exception as exc:
            failure.append(exc)
            started.set()
            return
        started.set()
        await server._stop_event.wait()
        await server._shutdown()

    thread = threading.Thread(
        target=lambda: asyncio.run(main()), name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(start_timeout):  # pragma: no cover - hang diagnostics
        raise RuntimeError("serve daemon did not start in time")
    if failure:
        thread.join(5.0)
        raise failure[0]
    return ServerHandle(server, thread)
