"""The daemon's result cache: O(1) repeats on unchanged graphs.

Keys come from :func:`repro.serve.protocol.cache_key` — (store
signature, algorithm, canonical config, execution platform, options) —
so the cache invalidates itself exactly when the runtime would produce
different bytes: a mutated store file changes its (mtime, size)
signature and therefore every key derived from it; equivalent spellings
of one configuration collapse to one entry; differing configurations
never collide (the property suite in ``tests/serve`` proves both).

Entries store the JSON-safe ``result`` payload dict.  Payloads are
treated as immutable after insertion (the daemon attaches per-response
``serve`` metadata to a *shallow copy*), so hits are literal O(1)
dictionary reads — no recomputation, no re-serialization of arrays.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded, thread-safe LRU of query-result payloads."""

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("ResultCache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` (counted either way)."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Insert (or refresh) ``key``; evicts the LRU tail past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_signature(self, signature) -> int:
        """Drop every entry computed against ``signature``; returns count.

        Signature keys are baked into the opaque hash, so entries carry
        their signature in the payload's ``graph.signature`` field —
        this is the eager eviction path the daemon uses when it notices
        a store file changed under a resident graph (lazy invalidation
        via key mismatch would work too, but would let dead entries
        occupy LRU slots).
        """
        want = list(signature)
        with self._lock:
            stale = [
                key
                for key, payload in self._entries.items()
                if payload.get("graph", {}).get("signature") == want
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
