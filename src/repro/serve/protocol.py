"""Wire protocol of the ``repro serve`` daemon.

One request/response shape serves both surfaces:

* **NDJSON** — each line of a stream connection is one JSON request
  object; the server answers with one JSON line per request, in order.
  This is what :class:`~repro.serve.client.ServeClient` and the
  ``repro shell`` REPL speak.
* **HTTP/JSON** — ``POST /query`` takes the same request object as the
  body and returns the same response object; read-only ops map to
  ``GET`` routes (``/healthz``, ``/stats``, ``/graphs``,
  ``/algorithms``).  The daemon sniffs the first request line, so both
  protocols work on either listener.

A request is a JSON object with an ``op`` field::

    {"op": "query", "id": 7, "graph": "road.gr", "algorithm": "diameter",
     "config": {"tau": 64, "seed": 1}, "executor": "vector",
     "options": {"exact": false}}

``ping``/``stats``/``graphs``/``algorithms``/``open``/``shutdown`` take
only their documented extras.  Every response carries ``ok`` plus
either ``result`` (with ``counters``, ``timings``, and ``serve``
metadata — cache hit, queue wait, scheduler state) or ``error``
(``{"kind", "status", "message"}``; ``status`` follows HTTP semantics,
e.g. 429 for backpressure rejections).

This module is deliberately transport-free: request validation,
:class:`ClusterConfig` canonicalization, result-cache keys, and the
JSON-safe serialization of a :class:`~repro.runtime.runner.RunResult`
(including the bit-stable ``digest`` the parity suite compares against
direct ``runtime.run()`` output) all live here so the daemon, client,
and tests share one source of truth.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.config import ClusterConfig
from repro.errors import ConfigurationError

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_REQUEST_BYTES",
    "ServeError",
    "QueryRequest",
    "parse_query",
    "canonical_config",
    "cache_key",
    "result_digest",
    "result_payload",
    "jsonify",
]

PROTOCOL_VERSION = 1

#: Default upper bound on one request line / HTTP body, in bytes.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20

#: Ops a request may carry (queries plus the small control surface).
OPS = ("query", "ping", "stats", "graphs", "algorithms", "open", "shutdown")


class ServeError(Exception):
    """A protocol-level failure with an HTTP-compatible status code.

    ``kind`` is a stable machine-readable tag (clients switch on it),
    ``status`` the HTTP status the daemon maps it to on the JSON
    surface; the NDJSON surface carries both verbatim.
    """

    def __init__(
        self,
        kind: str,
        message: str,
        status: int = 400,
        retry_after_s: Optional[float] = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.status = status
        #: When set, clients should retry after this many seconds; the
        #: HTTP surface maps it onto a ``Retry-After`` header.
        self.retry_after_s = retry_after_s

    @classmethod
    def bad_request(cls, message: str) -> "ServeError":
        return cls("bad-request", message, 400)

    @classmethod
    def not_found(cls, message: str) -> "ServeError":
        return cls("not-found", message, 404)

    @classmethod
    def too_large(cls, message: str) -> "ServeError":
        return cls("too-large", message, 413)

    @classmethod
    def busy(cls, message: str) -> "ServeError":
        return cls("busy", message, 429)

    @classmethod
    def shutting_down(cls, message: str) -> "ServeError":
        return cls("shutting-down", message, 503)

    @classmethod
    def over_budget(
        cls, message: str, retry_after_s: float = 2.0
    ) -> "ServeError":
        """Memory-admission shed: 503 with a retry hint, never an OOM."""
        return cls("over-budget", message, 503, retry_after_s=retry_after_s)

    @classmethod
    def rate_limited(
        cls, message: str, retry_after_s: float = 1.0
    ) -> "ServeError":
        return cls("rate-limited", message, 429, retry_after_s=retry_after_s)

    @classmethod
    def internal(cls, message: str) -> "ServeError":
        return cls("internal", message, 500)

    def as_response(self, request_id=None) -> Dict[str, Any]:
        error: Dict[str, Any] = {
            "kind": self.kind,
            "status": self.status,
            "message": str(self),
        }
        if self.retry_after_s is not None:
            error["retry_after_s"] = self.retry_after_s
        resp: Dict[str, Any] = {"ok": False, "error": error}
        if request_id is not None:
            resp["id"] = request_id
        return resp


# --------------------------------------------------------------------- #
# Request parsing
# --------------------------------------------------------------------- #

#: ``config`` keys a query may override, mirroring ClusterConfig fields.
_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(ClusterConfig))
#: Fields the request carries at top level, not inside ``config``.
_TOP_LEVEL_CONFIG = frozenset({"executor", "shards"})


@dataclasses.dataclass(frozen=True)
class QueryRequest:
    """A validated ``op: query`` request, ready for the scheduler.

    ``config`` is the fully-resolved :class:`ClusterConfig` (request
    overrides applied on top of the CLI-equivalent defaults), so two
    requests that spell the same parameters differently compare equal
    here — the cache key is derived from this object, never from the
    raw request JSON.
    """

    graph: str
    algorithm: str
    config: ClusterConfig
    executor: Optional[str] = None
    workers: Optional[int] = None
    shards: Optional[int] = None
    options: Tuple[Tuple[str, Any], ...] = ()
    #: Per-query wall-clock budget (seconds); expiry gets a ``degraded``
    #: response instead of an answer.  Deliberately NOT part of
    #: :func:`cache_key` — the deadline changes when an answer arrives,
    #: never what the answer is, so a patient twin query must hit the
    #: cache entry an earlier run produced.
    deadline_s: Optional[float] = None

    def option_dict(self) -> Dict[str, Any]:
        return dict(self.options)


def parse_query(obj: Mapping[str, Any]) -> QueryRequest:
    """Validate a raw ``query`` request object into a :class:`QueryRequest`.

    Raises :class:`ServeError` (``bad-request``) on anything malformed:
    missing/empty fields, unknown config keys, non-JSON-native types.
    Algorithm existence and executor validity are checked later against
    the registry by the execution path (so the error carries the
    registry's message).
    """
    if not isinstance(obj, Mapping):
        raise ServeError.bad_request("request must be a JSON object")
    graph = obj.get("graph")
    if not isinstance(graph, str) or not graph:
        raise ServeError.bad_request("'graph' must be a non-empty path string")
    algorithm = obj.get("algorithm")
    if not isinstance(algorithm, str) or not algorithm:
        raise ServeError.bad_request("'algorithm' must be a non-empty string")

    raw_config = obj.get("config", {})
    if not isinstance(raw_config, Mapping):
        raise ServeError.bad_request("'config' must be a JSON object")
    unknown = set(raw_config) - _CONFIG_FIELDS - _TOP_LEVEL_CONFIG
    if unknown:
        raise ServeError.bad_request(
            "unknown config key(s): " + ", ".join(sorted(unknown))
        )

    executor = obj.get("executor", raw_config.get("executor"))
    if executor is not None and not isinstance(executor, str):
        raise ServeError.bad_request("'executor' must be a string or null")

    def _int_or_none(name, value):
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ServeError.bad_request(f"'{name}' must be an integer")
        return value

    workers = _int_or_none("workers", obj.get("workers"))
    shards = _int_or_none("shards", obj.get("shards", raw_config.get("shards")))

    deadline_s = obj.get("deadline_s")
    if deadline_s is not None:
        if (
            isinstance(deadline_s, bool)
            or not isinstance(deadline_s, (int, float))
            or not deadline_s > 0
        ):
            raise ServeError.bad_request(
                "'deadline_s' must be a positive number"
            )
        deadline_s = float(deadline_s)

    options = obj.get("options", {})
    if not isinstance(options, Mapping):
        raise ServeError.bad_request("'options' must be a JSON object")
    for key, value in options.items():
        if not isinstance(key, str):
            raise ServeError.bad_request("option names must be strings")
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise ServeError.bad_request(
                f"option {key!r} must be a JSON scalar"
            )

    overrides = {
        k: raw_config[k]
        for k in raw_config
        if k in _CONFIG_FIELDS and k not in _TOP_LEVEL_CONFIG
    }
    # Same defaults as the CLI / runtime.run with no explicit config.
    seed = obj.get("seed")
    tau = obj.get("tau")
    if seed is not None:
        overrides.setdefault("seed", seed)
    if tau is not None:
        overrides.setdefault("tau", tau)
    overrides.setdefault("seed", 0)
    overrides.setdefault("stage_threshold_factor", 1.0)
    try:
        config = ClusterConfig(**overrides)
    except (ConfigurationError, TypeError) as exc:
        raise ServeError.bad_request(f"invalid config: {exc}") from None

    return QueryRequest(
        graph=graph,
        algorithm=algorithm,
        config=config,
        executor=executor,
        workers=workers,
        shards=shards,
        options=tuple(sorted(options.items())),
        deadline_s=deadline_s,
    )


# --------------------------------------------------------------------- #
# Canonicalization and cache keys
# --------------------------------------------------------------------- #


def canonical_config(config: ClusterConfig) -> Dict[str, Any]:
    """A :class:`ClusterConfig` as a canonical, JSON-stable dict.

    Every dataclass field appears, sorted by name, with floats rendered
    through ``repr`` (bit-stable) — two configs produce the same
    canonical form iff they are equal, so equivalent spellings of the
    same parameters (defaults made explicit, ints for floats) collapse
    to one cache key and differing configs never collide.
    """
    out: Dict[str, Any] = {}
    for field in sorted(_CONFIG_FIELDS):
        out[field] = _canonical_value(getattr(config, field))
    return out


def _canonical_value(value: Any) -> Any:
    """One JSON-stable spelling per *equality class* of a config value.

    Frozen-dataclass equality is Python equality, so ``gamma=1`` and
    ``gamma=1.0`` are the *same* config and must share a cache key:
    integral numbers canonicalize to ``int`` (exact at any magnitude —
    going through ``float`` could alias distinct large ints), all other
    floats to their ``repr`` (bit-stable, round-trippable).
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return repr(value)
    return repr(value)  # pragma: no cover - no other field kinds today


def cache_key(
    signature: Tuple[str, int, int],
    request: QueryRequest,
) -> str:
    """The result-cache key of a query against one store signature.

    Keyed by everything that can change the response payload: the store
    file identity (path, mtime_ns, size — mutating the graph invalidates
    every cached result), the algorithm, the canonicalized config, the
    execution platform (executor/workers/shards change counters such as
    bytes shipped and the critical-path model, and ``workers`` is part
    of the response), and the spec options.
    """
    blob = json.dumps(
        {
            "sig": list(signature),
            "algorithm": request.algorithm,
            "config": canonical_config(request.config),
            "executor": request.executor,
            "workers": request.workers,
            "shards": request.shards,
            "options": [
                [k, _canonical_value(v)] for k, v in request.options
            ],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------------- #
# Result serialization
# --------------------------------------------------------------------- #


def jsonify(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays into JSON-native types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _hash_arrays(*arrays: np.ndarray) -> "hashlib._Hash":
    digest = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest


def result_digest(raw: Any) -> str:
    """A bit-stable digest of an algorithm's full result object.

    Responses do not ship whole clusterings (float64[n] arrays) over the
    wire; they ship this digest instead, and the concurrency parity
    suite recomputes it from a direct ``runtime.run()`` to prove the
    served result is bit-identical — same centers, same distances, not
    merely the same headline value.
    """
    # Clustering-shaped objects (center + dist_to_center arrays).
    center = getattr(raw, "center", None)
    dist = getattr(raw, "dist_to_center", None)
    if isinstance(center, np.ndarray) and isinstance(dist, np.ndarray):
        return _hash_arrays(center, dist).hexdigest()
    # DiameterEstimate: value + its clustering.
    clustering = getattr(raw, "clustering", None)
    if clustering is not None and hasattr(clustering, "center"):
        digest = _hash_arrays(
            np.asarray(clustering.center), np.asarray(clustering.dist_to_center)
        )
        digest.update(repr(float(getattr(raw, "value", 0.0))).encode())
        return digest.hexdigest()
    # SSSP distances.
    dist = getattr(raw, "dist", None)
    if isinstance(dist, np.ndarray):
        return _hash_arrays(dist).hexdigest()
    # Eccentricity bounds.
    lower = getattr(raw, "lower", None)
    upper = getattr(raw, "upper", None)
    if isinstance(lower, np.ndarray) and isinstance(upper, np.ndarray):
        return _hash_arrays(lower, upper).hexdigest()
    # Anything else (floats, component lists): canonical JSON of its
    # jsonified form.
    if isinstance(raw, (list, tuple)):
        rows = [
            dataclasses.asdict(r) if dataclasses.is_dataclass(r) else r
            for r in raw
        ]
        blob = json.dumps(jsonify(rows), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()
    blob = json.dumps(jsonify(raw), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def result_payload(result, signature: Tuple[str, int, int]) -> Dict[str, Any]:
    """The JSON-safe ``result`` section of a query response.

    Carries everything ``runtime.run`` reports — headline value, spec
    metrics, the full :class:`Counters` snapshot, per-phase wall-clock
    timings — plus the result digest and the graph's store signature, so
    a client can tell *which version* of a mutable graph answered.
    The ``serve`` metadata (cache/queue/scheduler state) is attached by
    the daemon per response, never cached.
    """
    graph = result.graph
    return {
        "algorithm": result.algorithm,
        "value": jsonify(result.value),
        "metrics": jsonify(dict(result.metrics)),
        "counters": jsonify(result.counters.snapshot()),
        "timings": jsonify(result.timings),
        "executor": result.executor,
        "workers": result.workers,
        "kernels": jsonify(result.counters.impl_snapshot()) or None,
        "elapsed_s": round(float(result.elapsed), 6),
        "digest": result_digest(result.raw),
        "graph": {
            "n": int(graph.num_nodes) if graph is not None else None,
            "m": int(graph.num_edges) if graph is not None else None,
            "signature": list(signature),
        },
    }
