"""Structural operations on :class:`CSRGraph` instances.

Connected components, induced subgraphs, degree statistics, and the
cartesian product used to build the paper's ``roads(S)`` family (a linear
array of ``S`` nodes crossed with a road network).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph

__all__ = [
    "connected_components",
    "largest_connected_component",
    "induced_subgraph",
    "degree_histogram",
    "total_weight",
    "cartesian_product",
    "disjoint_union",
    "relabeled",
]


def connected_components(graph: CSRGraph) -> Tuple[int, np.ndarray]:
    """Label connected components.

    Returns ``(count, labels)`` where ``labels[u]`` is the 0-based component
    id of node ``u``.  Implemented as a vectorized label-propagation
    (pointer-jumping style min-label frontier expansion) so it scales to
    millions of edges without Python-level recursion.
    """
    n = graph.num_nodes
    labels = np.arange(n, dtype=np.int64)
    if graph.num_arcs == 0:
        return n, labels
    src = graph.arc_sources()
    dst = graph.indices
    while True:
        # Propagate the minimum label across every arc simultaneously.
        candidate = labels.copy()
        np.minimum.at(candidate, dst, labels[src])
        np.minimum.at(candidate, src, labels[dst])
        if np.array_equal(candidate, labels):
            break
        labels = candidate
        # Pointer-jump: compress label chains so convergence takes
        # O(log n) sweeps on path-like graphs instead of O(n).
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
    # Renumber labels to 0..k-1.
    uniq, renumbered = np.unique(labels, return_inverse=True)
    return len(uniq), renumbered.astype(np.int64)


def largest_connected_component(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """Extract the largest connected component.

    Returns ``(subgraph, node_ids)`` where ``node_ids[i]`` is the original
    id of subgraph node ``i``.  Mirrors the standard preprocessing step for
    diameter experiments (diameter is defined per component).
    """
    count, labels = connected_components(graph)
    if count == 1:
        return graph, np.arange(graph.num_nodes, dtype=np.int64)
    sizes = np.bincount(labels, minlength=count)
    big = int(np.argmax(sizes))
    nodes = np.flatnonzero(labels == big)
    return induced_subgraph(graph, nodes), nodes


def induced_subgraph(graph: CSRGraph, nodes: np.ndarray) -> CSRGraph:
    """Subgraph induced by ``nodes`` (renumbered 0..len(nodes)-1)."""
    nodes = np.asarray(nodes, dtype=np.int64)
    n = graph.num_nodes
    remap = np.full(n, -1, dtype=np.int64)
    remap[nodes] = np.arange(len(nodes), dtype=np.int64)
    u, v, w = graph.edge_arrays()
    keep = (remap[u] >= 0) & (remap[v] >= 0)
    return from_edges(remap[u[keep]], remap[v[keep]], w[keep], len(nodes))


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Histogram ``h`` with ``h[d]`` = number of nodes of degree ``d``."""
    return np.bincount(graph.degrees)


def total_weight(graph: CSRGraph) -> float:
    """Sum of undirected edge weights (upper bound on any distance)."""
    return float(graph.weights.sum()) / 2.0


def disjoint_union(*graphs: CSRGraph) -> CSRGraph:
    """Disjoint union: node ids of graph ``i`` shift by the sizes before it.

    The staple for building controlled disconnected instances (the
    per-component diameter definition, singleton handling, quotient
    behaviour on multiple components are all tested through it).
    """
    us = []
    vs = []
    ws = []
    offset = 0
    for g in graphs:
        u, v, w = g.edge_arrays()
        us.append(u + offset)
        vs.append(v + offset)
        ws.append(w)
        offset += g.num_nodes
    if not us:
        return from_edges(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0), 0
        )
    return from_edges(
        np.concatenate(us), np.concatenate(vs), np.concatenate(ws), offset
    )


def relabeled(graph: CSRGraph, permutation: np.ndarray) -> CSRGraph:
    """Apply a node permutation: new id of old node ``u`` is ``permutation[u]``.

    Useful for cache-layout experiments and for testing label-invariance
    of the estimators (the diameter is a graph property; a relabeling must
    not change it).
    """
    permutation = np.asarray(permutation, dtype=np.int64)
    n = graph.num_nodes
    if permutation.shape != (n,) or not np.array_equal(
        np.sort(permutation), np.arange(n)
    ):
        raise ValueError("permutation must be a bijection on [0, n)")
    u, v, w = graph.edge_arrays()
    return from_edges(permutation[u], permutation[v], w, n)


def cartesian_product(
    g: CSRGraph, h: CSRGraph, *, g_edge_weight_scale: float = 1.0
) -> CSRGraph:
    """Cartesian product ``g □ h``.

    The node set is ``V(g) × V(h)``; node ``(a, b)`` maps to integer
    ``a * |V(h)| + b``.  Edges connect ``(a, b)–(a', b)`` for each edge
    ``(a, a')`` of ``g`` (weight scaled by ``g_edge_weight_scale``) and
    ``(a, b)–(a, b')`` for each edge ``(b, b')`` of ``h``.

    This is exactly how the paper builds ``roads(S)``: a linear array of
    ``S`` nodes with unit weights, crossed with roads-USA.
    """
    nh = h.num_nodes
    gu, gv, gw = g.edge_arrays()
    hu, hv, hw = h.edge_arrays()

    # g-edges replicated across every h-node.
    h_ids = np.arange(nh, dtype=np.int64)
    u1 = (gu[:, None] * nh + h_ids[None, :]).ravel()
    v1 = (gv[:, None] * nh + h_ids[None, :]).ravel()
    w1 = np.repeat(gw * g_edge_weight_scale, nh)

    # h-edges replicated across every g-node.
    g_ids = np.arange(g.num_nodes, dtype=np.int64)
    u2 = (g_ids[:, None] * nh + hu[None, :]).ravel()
    v2 = (g_ids[:, None] * nh + hv[None, :]).ravel()
    w2 = np.tile(hw, g.num_nodes)

    return from_edges(
        np.concatenate([u1, u2]),
        np.concatenate([v1, v2]),
        np.concatenate([w1, w2]),
        g.num_nodes * nh,
    )
