"""Owner-compute graph partitioning on disk: range and locality-aware.

The paper's MR algorithms assume each machine holds a fixed subgraph and
that a round exchanges only the messages crossing machine boundaries.
This module provides the storage half of that contract:

* :func:`plan_partition` — assign every node to one of ``num_shards``
  shards and report the edge cut (per-shard internal/cut arcs and
  boundary-node counts).  Two partitioners:

  - ``"range"`` — contiguous node ranges balanced by arc count; shard
    ownership of a node id is one
    :func:`~repro.mr.partitioner.range_partition_array` call against the
    plan's interior boundaries.
  - ``"lp"`` — the locality-aware multilevel label-propagation pipeline
    (:func:`~repro.mr.partitioner.lp_assignment`); ownership is an
    explicit node→shard ``assignment`` array.  Node ids are *never*
    relabeled — a shard simply owns a non-contiguous row set — which is
    what keeps sharded results bit-identical across partitioners.
* :func:`write_partitioned_store` / :func:`ensure_partitioned` — the
  partitioned on-disk layout next to a GraphStore file::

      graph.rcsr                     the (unsharded) store
      graph.rcsr.shards/<K>/         range partition (K shards)
      graph.rcsr.shards/<K>-lp/      locality-aware partition
          manifest.json              plan + source signature (commit point)
          part-0.rcsr … part-K-1.rcsr
          assignment.i32             lp only: node → owning shard
          localidx.i32               lp only: node → dense local row

  Each ``part-k.rcsr`` is a GraphStore container (written through the
  same atomic :func:`~repro.graph.serialize.write_store` path) holding
  the CSR *rows* of shard ``k``'s node set: a local ``indptr`` of
  length ``num_rows + 1`` whose ``indices`` keep **global** node ids.
  Under ``lp`` the row set is non-contiguous; the two int32 sidecars
  (memory-mapped, so forked workers share their pages) give the
  node→shard and node→local-row maps workers route by.
  A shard-owning worker memory-maps exactly its rows — O(shard) pages,
  never the whole graph — and routes emitted messages by comparing the
  global neighbour ids against the plan's boundaries.

  ``manifest.json`` records the source store's (mtime, size) signature;
  :func:`ensure_partitioned` re-partitions whenever the signature (or
  requested shard count) no longer matches, so editing a store
  invalidates its shards the same way editing a text graph invalidates
  its cached conversion.  The manifest is written last, atomically: a
  reader either sees a complete partition or none.

Shard files reuse :class:`~repro.graph.csr.CSRGraph` purely as an array
container (``validate=False`` — global neighbour ids are out of range
for the local row count, by design); they are not meaningful graphs on
their own.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import CorruptArtifact, GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.serialize import STORE_SUFFIX, open_store, write_store
from repro.integrity import (
    bytes_sha256,
    file_sha256,
    preflight_free_space,
    quarantine_artifact,
    sweep_orphan_tmps,
    verify_level,
)
from repro.mr.partitioner import lp_assignment, range_partition_array

__all__ = [
    "PartitionPlan",
    "PartitionedStore",
    "plan_partition",
    "write_partitioned_store",
    "ensure_partitioned",
    "load_partitioned",
    "verify_partition",
    "shards_dir_for",
    "MANIFEST_NAME",
    "SHARDS_DIR_SUFFIX",
    "PARTITION_VERSION",
    "PARTITIONERS",
    "DEFAULT_PARTITIONER",
    "ASSIGNMENT_NAME",
    "LOCALIDX_NAME",
]

PathLike = Union[str, Path]

#: Manifest file name inside a shard directory.
MANIFEST_NAME = "manifest.json"
#: Directory suffix of a store's partition root (``<store>.shards/``);
#: shared with the GraphStore cache's cleanup/budget accounting.
SHARDS_DIR_SUFFIX = ".shards"
#: Partitioned-layout format version (bump on incompatible changes).
#: v2 added the partitioner field and the lp sidecar files; v3 added
#: the integrity digests (per-shard and per-sidecar sha256 plus the
#: manifest self-digest).  A v2 layout is simply considered stale and
#: rewritten on the next :func:`ensure_partitioned`.
PARTITION_VERSION = 3
#: Supported partitioner names.
PARTITIONERS = ("range", "lp")
#: Partitioner used when none is requested (kept as the library default
#: so existing range-based callers and caches stay valid).
DEFAULT_PARTITIONER = "range"
#: Sidecar file names for lp partitions (int32, one entry per node).
ASSIGNMENT_NAME = "assignment.i32"
LOCALIDX_NAME = "localidx.i32"


@dataclass(frozen=True)
class PartitionPlan:
    """A node partition plus its edge-cut report.

    Attributes
    ----------
    num_nodes, num_arcs:
        Shape of the partitioned graph.
    starts:
        int64 array of length ``num_shards + 1``.  Under ``range`` mode
        shard ``k`` owns the contiguous node range
        ``[starts[k], starts[k+1])``; under ``lp`` mode the entries are
        the prefix sums of per-shard node counts (``np.diff(starts)`` is
        the shard-size vector in both modes, but lp row sets are not
        contiguous).  ``starts[0] == 0`` and ``starts[-1] == num_nodes``
        always hold.
    shard_arcs:
        Arcs whose *source* lies in each shard (these are the rows the
        shard stores; they sum to ``num_arcs``).
    cut_arcs:
        Of those, the arcs whose target lies in a different shard.  An
        undirected cut edge contributes one cut arc to each endpoint's
        shard.
    boundary_nodes:
        Nodes per shard with at least one cut arc — the set whose
        updates can ever need to cross a shard boundary.
    mode:
        ``"range"`` or ``"lp"``.
    assignment:
        ``lp`` only: int32 node→shard map (``None`` for range plans).
    """

    num_nodes: int
    num_arcs: int
    starts: np.ndarray
    shard_arcs: np.ndarray
    cut_arcs: np.ndarray
    boundary_nodes: np.ndarray
    mode: str = "range"
    assignment: Optional[np.ndarray] = None

    @property
    def num_shards(self) -> int:
        return len(self.starts) - 1

    @property
    def splitters(self) -> np.ndarray:
        """Interior boundaries, in :func:`range_partition_array` form."""
        if self.mode != "range":
            raise ValueError("splitters are defined for range plans only")
        return self.starts[1:-1]

    @property
    def shard_nodes(self) -> np.ndarray:
        """Nodes owned per shard (valid in both modes)."""
        return np.diff(self.starts)

    @property
    def total_cut_arcs(self) -> int:
        return int(self.cut_arcs.sum())

    @property
    def cut_fraction(self) -> float:
        """Fraction of arcs crossing a shard boundary (0 for one shard)."""
        return self.total_cut_arcs / self.num_arcs if self.num_arcs else 0.0

    def owner_of(self, keys) -> np.ndarray:
        """Owning shard of each node id (vectorized)."""
        if self.mode == "range":
            return range_partition_array(keys, self.starts[1:-1])
        return self.assignment[np.asarray(keys)].astype(np.int64)

    def shard_range(self, shard: int) -> tuple:
        """``(lo, hi)`` node range owned by ``shard`` (range mode only)."""
        if self.mode != "range":
            raise ValueError(
                "shard_range is undefined for lp plans; use shard_rows"
            )
        return int(self.starts[shard]), int(self.starts[shard + 1])

    def shard_rows(self, shard: int) -> np.ndarray:
        """Ascending global node ids owned by ``shard`` (either mode)."""
        if self.mode == "range":
            lo, hi = self.shard_range(shard)
            return np.arange(lo, hi, dtype=np.int64)
        return np.flatnonzero(self.assignment == shard).astype(np.int64)


def _cut_report(graph: CSRGraph, row_shard: np.ndarray, num_shards: int):
    """Per-shard (shard_arcs, cut_arcs, boundary_nodes) for an assignment."""
    shard_arcs = np.zeros(num_shards, dtype=np.int64)
    cut_arcs = np.zeros(num_shards, dtype=np.int64)
    boundary = np.zeros(num_shards, dtype=np.int64)
    if graph.num_arcs:
        arc_src_shard = np.repeat(row_shard, graph.degrees)
        cut = arc_src_shard != row_shard[graph.indices]
        shard_arcs = np.bincount(arc_src_shard, minlength=num_shards)
        cut_arcs = np.bincount(arc_src_shard[cut], minlength=num_shards)
        cut_sources = np.unique(graph.arc_sources()[cut])
        boundary = np.bincount(row_shard[cut_sources], minlength=num_shards)
    return (
        shard_arcs.astype(np.int64),
        cut_arcs.astype(np.int64),
        boundary.astype(np.int64),
    )


def plan_partition(
    graph: CSRGraph,
    num_shards: int,
    *,
    partitioner: str = DEFAULT_PARTITIONER,
    slack: float = 0.5,
    seed: int = 0,
) -> PartitionPlan:
    """Assign ``graph``'s nodes to ``num_shards`` shards.

    ``partitioner="range"`` chooses contiguous boundaries on the
    ``indptr`` prefix sums so every shard owns roughly
    ``num_arcs / num_shards`` arcs (up to one node's degree); shards may
    be empty when ``num_shards > num_nodes``.  ``partitioner="lp"`` runs
    the locality-aware multilevel label-propagation pipeline
    (:func:`~repro.mr.partitioner.lp_assignment`), trading up to
    ``1 + slack`` arc-load imbalance for a lower edge cut; it never cuts
    more than the range plan.  Either way the shards cover
    ``[0, num_nodes)`` exactly.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if partitioner not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {partitioner!r} (expected one of "
            f"{', '.join(PARTITIONERS)})"
        )
    n = graph.num_nodes
    arcs = graph.num_arcs
    if partitioner == "lp":
        assignment = lp_assignment(graph, num_shards, slack=slack, seed=seed)
        row_shard = assignment.astype(np.int64)
        counts = np.bincount(row_shard, minlength=num_shards)
        starts = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        shard_arcs, cut_arcs, boundary = _cut_report(
            graph, row_shard, num_shards
        )
        return PartitionPlan(
            num_nodes=n,
            num_arcs=arcs,
            starts=starts,
            shard_arcs=shard_arcs,
            cut_arcs=cut_arcs,
            boundary_nodes=boundary,
            mode="lp",
            assignment=assignment,
        )

    targets = (arcs * np.arange(1, num_shards, dtype=np.int64)) // num_shards
    cuts = np.searchsorted(graph.indptr, targets, side="left")
    starts = np.concatenate(
        ([0], np.clip(cuts, 0, n), [n])
    ).astype(np.int64)
    starts = np.maximum.accumulate(starts)

    row_shard = np.repeat(
        np.arange(num_shards, dtype=np.int64), np.diff(starts)
    )
    shard_arcs, cut_arcs, boundary = _cut_report(graph, row_shard, num_shards)
    return PartitionPlan(
        num_nodes=n,
        num_arcs=arcs,
        starts=starts,
        shard_arcs=shard_arcs,
        cut_arcs=cut_arcs,
        boundary_nodes=boundary,
    )


@dataclass(frozen=True)
class PartitionedStore:
    """A partition on disk: the plan plus where its shard files live.

    For lp partitions, ``assignment`` and ``localidx`` are the two
    memory-mapped int32 sidecars (node→shard and node→local-row); they
    are ``None`` for range partitions, where both maps are arithmetic.
    """

    directory: Path
    plan: PartitionPlan
    shard_paths: List[Path]
    source: Path
    assignment: Optional[np.ndarray] = None
    localidx: Optional[np.ndarray] = None

    def open_shard(self, shard: int) -> CSRGraph:
        """Memory-map one shard's rows (local indptr, global indices)."""
        return open_store(self.shard_paths[shard])


def shards_dir_for(
    store_path: PathLike,
    num_shards: int,
    partitioner: str = DEFAULT_PARTITIONER,
) -> Path:
    """Directory holding ``store_path``'s ``num_shards``-way partition."""
    store_path = Path(store_path)
    leaf = str(num_shards) if partitioner == "range" else (
        f"{num_shards}-{partitioner}"
    )
    return (
        store_path.parent
        / (store_path.name + SHARDS_DIR_SUFFIX)
        / leaf
    )


def _source_signature(store_path: Path) -> tuple:
    stat = store_path.stat()
    return stat.st_mtime_ns, stat.st_size


def _shard_graph(graph: CSRGraph, lo: int, hi: int) -> CSRGraph:
    """Shard ``[lo, hi)`` as an array container (global neighbour ids)."""
    a, b = int(graph.indptr[lo]), int(graph.indptr[hi])
    return CSRGraph(
        graph.indptr[lo : hi + 1] - graph.indptr[lo],
        graph.indices[a:b],
        graph.weights[a:b],
        validate=False,
    )


def _shard_graph_rows(graph: CSRGraph, rows: np.ndarray) -> CSRGraph:
    """Gather an arbitrary (ascending) row set as an array container."""
    rows = np.asarray(rows, dtype=np.int64)
    degs = (graph.indptr[rows + 1] - graph.indptr[rows]).astype(np.int64)
    local_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(degs, out=local_indptr[1:])
    total = int(local_indptr[-1])
    # Arc positions of each local arc: row start + within-row offset.
    pos = np.repeat(
        graph.indptr[rows].astype(np.int64) - local_indptr[:-1], degs
    ) + np.arange(total, dtype=np.int64)
    return CSRGraph(
        local_indptr,
        graph.indices[pos],
        graph.weights[pos],
        validate=False,
    )


def _localidx_of(assignment: np.ndarray, num_shards: int) -> np.ndarray:
    """Node → dense local row within its owning shard (rows ascending)."""
    n = len(assignment)
    order = np.argsort(assignment, kind="stable")
    counts = np.bincount(assignment, minlength=num_shards)
    group_start = np.concatenate(([0], np.cumsum(counts)))[:-1]
    localidx = np.empty(n, dtype=np.int32)
    localidx[order] = (
        np.arange(n, dtype=np.int64) - np.repeat(group_start, counts)
    ).astype(np.int32)
    return localidx


def write_partitioned_store(
    graph: CSRGraph,
    store_path: PathLike,
    num_shards: int,
    *,
    plan: Optional[PartitionPlan] = None,
    directory: Optional[PathLike] = None,
    partitioner: str = DEFAULT_PARTITIONER,
) -> PartitionedStore:
    """Write ``graph``'s ``num_shards``-way partition next to ``store_path``.

    ``store_path`` is the *source* store the manifest records (it must
    exist — its signature is what invalidates the shards); ``directory``
    overrides the default ``<store>.shards/<K>[-lp]/`` location.  Shard
    files go through the atomic :func:`write_store` path, lp sidecars
    follow, and the manifest is written last (temp file +
    ``os.replace``) as the commit point.
    """
    store_path = Path(store_path)
    if plan is None:
        plan = plan_partition(graph, num_shards, partitioner=partitioner)
    elif plan.mode != partitioner:
        raise ValueError("plan mode does not match requested partitioner")
    if plan.num_shards != num_shards:
        raise ValueError("plan shard count does not match num_shards")
    directory = (
        Path(directory)
        if directory is not None
        else shards_dir_for(store_path, num_shards, partitioner)
    )
    directory.mkdir(parents=True, exist_ok=True)
    sweep_orphan_tmps(directory)

    shard_paths: List[Path] = []
    shard_digests: List[str] = []
    for k in range(num_shards):
        path = directory / f"part-{k}{STORE_SUFFIX}"
        # Shard stores carry the reverse-CSR section up front: workers
        # memory-map their local arc→row map instead of rebuilding it,
        # and the pull-mode growing step starts warm.
        if plan.mode == "range":
            lo, hi = plan.shard_range(k)
            shard = _shard_graph(graph, lo, hi)
        else:
            shard = _shard_graph_rows(graph, plan.shard_rows(k))
        write_store(shard, path, reverse=True)
        # Whole-file digest over the bytes just written (page cache is
        # warm): lets a deep verify catch a shard file swapped for a
        # different-but-self-consistent store, which the shard's own
        # digest block cannot.
        shard_digests.append(file_sha256(path))
        shard_paths.append(path)

    assignment = localidx = None
    sidecar_digests = {}
    if plan.mode == "lp":
        assignment = np.ascontiguousarray(plan.assignment, dtype=np.int32)
        localidx = _localidx_of(assignment, num_shards)
        for name, arr in (
            (ASSIGNMENT_NAME, assignment),
            (LOCALIDX_NAME, localidx),
        ):
            preflight_free_space(
                directory, arr.nbytes, label=f"sidecar {name}"
            )
            tmp = directory / (name + ".tmp")
            try:
                arr.tofile(tmp)
                os.replace(tmp, directory / name)
            finally:
                if tmp.exists():
                    tmp.unlink()
            sidecar_digests[name] = bytes_sha256(arr.tobytes())

    mtime_ns, size = _source_signature(store_path)
    manifest = {
        "version": PARTITION_VERSION,
        "source": str(store_path),
        "source_mtime_ns": mtime_ns,
        "source_size": size,
        "num_nodes": plan.num_nodes,
        "num_arcs": plan.num_arcs,
        "num_shards": num_shards,
        "partitioner": plan.mode,
        "starts": [int(s) for s in plan.starts],
        "shard_arcs": [int(a) for a in plan.shard_arcs],
        "cut_arcs": [int(a) for a in plan.cut_arcs],
        "boundary_nodes": [int(b) for b in plan.boundary_nodes],
        "shards": [p.name for p in shard_paths],
        "shard_sha256": shard_digests,
        "sidecar_sha256": sidecar_digests,
    }
    manifest["manifest_sha256"] = _manifest_digest(manifest)
    tmp = directory / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    os.replace(tmp, directory / MANIFEST_NAME)
    return PartitionedStore(
        directory=directory,
        plan=plan,
        shard_paths=shard_paths,
        source=store_path,
        assignment=assignment,
        localidx=localidx,
    )


def _manifest_digest(manifest: dict) -> str:
    """Self-digest of a manifest: sha256 over its canonical JSON, with
    the digest field itself excluded."""
    body = {k: v for k, v in manifest.items() if k != "manifest_sha256"}
    return bytes_sha256(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    )


def verify_partition(
    directory: PathLike, *, level: Optional[str] = None
) -> dict:
    """Check a partition layout's integrity at the requested verify tier.

    ``header`` (default) is O(1): the manifest self-digest plus sidecar
    length checks.  ``full`` re-hashes every shard file and sidecar
    against the digests the manifest recorded.  Raises
    :class:`~repro.errors.CorruptArtifact` on the first mismatch; the
    report dict lists what was checked.
    """
    level = verify_level(level)
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as exc:
        raise CorruptArtifact(
            manifest_path, kind="manifest", detail=f"unreadable ({exc})"
        ) from None
    report = {"path": str(directory), "level": level, "checked": []}
    if level == "off":
        return report
    recorded = manifest.get("manifest_sha256")
    if recorded is not None and _manifest_digest(manifest) != recorded:
        raise CorruptArtifact(
            manifest_path, kind="manifest", detail="manifest digest mismatch"
        )
    report["checked"].append(MANIFEST_NAME)
    if level != "full":
        return report
    for name, sha in zip(manifest.get("shards", ()),
                         manifest.get("shard_sha256", ())):
        path = directory / name
        if not path.exists():
            raise CorruptArtifact(
                path, kind="store", detail="shard file missing"
            )
        if file_sha256(path) != sha:
            raise CorruptArtifact(
                path, kind="store", detail="shard digest mismatch"
            )
        report["checked"].append(name)
    for name, sha in (manifest.get("sidecar_sha256") or {}).items():
        path = directory / name
        if not path.exists():
            raise CorruptArtifact(
                path, kind="sidecar", detail="sidecar missing"
            )
        if file_sha256(path) != sha:
            raise CorruptArtifact(
                path, kind="sidecar", detail="sidecar digest mismatch"
            )
        report["checked"].append(name)
    return report


def _plan_from_manifest(
    manifest: dict, assignment: Optional[np.ndarray] = None
) -> PartitionPlan:
    return PartitionPlan(
        num_nodes=int(manifest["num_nodes"]),
        num_arcs=int(manifest["num_arcs"]),
        starts=np.asarray(manifest["starts"], dtype=np.int64),
        shard_arcs=np.asarray(manifest["shard_arcs"], dtype=np.int64),
        cut_arcs=np.asarray(manifest["cut_arcs"], dtype=np.int64),
        boundary_nodes=np.asarray(
            manifest["boundary_nodes"], dtype=np.int64
        ),
        mode=manifest.get("partitioner", "range"),
        assignment=assignment,
    )


def _mmap_sidecar(directory: Path, name: str, num_nodes: int) -> np.ndarray:
    path = directory / name
    try:
        arr = np.memmap(path, dtype=np.int32, mode="r")
    except (OSError, ValueError) as exc:
        raise GraphFormatError(f"{path}: unreadable sidecar ({exc})") from None
    if len(arr) != num_nodes:
        raise CorruptArtifact(
            path,
            kind="sidecar",
            detail=f"has {len(arr)} entries, expected {num_nodes}",
        )
    return arr


def load_partitioned(directory: PathLike) -> PartitionedStore:
    """Load a partitioned store from its shard directory.

    Raises
    ------
    GraphFormatError
        If the manifest is missing, unreadable, of a different format
        version, or names shard or sidecar files that do not exist.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as exc:
        raise GraphFormatError(
            f"{directory}: no readable partition manifest ({exc})"
        ) from None
    if manifest.get("version") != PARTITION_VERSION:
        raise GraphFormatError(
            f"{directory}: partition version {manifest.get('version')!r} "
            f"not supported (expected {PARTITION_VERSION})"
        )
    # The env-selected verify tier guards every load the same way store
    # opens are guarded: ``header`` costs one manifest re-hash, ``full``
    # re-hashes shards and sidecars too.
    verify_partition(directory)
    shard_paths = [directory / name for name in manifest["shards"]]
    missing = [p for p in shard_paths if not p.exists()]
    if missing:
        raise GraphFormatError(f"{directory}: missing shard files {missing}")
    assignment = localidx = None
    if manifest.get("partitioner", "range") == "lp":
        num_nodes = int(manifest["num_nodes"])
        assignment = _mmap_sidecar(directory, ASSIGNMENT_NAME, num_nodes)
        localidx = _mmap_sidecar(directory, LOCALIDX_NAME, num_nodes)
    return PartitionedStore(
        directory=directory,
        plan=_plan_from_manifest(manifest, assignment),
        shard_paths=shard_paths,
        source=Path(manifest["source"]),
        assignment=assignment,
        localidx=localidx,
    )


def _manifest_fresh(
    directory: Path,
    store_path: Path,
    num_shards: int,
    partitioner: str,
) -> bool:
    try:
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
    except (OSError, ValueError):
        return False
    if manifest.get("version") != PARTITION_VERSION:
        return False
    if manifest.get("num_shards") != num_shards:
        return False
    if manifest.get("partitioner", "range") != partitioner:
        return False
    try:
        mtime_ns, size = _source_signature(store_path)
    except OSError:
        return False
    return (
        manifest.get("source_mtime_ns") == mtime_ns
        and manifest.get("source_size") == size
    )


def ensure_partitioned(
    store_path: PathLike,
    num_shards: int,
    *,
    graph: Optional[CSRGraph] = None,
    directory: Optional[PathLike] = None,
    partitioner: str = DEFAULT_PARTITIONER,
) -> PartitionedStore:
    """Return a fresh partition of ``store_path``, (re)writing if stale.

    The cached partition under ``<store>.shards/<K>[-lp]/`` is reused
    when its manifest matches the store's current (mtime, size)
    signature, the requested shard count, and the requested partitioner;
    otherwise the shards are recomputed from ``graph`` (or the store,
    memory-mapped) and rewritten.
    """
    store_path = Path(store_path)
    directory = (
        Path(directory)
        if directory is not None
        else shards_dir_for(store_path, num_shards, partitioner)
    )
    if _manifest_fresh(directory, store_path, num_shards, partitioner):
        try:
            return load_partitioned(directory)
        except CorruptArtifact as exc:
            # Positively-corrupt layout (failed a digest or length
            # check): move the whole directory into quarantine so the
            # damaged bytes stay inspectable, then rebuild below from
            # the parent store — the self-heal path.
            quarantine_artifact(directory, reason=str(exc))
        except GraphFormatError:
            pass  # torn/deleted shard files: fall through and rewrite
    if graph is None:
        graph = open_store(store_path)
    return write_partitioned_store(
        graph, store_path, num_shards,
        directory=directory, partitioner=partitioner,
    )
