"""Owner-compute graph partitioning: contiguous node ranges on disk.

The paper's MR algorithms assume each machine holds a fixed subgraph and
that a round exchanges only the messages crossing machine boundaries.
This module provides the storage half of that contract:

* :func:`plan_partition` — split ``[0, n)`` into ``num_shards``
  contiguous node ranges balanced by arc count, and report the edge cut
  (per-shard internal/cut arcs and boundary-node counts).  Assignment of
  a node id to its owning shard is one
  :func:`~repro.mr.partitioner.range_partition_array` call against the
  plan's interior boundaries.
* :func:`write_partitioned_store` / :func:`ensure_partitioned` — the
  partitioned on-disk layout next to a GraphStore file::

      graph.rcsr                     the (unsharded) store
      graph.rcsr.shards/<K>/
          manifest.json              plan + source signature (commit point)
          part-0.rcsr … part-K-1.rcsr

  Each ``part-k.rcsr`` is a GraphStore container (written through the
  same atomic :func:`~repro.graph.serialize.write_store` path) holding
  the CSR *rows* of shard ``k``'s node range: a local ``indptr`` of
  length ``len(range) + 1`` whose ``indices`` keep **global** node ids.
  A shard-owning worker memory-maps exactly its rows — O(shard) pages,
  never the whole graph — and routes emitted messages by comparing the
  global neighbour ids against the plan's boundaries.

  ``manifest.json`` records the source store's (mtime, size) signature;
  :func:`ensure_partitioned` re-partitions whenever the signature (or
  requested shard count) no longer matches, so editing a store
  invalidates its shards the same way editing a text graph invalidates
  its cached conversion.  The manifest is written last, atomically: a
  reader either sees a complete partition or none.

Shard files reuse :class:`~repro.graph.csr.CSRGraph` purely as an array
container (``validate=False`` — global neighbour ids are out of range
for the local row count, by design); they are not meaningful graphs on
their own.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.serialize import STORE_SUFFIX, open_store, write_store
from repro.mr.partitioner import range_partition_array

__all__ = [
    "PartitionPlan",
    "PartitionedStore",
    "plan_partition",
    "write_partitioned_store",
    "ensure_partitioned",
    "load_partitioned",
    "shards_dir_for",
    "MANIFEST_NAME",
    "SHARDS_DIR_SUFFIX",
    "PARTITION_VERSION",
]

PathLike = Union[str, Path]

#: Manifest file name inside a shard directory.
MANIFEST_NAME = "manifest.json"
#: Directory suffix of a store's partition root (``<store>.shards/``);
#: shared with the GraphStore cache's cleanup/budget accounting.
SHARDS_DIR_SUFFIX = ".shards"
#: Partitioned-layout format version (bump on incompatible changes).
PARTITION_VERSION = 1


@dataclass(frozen=True)
class PartitionPlan:
    """A contiguous-range node partition plus its edge-cut report.

    Attributes
    ----------
    num_nodes, num_arcs:
        Shape of the partitioned graph.
    starts:
        int64 array of length ``num_shards + 1``; shard ``k`` owns the
        node range ``[starts[k], starts[k+1])``.  ``starts[0] == 0`` and
        ``starts[-1] == num_nodes`` always hold.
    shard_arcs:
        Arcs whose *source* lies in each shard (these are the rows the
        shard stores; they sum to ``num_arcs``).
    cut_arcs:
        Of those, the arcs whose target lies in a different shard.  An
        undirected cut edge contributes one cut arc to each endpoint's
        shard.
    boundary_nodes:
        Nodes per shard with at least one cut arc — the set whose
        updates can ever need to cross a shard boundary.
    """

    num_nodes: int
    num_arcs: int
    starts: np.ndarray
    shard_arcs: np.ndarray
    cut_arcs: np.ndarray
    boundary_nodes: np.ndarray

    @property
    def num_shards(self) -> int:
        return len(self.starts) - 1

    @property
    def splitters(self) -> np.ndarray:
        """Interior boundaries, in :func:`range_partition_array` form."""
        return self.starts[1:-1]

    @property
    def total_cut_arcs(self) -> int:
        return int(self.cut_arcs.sum())

    @property
    def cut_fraction(self) -> float:
        """Fraction of arcs crossing a shard boundary (0 for one shard)."""
        return self.total_cut_arcs / self.num_arcs if self.num_arcs else 0.0

    def owner_of(self, keys) -> np.ndarray:
        """Owning shard of each node id (vectorized range partition)."""
        return range_partition_array(keys, self.splitters)

    def shard_range(self, shard: int) -> tuple:
        """``(lo, hi)`` node range owned by ``shard``."""
        return int(self.starts[shard]), int(self.starts[shard + 1])


def plan_partition(graph: CSRGraph, num_shards: int) -> PartitionPlan:
    """Split ``graph`` into ``num_shards`` contiguous ranges balanced by arcs.

    Boundaries are chosen on the ``indptr`` prefix sums so every shard
    owns roughly ``num_arcs / num_shards`` arcs (up to one node's
    degree); shards may be empty when ``num_shards > num_nodes``.  The
    ranges always cover ``[0, num_nodes)`` exactly.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = graph.num_nodes
    arcs = graph.num_arcs
    targets = (arcs * np.arange(1, num_shards, dtype=np.int64)) // num_shards
    cuts = np.searchsorted(graph.indptr, targets, side="left")
    starts = np.concatenate(
        ([0], np.clip(cuts, 0, n), [n])
    ).astype(np.int64)
    starts = np.maximum.accumulate(starts)

    row_shard = np.repeat(
        np.arange(num_shards, dtype=np.int64), np.diff(starts)
    )
    shard_arcs = np.zeros(num_shards, dtype=np.int64)
    cut_arcs = np.zeros(num_shards, dtype=np.int64)
    boundary = np.zeros(num_shards, dtype=np.int64)
    if arcs:
        splitters = starts[1:-1]
        arc_src_shard = np.repeat(row_shard, graph.degrees)
        nbr_shard = range_partition_array(graph.indices, splitters)
        cut = arc_src_shard != nbr_shard
        shard_arcs = np.bincount(arc_src_shard, minlength=num_shards)
        cut_arcs = np.bincount(arc_src_shard[cut], minlength=num_shards)
        cut_sources = np.unique(graph.arc_sources()[cut])
        boundary = np.bincount(
            row_shard[cut_sources], minlength=num_shards
        )
    return PartitionPlan(
        num_nodes=n,
        num_arcs=arcs,
        starts=starts,
        shard_arcs=shard_arcs.astype(np.int64),
        cut_arcs=cut_arcs.astype(np.int64),
        boundary_nodes=boundary.astype(np.int64),
    )


@dataclass(frozen=True)
class PartitionedStore:
    """A partition on disk: the plan plus where its shard files live."""

    directory: Path
    plan: PartitionPlan
    shard_paths: List[Path]
    source: Path

    def open_shard(self, shard: int) -> CSRGraph:
        """Memory-map one shard's rows (local indptr, global indices)."""
        return open_store(self.shard_paths[shard])


def shards_dir_for(store_path: PathLike, num_shards: int) -> Path:
    """Directory holding ``store_path``'s ``num_shards``-way partition."""
    store_path = Path(store_path)
    return (
        store_path.parent
        / (store_path.name + SHARDS_DIR_SUFFIX)
        / str(num_shards)
    )


def _source_signature(store_path: Path) -> tuple:
    stat = store_path.stat()
    return stat.st_mtime_ns, stat.st_size


def _shard_graph(graph: CSRGraph, lo: int, hi: int) -> CSRGraph:
    """Shard ``[lo, hi)`` as an array container (global neighbour ids)."""
    a, b = int(graph.indptr[lo]), int(graph.indptr[hi])
    return CSRGraph(
        graph.indptr[lo : hi + 1] - graph.indptr[lo],
        graph.indices[a:b],
        graph.weights[a:b],
        validate=False,
    )


def write_partitioned_store(
    graph: CSRGraph,
    store_path: PathLike,
    num_shards: int,
    *,
    plan: Optional[PartitionPlan] = None,
    directory: Optional[PathLike] = None,
) -> PartitionedStore:
    """Write ``graph``'s ``num_shards``-way partition next to ``store_path``.

    ``store_path`` is the *source* store the manifest records (it must
    exist — its signature is what invalidates the shards); ``directory``
    overrides the default ``<store>.shards/<K>/`` location.  Shard files
    go through the atomic :func:`write_store` path, and the manifest is
    written last (temp file + ``os.replace``) as the commit point.
    """
    store_path = Path(store_path)
    plan = plan or plan_partition(graph, num_shards)
    if plan.num_shards != num_shards:
        raise ValueError("plan shard count does not match num_shards")
    directory = (
        Path(directory)
        if directory is not None
        else shards_dir_for(store_path, num_shards)
    )
    directory.mkdir(parents=True, exist_ok=True)

    shard_paths: List[Path] = []
    for k in range(num_shards):
        lo, hi = plan.shard_range(k)
        path = directory / f"part-{k}{STORE_SUFFIX}"
        # Shard stores carry the reverse-CSR section up front: workers
        # memory-map their local arc→row map instead of rebuilding it,
        # and the pull-mode growing step starts warm.
        write_store(_shard_graph(graph, lo, hi), path, reverse=True)
        shard_paths.append(path)

    mtime_ns, size = _source_signature(store_path)
    manifest = {
        "version": PARTITION_VERSION,
        "source": str(store_path),
        "source_mtime_ns": mtime_ns,
        "source_size": size,
        "num_nodes": plan.num_nodes,
        "num_arcs": plan.num_arcs,
        "num_shards": num_shards,
        "starts": [int(s) for s in plan.starts],
        "shard_arcs": [int(a) for a in plan.shard_arcs],
        "cut_arcs": [int(a) for a in plan.cut_arcs],
        "boundary_nodes": [int(b) for b in plan.boundary_nodes],
        "shards": [p.name for p in shard_paths],
    }
    tmp = directory / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    os.replace(tmp, directory / MANIFEST_NAME)
    return PartitionedStore(
        directory=directory,
        plan=plan,
        shard_paths=shard_paths,
        source=store_path,
    )


def _plan_from_manifest(manifest: dict) -> PartitionPlan:
    return PartitionPlan(
        num_nodes=int(manifest["num_nodes"]),
        num_arcs=int(manifest["num_arcs"]),
        starts=np.asarray(manifest["starts"], dtype=np.int64),
        shard_arcs=np.asarray(manifest["shard_arcs"], dtype=np.int64),
        cut_arcs=np.asarray(manifest["cut_arcs"], dtype=np.int64),
        boundary_nodes=np.asarray(
            manifest["boundary_nodes"], dtype=np.int64
        ),
    )


def load_partitioned(directory: PathLike) -> PartitionedStore:
    """Load a partitioned store from its shard directory.

    Raises
    ------
    GraphFormatError
        If the manifest is missing, unreadable, of a different format
        version, or names shard files that do not exist.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as exc:
        raise GraphFormatError(
            f"{directory}: no readable partition manifest ({exc})"
        ) from None
    if manifest.get("version") != PARTITION_VERSION:
        raise GraphFormatError(
            f"{directory}: partition version {manifest.get('version')!r} "
            f"not supported (expected {PARTITION_VERSION})"
        )
    shard_paths = [directory / name for name in manifest["shards"]]
    missing = [p for p in shard_paths if not p.exists()]
    if missing:
        raise GraphFormatError(f"{directory}: missing shard files {missing}")
    return PartitionedStore(
        directory=directory,
        plan=_plan_from_manifest(manifest),
        shard_paths=shard_paths,
        source=Path(manifest["source"]),
    )


def _manifest_fresh(directory: Path, store_path: Path, num_shards: int) -> bool:
    try:
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
    except (OSError, ValueError):
        return False
    if manifest.get("version") != PARTITION_VERSION:
        return False
    if manifest.get("num_shards") != num_shards:
        return False
    try:
        mtime_ns, size = _source_signature(store_path)
    except OSError:
        return False
    return (
        manifest.get("source_mtime_ns") == mtime_ns
        and manifest.get("source_size") == size
    )


def ensure_partitioned(
    store_path: PathLike,
    num_shards: int,
    *,
    graph: Optional[CSRGraph] = None,
    directory: Optional[PathLike] = None,
) -> PartitionedStore:
    """Return a fresh partition of ``store_path``, (re)writing if stale.

    The cached partition under ``<store>.shards/<K>/`` is reused when
    its manifest matches the store's current (mtime, size) signature and
    the requested shard count; otherwise the shards are recomputed from
    ``graph`` (or the store, memory-mapped) and rewritten.
    """
    store_path = Path(store_path)
    directory = (
        Path(directory)
        if directory is not None
        else shards_dir_for(store_path, num_shards)
    )
    if _manifest_fresh(directory, store_path, num_shards):
        try:
            return load_partitioned(directory)
        except GraphFormatError:
            pass  # torn/deleted shard files: fall through and rewrite
    if graph is None:
        graph = open_store(store_path)
    return write_partitioned_store(
        graph, store_path, num_shards, directory=directory
    )
