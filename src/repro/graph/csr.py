"""Compressed-sparse-row storage for undirected weighted graphs.

The whole library operates on :class:`CSRGraph`: an immutable, NumPy-backed
adjacency structure storing each undirected edge in both directions.  This
is the layout every vectorized kernel (Δ-growing steps, Δ-stepping buckets,
Dijkstra frontiers) gathers from, so it is deliberately minimal: three flat
arrays plus cached summary statistics.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import GraphValidationError

__all__ = ["CSRGraph"]


class CSRGraph:
    """An undirected weighted graph in CSR (adjacency-array) form.

    Parameters
    ----------
    indptr:
        int64 array of length ``n + 1``; the neighbours of node ``u`` are
        ``indices[indptr[u]:indptr[u+1]]``.
    indices:
        int64 array of neighbour ids, length ``2m`` for ``m`` undirected
        edges (each edge appears once per direction).
    weights:
        float64 array of positive edge weights, parallel to ``indices``.

    validate:
        When ``True`` (default) the constructor runs the full O(n + m)
        invariant scan.  :meth:`open_mmap` passes ``False`` so that
        opening a stored graph does not fault every page in; the cheap
        structural checks (shapes, indptr endpoints) always run.

    Notes
    -----
    Instances are treated as immutable: the constructor sets the arrays to
    non-writeable so that kernels can safely share views.  Use the builders
    in :mod:`repro.graph.builder` rather than calling this constructor with
    hand-made arrays; the builders deduplicate, symmetrize and sort.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "_num_nodes",
        "_num_directed_edges",
        "_mmap",
        "_rsrc",
        "store_path",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        validate: bool = True,
    ):
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise GraphValidationError("CSR arrays must be one-dimensional")
        if len(indptr) == 0:
            raise GraphValidationError("indptr must have length n + 1 >= 1")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise GraphValidationError("indptr must start at 0 and end at len(indices)")
        if len(indices) != len(weights):
            raise GraphValidationError("indices and weights must have equal length")
        n = len(indptr) - 1
        if validate:
            if np.any(np.diff(indptr) < 0):
                raise GraphValidationError("indptr must be non-decreasing")
            if len(indices) and (indices.min() < 0 or indices.max() >= n):
                raise GraphValidationError("edge endpoint out of range")
            if len(weights) and weights.min() <= 0:
                raise GraphValidationError("edge weights must be strictly positive")
        for arr in (indptr, indices, weights):
            if arr.flags.writeable:
                arr.setflags(write=False)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._num_nodes = n
        self._num_directed_edges = len(indices)
        self._mmap = None
        self._rsrc = None
        self.store_path = None

    # ------------------------------------------------------------------ #
    # Zero-copy open
    # ------------------------------------------------------------------ #

    @classmethod
    def open_mmap(cls, path, *, validate: bool = False) -> "CSRGraph":
        """Memory-map a GraphStore file as a read-only graph.

        The three CSR sections become zero-copy views over one shared
        read-only ``mmap`` of the file: nothing is read eagerly, pages
        fault in on first touch, and every process that opens the same
        store (or inherits the mapping through ``fork``) shares the same
        physical page-cache bytes.  Opening is therefore O(1) in the
        graph size — the basis of the warm-start numbers in
        ``benchmarks/bench_graph_store.py``.

        The mapping lives as long as the graph (the arrays keep the
        buffer alive); there is deliberately no ``close()`` because
        invalidating live array views would be unsound.

        Parameters
        ----------
        path:
            A file written by :func:`repro.graph.serialize.write_store`.
        validate:
            Run the full O(n + m) invariant scan on open.  Off by
            default — store files are validated when written, and the
            scan would fault in every page.

        Raises
        ------
        GraphFormatError
            If ``path`` is not a valid GraphStore file.
        CorruptArtifact
            If the store fails the integrity checks selected by
            ``REPRO_STORE_VERIFY`` (``header`` by default: O(1)
            structural + header-digest checks; ``full`` streams and
            re-hashes every section before mapping).
        """
        import mmap as _mmap

        from repro.graph.serialize import read_store_header, verify_store
        from repro.integrity import verify_level

        header = read_store_header(path)
        if verify_level() != "off":
            verify_store(path, header=header)
        with open(path, "rb") as fh:
            if header.file_size:
                buf = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
            else:  # pragma: no cover - zero-size files fail header checks
                buf = b""
        indptr = np.frombuffer(
            buf, dtype=np.int64, count=header.num_nodes + 1,
            offset=header.indptr_offset,
        )
        indices = np.frombuffer(
            buf, dtype=np.int64, count=header.num_arcs,
            offset=header.indices_offset,
        )
        weights = np.frombuffer(
            buf, dtype=np.float64, count=header.num_arcs,
            offset=header.weights_offset,
        )
        graph = cls(indptr, indices, weights, validate=validate)
        graph._mmap = buf
        graph.store_path = header.path
        if header.rsrc_offset:
            # Reverse-CSR section: the source row of every arc slot,
            # i.e. the arc→row map the pull-mode growing step gathers
            # by (see repro.graph.serialize for the layout).
            graph._rsrc = np.frombuffer(
                buf, dtype=np.int64, count=header.num_arcs,
                offset=header.rsrc_offset,
            )
        return graph

    @property
    def is_mmap(self) -> bool:
        """Whether the arrays are memory-mapped views of a store file."""
        return self._mmap is not None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges ``m`` (half the stored arcs)."""
        return self._num_directed_edges // 2

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (``2m`` for a symmetric graph)."""
        return self._num_directed_edges

    @property
    def degrees(self) -> np.ndarray:
        """int64 array of node degrees (arc counts per node)."""
        return np.diff(self.indptr)

    @property
    def min_weight(self) -> float:
        """Smallest edge weight (``inf`` for an edgeless graph)."""
        return float(self.weights.min()) if len(self.weights) else float("inf")

    @property
    def max_weight(self) -> float:
        """Largest edge weight (``0`` for an edgeless graph)."""
        return float(self.weights.max()) if len(self.weights) else 0.0

    @property
    def mean_weight(self) -> float:
        """Arithmetic mean of edge weights (``0`` for an edgeless graph)."""
        return float(self.weights.mean()) if len(self.weights) else 0.0

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def neighbors(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbour_ids, edge_weights)`` views for node ``u``."""
        lo, hi = self.indptr[u], self.indptr[u + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def degree(self, u: int) -> int:
        """Degree (number of incident arcs) of node ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, w)`` with ``u <= v``.

        Intended for tests and I/O, not for hot paths.
        """
        for u in range(self._num_nodes):
            lo, hi = self.indptr[u], self.indptr[u + 1]
            for v, w in zip(self.indices[lo:hi], self.weights[lo:hi]):
                if u <= v:
                    yield u, int(v), float(w)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(u, v, w)`` arrays listing each undirected edge once.

        Edges are returned with ``u <= v``, in CSR order.  Self-loops are
        impossible by construction (builders drop them) but would be
        returned once if present.
        """
        src = np.repeat(np.arange(self._num_nodes, dtype=np.int64), self.degrees)
        keep = src <= self.indices
        return src[keep], self.indices[keep], self.weights[keep]

    def arc_sources(self) -> np.ndarray:
        """Source node of every stored arc (length ``num_arcs``)."""
        return np.repeat(np.arange(self._num_nodes, dtype=np.int64), self.degrees)

    @property
    def rsrc(self):
        """The reverse-CSR arc→row map, if one is attached (else ``None``).

        For the symmetric graphs this library stores, the reverse CSR
        shares ``indptr``/``indices``/``weights`` with the forward one;
        the arc→row map (source node per arc slot) is the only extra
        structure, and is what the ``rsrc`` store section persists.
        Populated by :meth:`open_mmap` when the store carries the
        section, or by :meth:`arc_sources_view` on first use.
        """
        return self._rsrc

    def arc_sources_view(self) -> np.ndarray:
        """Cached, read-only :meth:`arc_sources` (the reverse-CSR map).

        Memory-mapped from the store's ``rsrc`` section when present;
        otherwise computed once and kept on the graph, so every growing
        state (and its pull-mode expansion) shares one copy.
        """
        if self._rsrc is None:
            rsrc = self.arc_sources()
            rsrc.setflags(write=False)
            self._rsrc = rsrc
        return self._rsrc

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    def to_scipy(self):
        """Return the graph as a ``scipy.sparse.csr_matrix`` (for csgraph)."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.weights, self.indices, self.indptr),
            shape=(self._num_nodes, self._num_nodes),
        )

    def memory_words(self) -> int:
        """Size of the CSR representation in machine words.

        Used by the MR simulator to check the linear-total-space claim
        (M_T = Θ(m)): one word per indptr entry plus two per arc.
        """
        return len(self.indptr) + 2 * self._num_directed_edges

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self._num_nodes}, m={self.num_edges}, "
            f"w=[{self.min_weight:.3g}, {self.max_weight:.3g}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.weights, other.weights)
        )

    def __hash__(self):  # graphs are mutable-looking containers; keep unhashable
        raise TypeError("CSRGraph is not hashable")
