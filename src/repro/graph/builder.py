"""Builders that turn raw edge data into a canonical :class:`CSRGraph`.

Canonical form means: self-loops dropped, parallel edges deduplicated to the
minimum weight (the only one shortest paths can use), both directions
stored, and each adjacency list sorted by neighbour id.  Every generator and
reader in the library funnels through :func:`from_edges` so that any two
representations of the same graph compare equal.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph

__all__ = ["from_edges", "from_edge_list", "symmetrized"]


def from_edges(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    num_nodes: int,
    *,
    dedup: str = "min",
) -> CSRGraph:
    """Build a canonical undirected :class:`CSRGraph` from parallel arrays.

    Parameters
    ----------
    u, v:
        Integer endpoint arrays.  Each pair ``(u[i], v[i])`` denotes one
        undirected edge; orientation and duplicates are irrelevant.
    w:
        Positive weights, parallel to ``u``/``v``.
    num_nodes:
        Number of nodes ``n``; endpoints must lie in ``[0, n)``.
    dedup:
        Policy for parallel edges: ``"min"`` (default) keeps the lightest
        copy — the only one relevant to shortest paths — while ``"error"``
        raises :class:`GraphValidationError` when duplicates exist.

    Returns
    -------
    CSRGraph
    """
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    w = np.asarray(w, dtype=np.float64).ravel()
    if not (len(u) == len(v) == len(w)):
        raise GraphValidationError("u, v, w must have equal length")
    n = int(num_nodes)
    if n < 0:
        raise GraphValidationError("num_nodes must be non-negative")
    if len(u):
        lo = min(u.min(), v.min())
        hi = max(u.max(), v.max())
        if lo < 0 or hi >= n:
            raise GraphValidationError(
                f"edge endpoint out of range [0, {n}): saw [{lo}, {hi}]"
            )
        if w.min() <= 0:
            raise GraphValidationError("edge weights must be strictly positive")
        if not np.all(np.isfinite(w)):
            raise GraphValidationError("edge weights must be finite")

    # Drop self-loops: they never participate in shortest paths.
    keep = u != v
    u, v, w = u[keep], v[keep], w[keep]

    # Normalize orientation so duplicates collide, then deduplicate.
    a = np.minimum(u, v)
    b = np.maximum(u, v)
    if len(a):
        order = np.lexsort((w, b, a))
        a, b, w = a[order], b[order], w[order]
        new_group = np.empty(len(a), dtype=bool)
        new_group[0] = True
        np.logical_or(a[1:] != a[:-1], b[1:] != b[:-1], out=new_group[1:])
        if dedup == "error" and not new_group.all():
            raise GraphValidationError("duplicate edges present and dedup='error'")
        first = np.flatnonzero(new_group)
        a, b, w = a[first], b[first], w[first]  # lightest copy per pair

    # Symmetrize: store each edge in both directions and sort into CSR.
    src = np.concatenate([a, b])
    dst = np.concatenate([b, a])
    ww = np.concatenate([w, w])
    order = np.lexsort((dst, src))
    src, dst, ww = src[order], dst[order], ww[order]

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRGraph(indptr, dst, ww)


def from_edge_list(
    edges: Iterable[Tuple[int, int, float]], num_nodes: int, **kwargs
) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v, w)`` triples.

    Convenience wrapper over :func:`from_edges` for tests and small inputs.
    """
    triples = list(edges)
    if not triples:
        return from_edges(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0), num_nodes
        )
    u, v, w = map(np.asarray, zip(*triples))
    return from_edges(u, v, w, num_nodes, **kwargs)


def symmetrized(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, num_nodes: int
) -> CSRGraph:
    """Build an undirected graph from a *directed* edge list.

    This mirrors the paper's treatment of the twitter graph ("originally
    directed, has been symmetrized"): every arc becomes an undirected edge,
    and anti-parallel arcs with different weights collapse to the lighter
    one.
    """
    return from_edges(u, v, w, num_nodes, dedup="min")
