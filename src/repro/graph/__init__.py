"""Weighted-graph substrate: CSR storage, construction, I/O, and operations."""

from repro.graph.csr import CSRGraph
from repro.graph.builder import from_edges, from_edge_list, symmetrized
from repro.graph.io import (
    read_auto,
    read_dimacs,
    read_edge_list,
    read_metis,
    write_auto,
    write_dimacs,
    write_edge_list,
    write_metis,
)
from repro.graph.serialize import (
    StoreHeader,
    is_store,
    load_clustering,
    load_graph,
    open_store,
    read_store_header,
    save_clustering,
    save_graph,
    write_store,
)
from repro.graph.partition import (
    PartitionPlan,
    PartitionedStore,
    ensure_partitioned,
    load_partitioned,
    plan_partition,
    write_partitioned_store,
)
from repro.graph.ops import (
    connected_components,
    largest_connected_component,
    induced_subgraph,
    degree_histogram,
    total_weight,
    cartesian_product,
)
from repro.graph.validate import validate_graph

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_edge_list",
    "symmetrized",
    "read_auto",
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "write_auto",
    "save_graph",
    "load_graph",
    "save_clustering",
    "load_clustering",
    "write_store",
    "open_store",
    "read_store_header",
    "is_store",
    "StoreHeader",
    "PartitionPlan",
    "PartitionedStore",
    "plan_partition",
    "write_partitioned_store",
    "ensure_partitioned",
    "load_partitioned",
    "connected_components",
    "largest_connected_component",
    "induced_subgraph",
    "degree_histogram",
    "total_weight",
    "cartesian_product",
    "validate_graph",
]
