"""Weighted-graph substrate: CSR storage, construction, I/O, and operations."""

from repro.graph.csr import CSRGraph
from repro.graph.builder import from_edges, from_edge_list, symmetrized
from repro.graph.io import read_dimacs, write_dimacs, read_edge_list, write_edge_list
from repro.graph.serialize import (
    load_clustering,
    load_graph,
    save_clustering,
    save_graph,
)
from repro.graph.ops import (
    connected_components,
    largest_connected_component,
    induced_subgraph,
    degree_histogram,
    total_weight,
    cartesian_product,
)
from repro.graph.validate import validate_graph

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_edge_list",
    "symmetrized",
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
    "save_graph",
    "load_graph",
    "save_clustering",
    "load_clustering",
    "connected_components",
    "largest_connected_component",
    "induced_subgraph",
    "degree_histogram",
    "total_weight",
    "cartesian_product",
    "validate_graph",
]
