"""Deep structural validation of :class:`CSRGraph` invariants.

The :class:`~repro.graph.csr.CSRGraph` constructor performs cheap O(1)/O(m)
checks; :func:`validate_graph` performs the expensive ones (symmetry, sorted
adjacency, absence of self-loops and duplicates) and is meant for tests,
file-ingestion boundaries, and debugging — not hot paths.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph

__all__ = ["validate_graph"]


def validate_graph(graph: CSRGraph) -> None:
    """Raise :class:`GraphValidationError` if ``graph`` is not canonical.

    Canonical means: every arc has a reverse arc of equal weight, adjacency
    lists are sorted by neighbour id, and there are no self-loops or
    parallel arcs.
    """
    n = graph.num_nodes
    src = graph.arc_sources()
    dst = graph.indices
    w = graph.weights

    if np.any(src == dst):
        raise GraphValidationError("self-loop present")

    # Sorted adjacency with no duplicates: within each node's slice the
    # neighbour ids must be strictly increasing.
    deg = graph.degrees
    if graph.num_arcs:
        same_src = src[1:] == src[:-1]
        if np.any(same_src & (dst[1:] <= dst[:-1])):
            raise GraphValidationError("adjacency lists not strictly sorted")

    # Symmetry with equal weights: the multiset of (min, max, w) triples
    # must contain every triple an even number of times, split equally
    # between the two orientations.  Cheaper: sort (src,dst,w) and
    # (dst,src,w) and compare.
    fwd = np.lexsort((w, dst, src))
    rev = np.lexsort((w, src, dst))
    if not (
        np.array_equal(src[fwd], dst[rev])
        and np.array_equal(dst[fwd], src[rev])
        and np.allclose(w[fwd], w[rev])
    ):
        raise GraphValidationError("adjacency structure is not symmetric")

    if int(deg.sum()) != graph.num_arcs:
        raise GraphValidationError("degree sum does not match arc count")
    _ = n  # n validated by the constructor; referenced for clarity
