"""Graph file I/O.

Two formats are supported:

* **DIMACS shortest-path format** (``.gr``), the format of the 9th DIMACS
  Implementation Challenge road networks the paper benchmarks on
  (roads-USA, roads-CAL).  Reading a real DIMACS file drops this library
  straight onto the paper's actual inputs when they are available.
* A plain **whitespace-separated edge list** (``u v w`` per line, ``#``
  comments), convenient for interchange with SNAP-style datasets
  (livejournal, twitter).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph

__all__ = [
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "read_auto",
    "write_auto",
]

PathLike = Union[str, Path]

#: Extension → format name used by :func:`read_auto` / :func:`write_auto`.
#: ``.gz`` is stripped first, so ``graph.gr.gz`` resolves like ``graph.gr``.
_EXTENSION_FORMATS = {
    ".gr": "dimacs",
    ".dimacs": "dimacs",
    ".metis": "metis",
    ".graph": "metis",
    ".npz": "npz",
    ".rcsr": "store",
}


def _extension_format(path: PathLike) -> str:
    """Format implied by ``path``'s extension (``.gz`` is transparent)."""
    suffixes = Path(path).suffixes
    if suffixes and suffixes[-1] == ".gz":
        suffixes = suffixes[:-1]
    if suffixes and suffixes[-1] in _EXTENSION_FORMATS:
        return _EXTENSION_FORMATS[suffixes[-1]]
    return "edgelist"


def _format_of(path: PathLike) -> str:
    """Format name for ``path``: store magic first, then extension."""
    from repro.graph.serialize import is_store

    path = Path(path)
    if path.exists() and is_store(path):
        return "store"
    return _extension_format(path)


def read_auto(path: PathLike) -> CSRGraph:
    """Read a graph in whatever format ``path`` holds.

    GraphStore files are recognized by magic (and memory-mapped, not
    loaded); everything else dispatches on extension — ``.gr``/``.dimacs``
    → DIMACS, ``.metis``/``.graph`` → METIS, ``.npz`` → the legacy binary
    dump, anything else → whitespace edge list.  ``.gz`` is transparent
    for the text formats.
    """
    fmt = _format_of(path)
    if fmt == "store":
        return CSRGraph.open_mmap(path)
    if fmt == "npz":
        from repro.graph.serialize import load_graph

        return load_graph(path)
    if fmt == "dimacs":
        return read_dimacs(path)
    if fmt == "metis":
        return read_metis(path)
    return read_edge_list(path)


def write_auto(graph: CSRGraph, path: PathLike, comment: str = "") -> None:
    """Write ``graph`` in the format implied by ``path``'s extension.

    The inverse dispatch of :func:`read_auto`: ``.rcsr`` → GraphStore,
    ``.npz`` → legacy binary dump, ``.gr``/``.dimacs`` → DIMACS,
    ``.metis``/``.graph`` → METIS, anything else → edge list.
    """
    fmt = _extension_format(path)
    if fmt == "store":
        from repro.graph.serialize import write_store

        write_store(graph, path)
    elif fmt == "npz":
        from repro.graph.serialize import save_graph

        save_graph(graph, path)
    elif fmt == "dimacs":
        write_dimacs(graph, path, comment=comment)
    elif fmt == "metis":
        write_metis(graph, path, comment=comment)
    else:
        write_edge_list(graph, path)


def _open_text(path: PathLike, mode: str = "rt"):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def read_dimacs(path: PathLike) -> CSRGraph:
    """Read a graph in DIMACS ``.gr`` format (gzip transparently handled).

    The format uses 1-based node ids; they are shifted to 0-based.  Arc
    records appearing in both directions (as DIMACS road files do) collapse
    into single undirected edges.

    Raises
    ------
    GraphFormatError
        On a missing/duplicate problem line or malformed records.
    """
    n = None
    us: List[int] = []
    vs: List[int] = []
    ws: List[float] = []
    with _open_text(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if n is not None:
                    raise GraphFormatError(f"line {lineno}: duplicate problem line")
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphFormatError(f"line {lineno}: expected 'p sp n m'")
                n = int(parts[2])
            elif parts[0] == "a":
                if n is None:
                    raise GraphFormatError(f"line {lineno}: arc before problem line")
                if len(parts) != 4:
                    raise GraphFormatError(f"line {lineno}: expected 'a u v w'")
                us.append(int(parts[1]) - 1)
                vs.append(int(parts[2]) - 1)
                ws.append(float(parts[3]))
            else:
                raise GraphFormatError(
                    f"line {lineno}: unknown record type {parts[0]!r}"
                )
    if n is None:
        raise GraphFormatError("missing problem line ('p sp n m')")
    return from_edges(
        np.asarray(us, np.int64), np.asarray(vs, np.int64), np.asarray(ws), n
    )


def write_dimacs(graph: CSRGraph, path: PathLike, comment: str = "") -> None:
    """Write a graph in DIMACS ``.gr`` format (both arc directions, 1-based)."""
    u, v, w = graph.edge_arrays()
    with _open_text(path, "wt") as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"c {line}\n")
        fh.write(f"p sp {graph.num_nodes} {graph.num_arcs}\n")
        for a, b, x in zip(u, v, w):
            # Integer weights are written without a trailing ".0" so that
            # files round-trip byte-identically through integer parsers.
            x_repr = int(x) if float(x).is_integer() else x
            fh.write(f"a {a + 1} {b + 1} {x_repr}\n")
            fh.write(f"a {b + 1} {a + 1} {x_repr}\n")


def read_edge_list(path: PathLike, *, num_nodes: int = None) -> CSRGraph:
    """Read a whitespace-separated ``u v w`` edge list (0-based ids).

    Lines starting with ``#`` are comments.  A missing third column gets
    weight 1 (unweighted input).  ``num_nodes`` defaults to
    ``1 + max(endpoint)``.
    """
    us: List[int] = []
    vs: List[int] = []
    ws: List[float] = []
    with _open_text(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(f"line {lineno}: expected 'u v [w]'")
            us.append(int(parts[0]))
            vs.append(int(parts[1]))
            ws.append(float(parts[2]) if len(parts) == 3 else 1.0)
    if not us:
        return from_edges(
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0),
            num_nodes or 0,
        )
    u = np.asarray(us, np.int64)
    v = np.asarray(vs, np.int64)
    n = num_nodes if num_nodes is not None else int(max(u.max(), v.max())) + 1
    return from_edges(u, v, np.asarray(ws), n)


def read_metis(path: PathLike) -> CSRGraph:
    """Read a graph in METIS format.

    Header line ``n m [fmt]``; each subsequent non-comment line lists node
    ``i``'s neighbours (1-based).  ``fmt`` ending in ``1`` means each
    neighbour id is followed by an edge weight; unweighted files get unit
    weights.  Vertex weights (``fmt`` = ``1x`` / ncon) are not supported.
    """
    us: List[int] = []
    vs: List[int] = []
    ws: List[float] = []
    n = None
    declared_m = None
    has_edge_weights = False
    node = 0
    with _open_text(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if line.startswith("%"):
                continue
            if not line:
                if n is None:
                    continue  # leading blank lines before the header
                # A blank body line is a node with an empty adjacency list
                # (METIS writes one line per node, neighbours or not).
                node += 1
                if node > n:
                    raise GraphFormatError(
                        f"line {lineno}: more node lines than n={n}"
                    )
                continue
            parts = line.split()
            if n is None:
                if len(parts) < 2:
                    raise GraphFormatError(
                        f"line {lineno}: METIS header needs 'n m [fmt]'"
                    )
                n = int(parts[0])
                declared_m = int(parts[1])
                if len(parts) >= 3:
                    fmt = parts[2]
                    if fmt.endswith("1"):
                        has_edge_weights = True
                    if len(fmt) > 1 and fmt[-2] == "1" or len(parts) >= 4:
                        raise GraphFormatError(
                            f"line {lineno}: vertex weights not supported"
                        )
                continue
            node += 1
            if node > n:
                raise GraphFormatError(f"line {lineno}: more node lines than n={n}")
            step = 2 if has_edge_weights else 1
            if has_edge_weights and len(parts) % 2:
                raise GraphFormatError(
                    f"line {lineno}: odd token count in weighted adjacency"
                )
            for i in range(0, len(parts), step):
                us.append(node - 1)
                vs.append(int(parts[i]) - 1)
                ws.append(float(parts[i + 1]) if has_edge_weights else 1.0)
    if n is None:
        raise GraphFormatError("missing METIS header line")
    if node != n:
        raise GraphFormatError(f"expected {n} node lines, found {node}")
    graph = from_edges(
        np.asarray(us, np.int64), np.asarray(vs, np.int64), np.asarray(ws), n
    )
    if declared_m is not None and graph.num_edges != declared_m:
        raise GraphFormatError(
            f"header declares m={declared_m} edges but file encodes {graph.num_edges}"
        )
    return graph


def write_metis(graph: CSRGraph, path: PathLike, comment: str = "") -> None:
    """Write a graph in METIS format with edge weights (fmt ``001``).

    METIS requires integral weights ≥ 1; floats are written as-is, which
    standard METIS tools reject but :func:`read_metis` round-trips.
    """
    with _open_text(path, "wt") as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{graph.num_nodes} {graph.num_edges} 001\n")
        for u in range(graph.num_nodes):
            nbrs, ws = graph.neighbors(u)
            tokens = []
            for v, w in zip(nbrs, ws):
                w_repr = int(w) if float(w).is_integer() else float(w)
                tokens.append(f"{v + 1} {w_repr}")
            fh.write(" ".join(tokens) + "\n")


def write_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write each undirected edge once as ``u v w`` (0-based ids)."""
    u, v, w = graph.edge_arrays()
    with _open_text(path, "wt") as fh:
        fh.write(f"# nodes {graph.num_nodes} edges {graph.num_edges}\n")
        for a, b, x in zip(u, v, w):
            fh.write(f"{a} {b} {float(x)!r}\n")
