"""Binary serialization for graphs and clusterings.

Two binary graph containers coexist:

* the legacy **npz dump** (:func:`save_graph` / :func:`load_graph`) —
  compressed, self-describing, always loads full copies of the arrays;
* the **GraphStore format** (:func:`write_store` / :func:`read_store_header`
  / :func:`open_store`) — an uncompressed, versioned container whose raw
  int64/float64 sections are 64-byte aligned so
  :meth:`~repro.graph.csr.CSRGraph.open_mmap` can memory-map them
  read-only.  Repeated CLI/benchmark invocations and every process-pool
  worker then share the same page-cache bytes: opening a stored graph is
  O(1) regardless of size, and nothing is pickled or copied.

GraphStore on-disk layout (version 1, little-endian)::

    offset  size          field
    ------  ------------  ---------------------------------------------
    0       8             magic ``b"REPROCSR"``
    8       4             format version (uint32, currently 1)
    12      4             flags (uint32; bit 0 = reverse section present)
    16      8             num_nodes n (int64)
    24      8             num_arcs 2m (int64)
    32      8             indptr section offset (int64)
    40      8             indices section offset (int64)
    48      8             weights section offset (int64)
    56      8             rsrc section offset (int64, 0 when absent)
    ...                   sections, each 64-byte aligned:
                          indptr  (n+1) x int64
                          indices (2m)  x int64
                          weights (2m)  x float64
                          rsrc    (2m)  x int64   [optional]

The optional **reverse-CSR section** (``rsrc``, flag bit 0) stores the
source row of every arc slot.  Stored graphs are symmetric with sorted
rows, so the reverse CSR shares ``indptr``/``indices``/``weights`` with
the forward one — reading row ``t`` target-major lists exactly ``t``'s
in-arcs with ascending sources — and the arc→row map is the only
structure the pull-mode growing step (:mod:`repro.mr.emit`) needs to
gather by.  The section is written by ``write_store(...,
reverse=True)`` or appended lazily by
:meth:`repro.runtime.store.GraphStore.ensure_reverse`; readers that
predate it ignore the flag and the trailing section (the field was
reserved-zero before).

Clusterings keep the npz form (:func:`save_clustering`), so a
decomposition computed once (expensive at scale) can be re-analyzed
without recomputing.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = [
    "save_graph",
    "load_graph",
    "save_clustering",
    "load_clustering",
    "write_store",
    "ensure_reverse_section",
    "read_store_header",
    "open_store",
    "is_store",
    "StoreHeader",
    "STORE_SUFFIX",
    "STORE_VERSION",
    "FLAG_REVERSE",
]

PathLike = Union[str, Path]

_GRAPH_MAGIC = "repro-csr-v1"
_CLUSTERING_MAGIC = "repro-clustering-v1"

#: Canonical file suffix of the GraphStore container.
STORE_SUFFIX = ".rcsr"
#: Current GraphStore format version.
STORE_VERSION = 1

_STORE_MAGIC = b"REPROCSR"
_HEADER_SIZE = 64
_HEADER_FMT = "<8sII6q"  # magic, version, flags, n, arcs, 4 section offsets

#: Header flag bit: the reverse-CSR (``rsrc``) section is present.
FLAG_REVERSE = 0x1


def _align64(offset: int) -> int:
    return (offset + 63) & ~63


@dataclass(frozen=True)
class StoreHeader:
    """Decoded GraphStore header — everything except the arrays.

    ``repro info`` prints these fields for ``.rcsr`` files without
    touching the data sections, and :meth:`CSRGraph.open_mmap` uses the
    offsets to build its zero-copy views.
    """

    path: Path
    version: int
    num_nodes: int
    num_arcs: int
    indptr_offset: int
    indices_offset: int
    weights_offset: int
    file_size: int
    flags: int = 0
    rsrc_offset: int = 0

    @property
    def num_edges(self) -> int:
        """Undirected edge count (half the stored arcs)."""
        return self.num_arcs // 2

    @property
    def has_reverse(self) -> bool:
        """Whether the reverse-CSR (``rsrc``) section is present."""
        return bool(self.flags & FLAG_REVERSE) and self.rsrc_offset > 0

    @property
    def data_bytes(self) -> int:
        """Bytes occupied by the array sections (without padding)."""
        base = 8 * (self.num_nodes + 1) + 16 * self.num_arcs
        if self.has_reverse:
            base += 8 * self.num_arcs
        return base


def is_store(path: PathLike) -> bool:
    """Whether ``path`` is a GraphStore file (by magic, not extension)."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(_STORE_MAGIC)) == _STORE_MAGIC
    except OSError:
        return False


def write_store(graph: CSRGraph, path: PathLike, *, reverse: bool = False) -> Path:
    """Write ``graph`` as a GraphStore file and return its path.

    The write is atomic (temp file + ``os.replace``): a concurrent
    :class:`~repro.runtime.store.GraphStore` reader either sees the old
    file or the complete new one, never a torn header.

    ``reverse=True`` additionally writes the reverse-CSR ``rsrc``
    section (the source row of every arc slot) so pull-mode growing
    steps can memory-map their gather index instead of rebuilding it
    per process.
    """
    path = Path(path)
    n = graph.num_nodes
    arcs = graph.num_arcs
    indptr_off = _align64(_HEADER_SIZE)
    indices_off = _align64(indptr_off + 8 * (n + 1))
    weights_off = _align64(indices_off + 8 * arcs)
    rsrc_off = _align64(weights_off + 8 * arcs) if reverse else 0
    header = struct.pack(
        _HEADER_FMT,
        _STORE_MAGIC,
        STORE_VERSION,
        FLAG_REVERSE if reverse else 0,
        n,
        arcs,
        indptr_off,
        indices_off,
        weights_off,
        rsrc_off,
    ).ljust(_HEADER_SIZE, b"\x00")

    sections = [
        (indptr_off, graph.indptr),
        (indices_off, graph.indices),
        (weights_off, graph.weights),
    ]
    if reverse:
        rsrc = graph.rsrc if graph.rsrc is not None else graph.arc_sources()
        sections.append((rsrc_off, rsrc))

    import tempfile

    # A private temp file (mkstemp, not a PID-derived name) keeps two
    # concurrent writers of the same path from truncating each other;
    # the final os.replace publishes whichever finished last, whole.
    fd, tmp = tempfile.mkstemp(prefix=path.name + ".tmp", dir=str(path.parent))
    try:
        # mkstemp creates 0600 files; publish with umask-honouring
        # permissions like every other graph writer.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "wb") as fh:
            fh.write(header)
            for offset, array in sections:
                fh.write(b"\x00" * (offset - fh.tell()))
                fh.write(np.ascontiguousarray(array).tobytes())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on a failed write
            os.unlink(tmp)
    return path


def ensure_reverse_section(path: PathLike) -> StoreHeader:
    """Make sure ``path`` carries the reverse-CSR section; return its header.

    A store that already has the section is untouched (O(1) header
    read); otherwise the file is atomically rewritten with the ``rsrc``
    section appended.  This is the lazy builder
    :meth:`repro.runtime.store.GraphStore.ensure_reverse` delegates to.
    """
    header = read_store_header(path)
    if header.has_reverse:
        return header
    graph = open_store(path)
    write_store(graph, path, reverse=True)
    return read_store_header(path)


def read_store_header(path: PathLike) -> StoreHeader:
    """Read and validate a GraphStore header (64 bytes, no array I/O).

    Raises
    ------
    GraphFormatError
        On a wrong magic, unsupported version, or offsets inconsistent
        with the file size.
    """
    path = Path(path)
    file_size = path.stat().st_size
    with open(path, "rb") as fh:
        raw = fh.read(_HEADER_SIZE)
    if len(raw) < _HEADER_SIZE or raw[: len(_STORE_MAGIC)] != _STORE_MAGIC:
        raise GraphFormatError(f"{path}: not a GraphStore file")
    (_, version, flags, n, arcs, indptr_off, indices_off, weights_off,
     rsrc_off) = struct.unpack(_HEADER_FMT, raw[: struct.calcsize(_HEADER_FMT)])
    if version != STORE_VERSION:
        raise GraphFormatError(
            f"{path}: GraphStore version {version} not supported "
            f"(expected {STORE_VERSION})"
        )
    if n < 0 or arcs < 0:
        raise GraphFormatError(f"{path}: negative section length in header")
    sections = [
        (indptr_off, 8 * (n + 1)),
        (indices_off, 8 * arcs),
        (weights_off, 8 * arcs),
    ]
    if flags & FLAG_REVERSE:
        sections.append((rsrc_off, 8 * arcs))
    for offset, length in sections:
        if offset < _HEADER_SIZE or offset + length > file_size:
            raise GraphFormatError(
                f"{path}: section [{offset}, {offset + length}) outside "
                f"file of {file_size} bytes"
            )
    return StoreHeader(
        path=path,
        version=version,
        num_nodes=n,
        num_arcs=arcs,
        indptr_offset=indptr_off,
        indices_offset=indices_off,
        weights_offset=weights_off,
        file_size=file_size,
        flags=flags,
        rsrc_offset=rsrc_off if flags & FLAG_REVERSE else 0,
    )


def open_store(path: PathLike, *, validate: bool = False) -> CSRGraph:
    """Memory-map a GraphStore file as a read-only :class:`CSRGraph`.

    Alias of :meth:`CSRGraph.open_mmap`; see there for semantics.
    """
    return CSRGraph.open_mmap(path, validate=validate)


def save_graph(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph as a compressed ``.npz`` CSR dump."""
    np.savez_compressed(
        path,
        magic=np.array(_GRAPH_MAGIC),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_graph(path: PathLike) -> CSRGraph:
    """Load a graph written by :func:`save_graph`.

    Raises
    ------
    GraphFormatError
        If the file is not a v1 CSR dump.
    """
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _GRAPH_MAGIC:
            raise GraphFormatError(f"{path}: not a {_GRAPH_MAGIC} file")
        return CSRGraph(data["indptr"], data["indices"], data["weights"])


def save_clustering(clustering, path: PathLike) -> None:
    """Write a :class:`~repro.core.cluster.Clustering` as ``.npz``.

    Persists the assignment arrays and scalar metadata; the per-stage
    diagnostics and counters are execution artifacts and are not stored.
    """
    np.savez_compressed(
        path,
        magic=np.array(_CLUSTERING_MAGIC),
        center=clustering.center,
        dist_to_center=clustering.dist_to_center,
        centers=clustering.centers,
        scalars=np.array(
            [clustering.radius, clustering.delta_end, float(clustering.tau),
             float(clustering.singleton_count)]
        ),
    )


def load_clustering(path: PathLike):
    """Load a clustering written by :func:`save_clustering`."""
    from repro.core.cluster import Clustering
    from repro.mr.metrics import Counters

    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _CLUSTERING_MAGIC:
            raise GraphFormatError(f"{path}: not a {_CLUSTERING_MAGIC} file")
        radius, delta_end, tau, singletons = data["scalars"]
        clustering = Clustering(
            center=data["center"],
            dist_to_center=data["dist_to_center"],
            centers=data["centers"],
            radius=float(radius),
            delta_end=float(delta_end),
            tau=int(tau),
            counters=Counters(),
            singleton_count=int(singletons),
        )
    clustering.validate()
    return clustering
