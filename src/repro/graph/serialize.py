"""Binary (NumPy ``.npz``) serialization for graphs and clusterings.

DIMACS/edge-list text formats are interchange formats; for repeated
experiments the binary CSR dump is 10-50x faster to load and preserves
float weights exactly.  Clusterings serialize alongside so a decomposition
computed once (expensive at scale) can be re-analyzed without recomputing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = ["save_graph", "load_graph", "save_clustering", "load_clustering"]

PathLike = Union[str, Path]

_GRAPH_MAGIC = "repro-csr-v1"
_CLUSTERING_MAGIC = "repro-clustering-v1"


def save_graph(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph as a compressed ``.npz`` CSR dump."""
    np.savez_compressed(
        path,
        magic=np.array(_GRAPH_MAGIC),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_graph(path: PathLike) -> CSRGraph:
    """Load a graph written by :func:`save_graph`.

    Raises
    ------
    GraphFormatError
        If the file is not a v1 CSR dump.
    """
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _GRAPH_MAGIC:
            raise GraphFormatError(f"{path}: not a {_GRAPH_MAGIC} file")
        return CSRGraph(data["indptr"], data["indices"], data["weights"])


def save_clustering(clustering, path: PathLike) -> None:
    """Write a :class:`~repro.core.cluster.Clustering` as ``.npz``.

    Persists the assignment arrays and scalar metadata; the per-stage
    diagnostics and counters are execution artifacts and are not stored.
    """
    np.savez_compressed(
        path,
        magic=np.array(_CLUSTERING_MAGIC),
        center=clustering.center,
        dist_to_center=clustering.dist_to_center,
        centers=clustering.centers,
        scalars=np.array(
            [clustering.radius, clustering.delta_end, float(clustering.tau),
             float(clustering.singleton_count)]
        ),
    )


def load_clustering(path: PathLike):
    """Load a clustering written by :func:`save_clustering`."""
    from repro.core.cluster import Clustering
    from repro.mr.metrics import Counters

    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _CLUSTERING_MAGIC:
            raise GraphFormatError(f"{path}: not a {_CLUSTERING_MAGIC} file")
        radius, delta_end, tau, singletons = data["scalars"]
        clustering = Clustering(
            center=data["center"],
            dist_to_center=data["dist_to_center"],
            centers=data["centers"],
            radius=float(radius),
            delta_end=float(delta_end),
            tau=int(tau),
            counters=Counters(),
            singleton_count=int(singletons),
        )
    clustering.validate()
    return clustering
