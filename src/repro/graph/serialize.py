"""Binary serialization for graphs and clusterings.

Two binary graph containers coexist:

* the legacy **npz dump** (:func:`save_graph` / :func:`load_graph`) —
  compressed, self-describing, always loads full copies of the arrays;
* the **GraphStore format** (:func:`write_store` / :func:`read_store_header`
  / :func:`open_store`) — an uncompressed, versioned container whose raw
  int64/float64 sections are 64-byte aligned so
  :meth:`~repro.graph.csr.CSRGraph.open_mmap` can memory-map them
  read-only.  Repeated CLI/benchmark invocations and every process-pool
  worker then share the same page-cache bytes: opening a stored graph is
  O(1) regardless of size, and nothing is pickled or copied.

GraphStore on-disk layout (version 2, little-endian)::

    offset  size          field
    ------  ------------  ---------------------------------------------
    0       8             magic ``b"REPROCSR"``
    8       4             format version (uint32, currently 2)
    12      4             flags (uint32; bit 0 = reverse section present,
                          bit 1 = trailing digest block present)
    16      8             num_nodes n (int64)
    24      8             num_arcs 2m (int64)
    32      8             indptr section offset (int64)
    40      8             indices section offset (int64)
    48      8             weights section offset (int64)
    56      8             rsrc section offset (int64, 0 when absent)
    ...                   sections, each 64-byte aligned:
                          indptr  (n+1) x int64
                          indices (2m)  x int64
                          weights (2m)  x float64
                          rsrc    (2m)  x int64   [optional]
    ...                   digest block (64-byte aligned, flag bit 1)::

                              0   8    magic ``b"RCSRDIG1"``
                              8   4    entry count (uint32)
                              12  4    reserved (0)
                              16  40*k entries: name (8s, NUL-padded)
                                       + raw sha256 (32s); entry 0 is
                                       ``header`` (digest of the 64
                                       header bytes), then one entry
                                       per section in file order.

The digest block sits at a *deterministic* offset — ``_align64`` of the
end of the last section — because all 64 header bytes are spoken for;
flag bit 1 is the only pointer to it.  Version-1 stores (no block) stay
fully readable.  ``REPRO_STORE_VERIFY`` picks how much of the block an
open pays for: ``header`` (default) re-hashes only the 64 header bytes
and bounds-checks the block, which is O(1) yet catches torn headers and
any tail truncation; ``full`` streams every section.

The optional **reverse-CSR section** (``rsrc``, flag bit 0) stores the
source row of every arc slot.  Stored graphs are symmetric with sorted
rows, so the reverse CSR shares ``indptr``/``indices``/``weights`` with
the forward one — reading row ``t`` target-major lists exactly ``t``'s
in-arcs with ascending sources — and the arc→row map is the only
structure the pull-mode growing step (:mod:`repro.mr.emit`) needs to
gather by.  The section is written by ``write_store(...,
reverse=True)`` or appended lazily by
:meth:`repro.runtime.store.GraphStore.ensure_reverse`; readers that
predate it ignore the flag and the trailing section (the field was
reserved-zero before).

Clusterings keep the npz form (:func:`save_clustering`), so a
decomposition computed once (expensive at scale) can be re-analyzed
without recomputing.
"""

from __future__ import annotations

import hashlib
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import CorruptArtifact, GraphFormatError
from repro.graph.csr import CSRGraph
from repro.integrity import file_sha256, preflight_free_space, verify_level

__all__ = [
    "save_graph",
    "load_graph",
    "save_clustering",
    "load_clustering",
    "write_store",
    "ensure_reverse_section",
    "read_store_header",
    "open_store",
    "verify_store",
    "is_store",
    "StoreHeader",
    "STORE_SUFFIX",
    "STORE_VERSION",
    "FLAG_REVERSE",
    "FLAG_DIGESTS",
]

PathLike = Union[str, Path]

_GRAPH_MAGIC = "repro-csr-v1"
_CLUSTERING_MAGIC = "repro-clustering-v1"

#: Canonical file suffix of the GraphStore container.
STORE_SUFFIX = ".rcsr"
#: Current GraphStore format version (2 = trailing digest block).
STORE_VERSION = 2
#: Versions :func:`read_store_header` accepts.
_SUPPORTED_VERSIONS = (1, 2)

_STORE_MAGIC = b"REPROCSR"
_HEADER_SIZE = 64
_HEADER_FMT = "<8sII6q"  # magic, version, flags, n, arcs, 4 section offsets

#: Header flag bit: the reverse-CSR (``rsrc``) section is present.
FLAG_REVERSE = 0x1
#: Header flag bit: the trailing per-section digest block is present.
FLAG_DIGESTS = 0x2

_DIGEST_MAGIC = b"RCSRDIG1"
_DIGEST_HEADER_FMT = "<8sII"  # magic, entry count, reserved
_DIGEST_ENTRY_FMT = "<8s32s"  # section name, raw sha256
_DIGEST_HEADER_SIZE = struct.calcsize(_DIGEST_HEADER_FMT)
_DIGEST_ENTRY_SIZE = struct.calcsize(_DIGEST_ENTRY_FMT)
#: Digest-block entry name for the 64 header bytes.
_HEADER_ENTRY = "header"


def _align64(offset: int) -> int:
    return (offset + 63) & ~63


def _store_fault(kind: str, path: Path):
    """Consult the fault plan for a scheduled store-write fault.

    ``kind`` is ``"pre"`` (before any byte lands: may raise a scheduled
    ``enospc``/``ioerror``) or ``"post"`` (after publish: returns True
    when a scheduled ``corrupt`` should flip a payload byte).  Imported
    lazily — the fault plane lives in :mod:`repro.mr.faults` and is a
    no-op unless ``REPRO_FAULT_PLAN`` is armed.
    """
    from repro.mr import faults

    plan = faults.get_fault_plan()
    if plan is None:
        return False
    ordinal = faults.store_write_ordinal(advance=(kind == "pre"))
    if kind == "pre":
        import errno

        action = plan.io_fault("store", ordinal)
        if action == "enospc":
            raise OSError(errno.ENOSPC, f"fault plan: enospc writing {path}")
        if action == "ioerror":
            raise OSError(errno.EIO, f"fault plan: ioerror writing {path}")
        return False
    return plan.corrupt_fault("store", ordinal)


@dataclass(frozen=True)
class StoreHeader:
    """Decoded GraphStore header — everything except the arrays.

    ``repro info`` prints these fields for ``.rcsr`` files without
    touching the data sections, and :meth:`CSRGraph.open_mmap` uses the
    offsets to build its zero-copy views.
    """

    path: Path
    version: int
    num_nodes: int
    num_arcs: int
    indptr_offset: int
    indices_offset: int
    weights_offset: int
    file_size: int
    flags: int = 0
    rsrc_offset: int = 0

    @property
    def num_edges(self) -> int:
        """Undirected edge count (half the stored arcs)."""
        return self.num_arcs // 2

    @property
    def has_reverse(self) -> bool:
        """Whether the reverse-CSR (``rsrc``) section is present."""
        return bool(self.flags & FLAG_REVERSE) and self.rsrc_offset > 0

    @property
    def has_digests(self) -> bool:
        """Whether the trailing digest block is present (flag bit 1)."""
        return bool(self.flags & FLAG_DIGESTS)

    @property
    def data_bytes(self) -> int:
        """Bytes occupied by the array sections (without padding)."""
        base = 8 * (self.num_nodes + 1) + 16 * self.num_arcs
        if self.has_reverse:
            base += 8 * self.num_arcs
        return base

    def sections(self) -> List[Tuple[str, int, int]]:
        """``(name, offset, nbytes)`` of every section in file order."""
        out = [
            ("indptr", self.indptr_offset, 8 * (self.num_nodes + 1)),
            ("indices", self.indices_offset, 8 * self.num_arcs),
            ("weights", self.weights_offset, 8 * self.num_arcs),
        ]
        if self.has_reverse:
            out.append(("rsrc", self.rsrc_offset, 8 * self.num_arcs))
        return out

    @property
    def digests_offset(self) -> int:
        """Deterministic offset of the digest block (0 when absent)."""
        if not self.has_digests:
            return 0
        name, offset, nbytes = self.sections()[-1]
        return _align64(offset + nbytes)

    @property
    def digests_size(self) -> int:
        """Byte size of the digest block (0 when absent)."""
        if not self.has_digests:
            return 0
        return _digest_block_size(len(self.sections()))


def _digest_block_size(nsections: int) -> int:
    return _DIGEST_HEADER_SIZE + _DIGEST_ENTRY_SIZE * (nsections + 1)


def _pack_digest_block(entries: List[Tuple[str, bytes]]) -> bytes:
    parts = [struct.pack(_DIGEST_HEADER_FMT, _DIGEST_MAGIC, len(entries), 0)]
    for name, raw in entries:
        parts.append(struct.pack(_DIGEST_ENTRY_FMT, name.encode("ascii"), raw))
    return b"".join(parts)


def read_store_digests(path: PathLike, header: StoreHeader) -> Dict[str, str]:
    """Decode the digest block into ``{entry name: hex sha256}``.

    Raises :class:`~repro.errors.CorruptArtifact` when the block itself
    is damaged (bad magic, wrong entry count, truncation).
    """
    expected = len(header.sections()) + 1
    with open(path, "rb") as fh:
        fh.seek(header.digests_offset)
        raw = fh.read(header.digests_size)
    if len(raw) < header.digests_size:
        raise CorruptArtifact(
            path, detail="digest block truncated"
        )
    magic, count, _ = struct.unpack_from(_DIGEST_HEADER_FMT, raw)
    if magic != _DIGEST_MAGIC or count != expected:
        raise CorruptArtifact(
            path,
            detail=f"digest block damaged (magic={magic!r}, entries={count})",
        )
    digests: Dict[str, str] = {}
    for i in range(count):
        name, sha = struct.unpack_from(
            _DIGEST_ENTRY_FMT, raw, _DIGEST_HEADER_SIZE + i * _DIGEST_ENTRY_SIZE
        )
        digests[name.rstrip(b"\x00").decode("ascii", "replace")] = sha.hex()
    return digests


def is_store(path: PathLike) -> bool:
    """Whether ``path`` is a GraphStore file (by magic, not extension)."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(_STORE_MAGIC)) == _STORE_MAGIC
    except OSError:
        return False


def write_store(
    graph: CSRGraph,
    path: PathLike,
    *,
    reverse: bool = False,
    digests: bool = True,
) -> Path:
    """Write ``graph`` as a GraphStore file and return its path.

    The write is atomic (temp file + ``os.replace``): a concurrent
    :class:`~repro.runtime.store.GraphStore` reader either sees the old
    file or the complete new one, never a torn header.  Free space is
    preflighted so an ENOSPC surfaces before any byte lands, and the
    temp file is always unlinked on failure.

    ``reverse=True`` additionally writes the reverse-CSR ``rsrc``
    section (the source row of every arc slot) so pull-mode growing
    steps can memory-map their gather index instead of rebuilding it
    per process.

    ``digests=True`` (the default) writes a version-2 store with the
    trailing sha256 digest block; ``digests=False`` writes the legacy
    version-1 layout byte for byte — useful for compatibility fixtures.
    """
    path = Path(path)
    n = graph.num_nodes
    arcs = graph.num_arcs
    indptr_off = _align64(_HEADER_SIZE)
    indices_off = _align64(indptr_off + 8 * (n + 1))
    weights_off = _align64(indices_off + 8 * arcs)
    rsrc_off = _align64(weights_off + 8 * arcs) if reverse else 0
    flags = FLAG_REVERSE if reverse else 0
    if digests:
        flags |= FLAG_DIGESTS
    header = struct.pack(
        _HEADER_FMT,
        _STORE_MAGIC,
        STORE_VERSION if digests else 1,
        flags,
        n,
        arcs,
        indptr_off,
        indices_off,
        weights_off,
        rsrc_off,
    ).ljust(_HEADER_SIZE, b"\x00")

    sections = [
        ("indptr", indptr_off, graph.indptr),
        ("indices", indices_off, graph.indices),
        ("weights", weights_off, graph.weights),
    ]
    if reverse:
        rsrc = graph.rsrc if graph.rsrc is not None else graph.arc_sources()
        sections.append(("rsrc", rsrc_off, rsrc))

    end = sections[-1][1] + np.ascontiguousarray(sections[-1][2]).nbytes
    total = _align64(end) + _digest_block_size(len(sections)) if digests else end
    preflight_free_space(path.parent, total, label=f"write_store({path.name})")
    _store_fault("pre", path)

    import tempfile

    # A private temp file (mkstemp, not a PID-derived name) keeps two
    # concurrent writers of the same path from truncating each other;
    # the final os.replace publishes whichever finished last, whole.
    fd, tmp = tempfile.mkstemp(prefix=path.name + ".tmp", dir=str(path.parent))
    try:
        # mkstemp creates 0600 files; publish with umask-honouring
        # permissions like every other graph writer.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        entries = [(_HEADER_ENTRY, hashlib.sha256(header).digest())]
        with os.fdopen(fd, "wb") as fh:
            fh.write(header)
            for name, offset, array in sections:
                payload = np.ascontiguousarray(array).tobytes()
                fh.write(b"\x00" * (offset - fh.tell()))
                fh.write(payload)
                entries.append((name, hashlib.sha256(payload).digest()))
            if digests:
                fh.write(b"\x00" * (_align64(fh.tell()) - fh.tell()))
                fh.write(_pack_digest_block(entries))
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on a failed write
            os.unlink(tmp)
    if _store_fault("post", path):
        _flip_store_byte(path)
    return path


def _flip_store_byte(path: Path) -> None:
    """Flip one payload byte in place (scheduled ``corrupt:`` faults only)."""
    header = read_store_header(path)
    name, offset, nbytes = header.sections()[-1]
    target = offset + nbytes // 2
    with open(path, "r+b") as fh:
        fh.seek(target)
        byte = fh.read(1)
        fh.seek(target)
        fh.write(bytes([byte[0] ^ 0xFF]))


def ensure_reverse_section(path: PathLike) -> StoreHeader:
    """Make sure ``path`` carries the reverse-CSR section; return its header.

    A store that already has the section is untouched (O(1) header
    read); otherwise the file is atomically rewritten with the ``rsrc``
    section appended.  This is the lazy builder
    :meth:`repro.runtime.store.GraphStore.ensure_reverse` delegates to.
    """
    header = read_store_header(path)
    if header.has_reverse:
        return header
    graph = open_store(path)
    write_store(graph, path, reverse=True)
    return read_store_header(path)


def read_store_header(path: PathLike) -> StoreHeader:
    """Read and validate a GraphStore header (64 bytes, no array I/O).

    Raises
    ------
    GraphFormatError
        On a wrong magic or an unsupported format version.
    CorruptArtifact
        When the file *is* a GraphStore (magic matched, version known)
        but its structure is inconsistent: negative lengths, sections or
        the digest block outside the file.  This is the signal the
        quarantine layer reacts to — a wrong-magic file is merely "not
        ours" and is left alone.
    """
    path = Path(path)
    file_size = path.stat().st_size
    with open(path, "rb") as fh:
        raw = fh.read(_HEADER_SIZE)
    if len(raw) < _HEADER_SIZE or raw[: len(_STORE_MAGIC)] != _STORE_MAGIC:
        raise GraphFormatError(f"{path}: not a GraphStore file")
    (_, version, flags, n, arcs, indptr_off, indices_off, weights_off,
     rsrc_off) = struct.unpack(_HEADER_FMT, raw[: struct.calcsize(_HEADER_FMT)])
    if version not in _SUPPORTED_VERSIONS:
        raise GraphFormatError(
            f"{path}: GraphStore version {version} not supported "
            f"(expected one of {_SUPPORTED_VERSIONS})"
        )
    if n < 0 or arcs < 0:
        raise CorruptArtifact(path, detail="negative section length in header")
    sections = [
        (indptr_off, 8 * (n + 1)),
        (indices_off, 8 * arcs),
        (weights_off, 8 * arcs),
    ]
    if flags & FLAG_REVERSE:
        sections.append((rsrc_off, 8 * arcs))
    for offset, length in sections:
        if offset < _HEADER_SIZE or offset + length > file_size:
            raise CorruptArtifact(
                path,
                detail=(
                    f"section [{offset}, {offset + length}) outside "
                    f"file of {file_size} bytes"
                ),
            )
    header = StoreHeader(
        path=path,
        version=version,
        num_nodes=n,
        num_arcs=arcs,
        indptr_offset=indptr_off,
        indices_offset=indices_off,
        weights_offset=weights_off,
        file_size=file_size,
        flags=flags,
        rsrc_offset=rsrc_off if flags & FLAG_REVERSE else 0,
    )
    if header.has_digests:
        # O(1) truncation guard: the digest block is the last thing in
        # the file, so "block fits" catches any shortened tail without
        # reading a single section byte.
        if header.digests_offset + header.digests_size > file_size:
            raise CorruptArtifact(
                path,
                detail=(
                    f"digest block [{header.digests_offset}, "
                    f"{header.digests_offset + header.digests_size}) outside "
                    f"file of {file_size} bytes"
                ),
            )
    return header


def verify_store(
    path: PathLike,
    *,
    level: Optional[str] = None,
    header: Optional[StoreHeader] = None,
) -> Dict[str, object]:
    """Check a store's integrity at the requested verify tier.

    ``level=None`` resolves ``REPRO_STORE_VERIFY`` (default ``header``).
    Returns a small report dict (``level``, ``version``, ``digests``,
    ``checked`` section names) and raises
    :class:`~repro.errors.CorruptArtifact` on the first mismatch.

    * ``off``: no checks beyond the structural ones a header read does.
    * ``header``: O(1) — digest block well-formed + the 64 header bytes
      re-hash to the recorded value.  Catches torn headers and tail
      truncation; payload bit flips pass (by design — this tier must
      cost nothing on the open path).
    * ``full``: streams every section and compares sha256 digests.
    """
    level = verify_level(level)
    path = Path(path)
    if header is None:
        header = read_store_header(path)
    report: Dict[str, object] = {
        "path": str(path),
        "level": level,
        "version": header.version,
        "digests": header.has_digests,
        "checked": [],
    }
    if level == "off" or not header.has_digests:
        return report
    digests = read_store_digests(path, header)
    with open(path, "rb") as fh:
        raw_header = fh.read(_HEADER_SIZE)
    if hashlib.sha256(raw_header).hexdigest() != digests.get(_HEADER_ENTRY):
        raise CorruptArtifact(path, detail="header digest mismatch")
    report["checked"] = [_HEADER_ENTRY]
    if level != "full":
        return report
    for name, offset, nbytes in header.sections():
        recorded = digests.get(name)
        if recorded is None:
            raise CorruptArtifact(path, detail=f"no digest for section {name!r}")
        actual = file_sha256(path, offset=offset, length=nbytes)
        if actual != recorded:
            raise CorruptArtifact(
                path,
                detail=(
                    f"section {name!r} digest mismatch "
                    f"(recorded {recorded[:12]}…, got {actual[:12]}…)"
                ),
            )
        report["checked"].append(name)
    return report


def open_store(path: PathLike, *, validate: bool = False) -> CSRGraph:
    """Memory-map a GraphStore file as a read-only :class:`CSRGraph`.

    Alias of :meth:`CSRGraph.open_mmap`; see there for semantics.
    """
    return CSRGraph.open_mmap(path, validate=validate)


def save_graph(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph as a compressed ``.npz`` CSR dump."""
    np.savez_compressed(
        path,
        magic=np.array(_GRAPH_MAGIC),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_graph(path: PathLike) -> CSRGraph:
    """Load a graph written by :func:`save_graph`.

    Raises
    ------
    GraphFormatError
        If the file is not a v1 CSR dump.
    """
    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _GRAPH_MAGIC:
            raise GraphFormatError(f"{path}: not a {_GRAPH_MAGIC} file")
        return CSRGraph(data["indptr"], data["indices"], data["weights"])


def save_clustering(clustering, path: PathLike) -> None:
    """Write a :class:`~repro.core.cluster.Clustering` as ``.npz``.

    Persists the assignment arrays and scalar metadata; the per-stage
    diagnostics and counters are execution artifacts and are not stored.
    """
    np.savez_compressed(
        path,
        magic=np.array(_CLUSTERING_MAGIC),
        center=clustering.center,
        dist_to_center=clustering.dist_to_center,
        centers=clustering.centers,
        scalars=np.array(
            [clustering.radius, clustering.delta_end, float(clustering.tau),
             float(clustering.singleton_count)]
        ),
    )


def load_clustering(path: PathLike):
    """Load a clustering written by :func:`save_clustering`."""
    from repro.core.cluster import Clustering
    from repro.mr.metrics import Counters

    with np.load(path, allow_pickle=False) as data:
        if "magic" not in data or str(data["magic"]) != _CLUSTERING_MAGIC:
            raise GraphFormatError(f"{path}: not a {_CLUSTERING_MAGIC} file")
        radius, delta_end, tau, singletons = data["scalars"]
        clustering = Clustering(
            center=data["center"],
            dist_to_center=data["dist_to_center"],
            centers=data["centers"],
            radius=float(radius),
            delta_end=float(delta_end),
            tau=int(tau),
            counters=Counters(),
            singleton_count=int(singletons),
        )
    clustering.validate()
    return clustering
