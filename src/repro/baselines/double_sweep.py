"""Iterated farthest-node sweeps: the diameter lower bound of Table 2.

The paper expresses approximation ratios "in terms of a lower bound to the
true diameter computed by running the sequential SSSP algorithm multiple
times, each time starting from the farthest node reached by the previous
run".  Every eccentricity observed is a valid lower bound on the diameter,
and the farthest-node restart heuristic (a multi-sweep generalization of
the classical double sweep) converges to tight bounds quickly in practice.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.dijkstra import dijkstra_sssp
from repro.graph.csr import CSRGraph
from repro.util import as_rng

__all__ = ["diameter_lower_bound"]


def diameter_lower_bound(
    graph: CSRGraph,
    *,
    sweeps: int = 4,
    seed: Optional[int] = 0,
    source: Optional[int] = None,
) -> float:
    """Lower-bound the weighted diameter by iterated farthest-node SSSP.

    Parameters
    ----------
    graph:
        Input graph; on disconnected graphs the sweep stays within the
        start component, so callers comparing against the global diameter
        should pass the largest component (as the experiments do).
    sweeps:
        Number of SSSP runs; each starts from the farthest node the
        previous run reached.  4 sweeps match the convergence behaviour
        reported in the diameter-estimation literature.
    seed, source:
        Starting node (random with ``seed`` when ``source`` is ``None``).

    Returns
    -------
    float
        ``max`` eccentricity observed — a certified lower bound on Φ(G).
    """
    n = graph.num_nodes
    if n <= 1:
        return 0.0
    if source is None:
        rng = as_rng(seed)
        source = int(rng.integers(n))
    best = 0.0
    current = source
    for _ in range(max(1, sweeps)):
        dist = dijkstra_sssp(graph, current)
        finite_mask = np.isfinite(dist)
        if not finite_mask.any():
            break
        far = int(np.argmax(np.where(finite_mask, dist, -1.0)))
        ecc = float(dist[far])
        if ecc <= best and best > 0.0:
            break  # converged: restarting cannot improve the bound
        best = max(best, ecc)
        current = far
    return best
