"""SSSP with parent pointers and explicit path reconstruction.

The core estimators only need distances; downstream users of a diameter
library usually also want the witnessing paths (e.g. to inspect the
near-diametral route a road network's estimate corresponds to).  This
module adds parent tracking to Dijkstra and utilities to extract paths
and the (approximately) diametral path certified by the multi-sweep
lower bound.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.util import as_rng

__all__ = ["dijkstra_with_parents", "extract_path", "approximate_diametral_path"]


def dijkstra_with_parents(
    graph: CSRGraph, source: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Dijkstra returning ``(dist, parent)``.

    ``parent[v]`` is the predecessor of ``v`` on a shortest ``source → v``
    path (``-1`` for the source and unreachable nodes).  Deterministic:
    among equal-distance predecessors the one processed first wins.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ConfigurationError(f"source {source} out of range [0, {n})")
    dist = np.full(n, np.inf, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    heap = [(0.0, source)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        lo, hi = indptr[u], indptr[u + 1]
        for v, w in zip(indices[lo:hi], weights[lo:hi]):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, int(v)))
    return dist, parent


def extract_path(parent: np.ndarray, target: int) -> List[int]:
    """Reconstruct the source→target path from a parent array.

    Returns the node list including both endpoints, or ``[]`` when the
    target was unreachable.  Guards against corrupt parent arrays with a
    step budget.
    """
    if parent[target] == -1:
        # Either the source itself or unreachable; a source has itself as
        # a valid single-node path.
        return [int(target)]
    path = [int(target)]
    budget = len(parent) + 1
    node = int(target)
    while parent[node] != -1:
        node = int(parent[node])
        path.append(node)
        budget -= 1
        if budget < 0:
            raise ValueError("parent array contains a cycle")
    return path[::-1]


def approximate_diametral_path(
    graph: CSRGraph,
    *,
    sweeps: int = 4,
    seed: Optional[int] = 0,
) -> Tuple[List[int], float]:
    """A certified long shortest path (the multi-sweep witness).

    Runs the farthest-node restart heuristic and returns the best
    endpoint pair's shortest path plus its weight — a lower bound on the
    diameter with an explicit witness.

    Returns ``([], 0.0)`` for graphs without reachable pairs.
    """
    n = graph.num_nodes
    if n <= 1:
        return [], 0.0
    rng = as_rng(seed)
    current = int(rng.integers(n))
    best_weight = 0.0
    best_path: List[int] = []
    for _ in range(max(1, sweeps)):
        dist, parent = dijkstra_with_parents(graph, current)
        finite = np.isfinite(dist)
        if not finite.any():
            break
        far = int(np.argmax(np.where(finite, dist, -1.0)))
        ecc = float(dist[far])
        if ecc > best_weight:
            best_weight = ecc
            best_path = extract_path(parent, far)
        elif best_weight > 0.0:
            break  # converged
        current = far
    return best_path, best_weight
