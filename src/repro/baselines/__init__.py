"""Baseline algorithms the paper compares against (or uses as references).

* :mod:`~repro.baselines.dijkstra` — sequential SSSP (heap-based and a
  scipy wrapper), the correctness oracle for every other SSSP.
* :mod:`~repro.baselines.bellman_ford` — round-synchronous Bellman–Ford,
  the "Δ = ∞" extreme of the Δ-stepping tradeoff.
* :mod:`~repro.baselines.delta_stepping` — the Meyer–Sanders Δ-stepping
  algorithm with bucket phases and MR round/work accounting: the paper's
  only practical linear-space competitor.
* :mod:`~repro.baselines.sssp_diameter` — the SSSP-based diameter
  2-approximation (twice the heaviest shortest-path weight).
* :mod:`~repro.baselines.double_sweep` — iterated farthest-node SSSP
  producing the diameter *lower bound* the paper's approximation ratios
  are measured against (caption of Table 2).
"""

from repro.baselines.dijkstra import dijkstra_sssp, dijkstra_sssp_reference
from repro.baselines.dial import dial_sssp
from repro.baselines.bellman_ford import bellman_ford_sssp
from repro.baselines.delta_stepping import delta_stepping_sssp, DeltaSteppingResult
from repro.baselines.sssp_diameter import sssp_diameter_approx, SSSPDiameterResult
from repro.baselines.double_sweep import diameter_lower_bound
from repro.baselines.paths import (
    approximate_diametral_path,
    dijkstra_with_parents,
    extract_path,
)

__all__ = [
    "dijkstra_with_parents",
    "extract_path",
    "approximate_diametral_path",
    "dijkstra_sssp",
    "dijkstra_sssp_reference",
    "dial_sssp",
    "bellman_ford_sssp",
    "delta_stepping_sssp",
    "DeltaSteppingResult",
    "sssp_diameter_approx",
    "SSSPDiameterResult",
    "diameter_lower_bound",
]
