"""Round-synchronous Bellman–Ford SSSP.

Bellman–Ford is the "Δ → ∞" extreme of the Δ-stepping tradeoff (§1): each
round relaxes every edge out of the frontier, so the number of rounds
equals the maximum hop count of a shortest path (``ℓ_∞``) while the work
can blow up on weighted graphs.  It serves as a baseline in the ablation
benches and as the semantics model for the Δ-growing step (which is
Bellman–Ford restricted to light edges under a distance cap).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.mr.metrics import Counters
from repro.util import expand_ranges, first_occurrence

__all__ = ["bellman_ford_sssp"]


def bellman_ford_sssp(
    graph: CSRGraph,
    source: int,
    *,
    counters: Optional[Counters] = None,
) -> Tuple[np.ndarray, Counters]:
    """Vectorized frontier Bellman–Ford from ``source``.

    Returns ``(dist, counters)``; one counter round per synchronous
    relaxation sweep, messages = arcs scanned from the frontier, updates =
    distance improvements — the same accounting as the Δ-growing step so
    work numbers are directly comparable.
    """
    counters = counters if counters is not None else Counters()
    n = graph.num_nodes
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        arc_idx = expand_ranges(starts, counts)
        tgt = indices[arc_idx]
        nd = np.repeat(dist[frontier], counts) + weights[arc_idx]
        messages = len(tgt)

        better = nd < dist[tgt]
        cand_t = tgt[better]
        cand_d = nd[better]
        if cand_t.size == 0:
            counters.record_round(messages=messages, updates=0)
            break
        order = np.lexsort((cand_d, cand_t))
        sel = order[first_occurrence(cand_t[order])]
        upd = cand_t[sel]
        dist[upd] = cand_d[sel]
        counters.record_round(
            messages=messages, updates=len(upd), relaxations=len(cand_t)
        )
        frontier = upd

    return dist, counters
