"""SSSP-based diameter 2-approximation (the Δ-stepping competitor).

An SSSP from any node ``s`` yields ``ecc(s) ≤ Φ(G) ≤ 2·ecc(s)`` by the
triangle inequality, so returning twice the heaviest shortest-path weight
2-approximates the diameter (§5, "Comparison with the SSSP-based
approximation").  The paper implements this with Δ-stepping from a random
node; this module packages exactly that, returning both the estimate and
the run's round/work profile for the Table 2 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.baselines.delta_stepping import DeltaSteppingResult, delta_stepping_sssp
from repro.graph.csr import CSRGraph
from repro.mr.metrics import Counters
from repro.util import as_rng

__all__ = ["sssp_diameter_approx", "SSSPDiameterResult"]


@dataclass
class SSSPDiameterResult:
    """Diameter estimate produced by one Δ-stepping SSSP run.

    ``estimate = 2 · ecc(source)`` upper-bounds the diameter;
    ``eccentricity`` itself lower-bounds it.
    """

    estimate: float
    eccentricity: float
    source: int
    sssp: DeltaSteppingResult

    @property
    def counters(self) -> Counters:
        return self.sssp.counters


def sssp_diameter_approx(
    graph: CSRGraph,
    *,
    source: Optional[int] = None,
    delta: Union[str, float] = "mean",
    seed: Optional[int] = 0,
    counters: Optional[Counters] = None,
) -> SSSPDiameterResult:
    """2-approximate the diameter with one Δ-stepping SSSP.

    Parameters
    ----------
    graph:
        Input graph.
    source:
        Start node; a seeded random node when ``None`` (the paper starts
        "from a random node").
    delta:
        Δ-stepping bucket width or strategy (see
        :func:`~repro.baselines.delta_stepping.delta_stepping_sssp`).
    seed:
        Seed for the random source choice.
    counters:
        Optional external accumulator.
    """
    if source is None:
        rng = as_rng(seed)
        source = int(rng.integers(graph.num_nodes))
    result = delta_stepping_sssp(graph, source, delta, counters=counters)
    finite = result.dist[np.isfinite(result.dist)]
    ecc = float(finite.max()) if len(finite) else 0.0
    return SSSPDiameterResult(
        estimate=2.0 * ecc,
        eccentricity=ecc,
        source=source,
        sssp=result,
    )
