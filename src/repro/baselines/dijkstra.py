"""Sequential Dijkstra SSSP — the correctness oracle.

Two implementations are provided: a pure-Python binary-heap Dijkstra
(:func:`dijkstra_sssp_reference`) whose simplicity makes it auditable, and
a scipy-backed one (:func:`dijkstra_sssp`) used wherever speed matters.
Tests cross-check them against each other and against Δ-stepping /
Bellman–Ford.
"""

from __future__ import annotations

import heapq

import numpy as np
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.graph.csr import CSRGraph

__all__ = ["dijkstra_sssp", "dijkstra_sssp_reference"]


def dijkstra_sssp(graph: CSRGraph, source: int) -> np.ndarray:
    """Single-source shortest-path distances from ``source`` (scipy).

    Unreachable nodes get ``inf``.
    """
    return _csgraph_dijkstra(graph.to_scipy(), directed=False, indices=source)


def dijkstra_sssp_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Textbook binary-heap Dijkstra (lazy deletion), for cross-checking."""
    n = graph.num_nodes
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap = [(0.0, source)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        lo, hi = indptr[u], indptr[u + 1]
        for v, w in zip(indices[lo:hi], weights[lo:hi]):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    return dist
