"""Δ-stepping SSSP (Meyer & Sanders) with MR round/work accounting.

Δ-stepping staggers Dijkstra into *buckets* of width Δ: bucket ``i`` holds
nodes with tentative distance in ``[iΔ, (i+1)Δ)``.  Buckets are settled in
order; inside a bucket, **light** edges (weight ≤ Δ) are relaxed in
synchronous phases until the bucket stops changing, then **heavy** edges
(weight > Δ) are relaxed once from everything the bucket settled.  Small Δ
approaches Dijkstra (little work, many phases); large Δ approaches
Bellman–Ford (few phases, more work).

This is the paper's only practical linear-space competitor: one phase maps
to O(1) MapReduce rounds, so the number of phases is the round complexity
and — as the paper argues — is lower-bounded by the unweighted diameter
under linear space.  Counting follows the same conventions as the
Δ-growing step (messages = arcs scanned from the active set, updates =
tentative-distance improvements) so Table 2 / Figures 2–3 comparisons are
apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.mr.metrics import Counters
from repro.util import expand_ranges, first_occurrence

__all__ = ["delta_stepping_sssp", "DeltaSteppingResult"]


@dataclass
class DeltaSteppingResult:
    """Distances plus the execution profile of one Δ-stepping run.

    Attributes
    ----------
    dist:
        float64[n] shortest-path distances (``inf`` if unreachable).
    delta:
        The Δ actually used.
    num_buckets:
        Buckets processed (distinct bucket indices with members).
    light_phases / heavy_phases:
        Synchronous relaxation phases; their sum equals
        ``counters.rounds``.
    counters:
        Rounds / messages / updates in the shared accounting scheme.
    """

    dist: np.ndarray
    delta: float
    num_buckets: int
    light_phases: int
    heavy_phases: int
    counters: Counters


def _resolve_delta(graph: CSRGraph, delta: Union[str, float]) -> float:
    if isinstance(delta, str):
        if delta == "mean":
            value = graph.mean_weight
        elif delta == "max":
            value = graph.max_weight
        elif delta == "min":
            value = graph.min_weight
        elif delta == "degree":
            # Meyer–Sanders' recommendation Δ = Θ(1/d) for random weights
            # in (0, 1]; scaled by the mean weight for general ranges.
            d = max(float(graph.degrees.mean()), 1.0)
            value = 2.0 * graph.mean_weight * 2.0 / d
        elif delta == "inf":
            # Single-bucket (Bellman–Ford) regime: Δ exceeds any distance.
            from repro.graph.ops import total_weight

            value = max(2.0 * total_weight(graph), graph.max_weight, 1.0)
        else:
            raise ConfigurationError(
                "delta must be a positive number or one of "
                "'mean'|'max'|'min'|'degree'|'inf'"
            )
    else:
        value = float(delta)
    if not value > 0:
        raise ConfigurationError("resolved delta must be positive")
    return value


def _relax(
    dist: np.ndarray,
    tgt: np.ndarray,
    nd: np.ndarray,
) -> np.ndarray:
    """Apply the best candidate per target; return updated node ids."""
    better = nd < dist[tgt]
    cand_t = tgt[better]
    cand_d = nd[better]
    if cand_t.size == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((cand_d, cand_t))
    sel = order[first_occurrence(cand_t[order])]
    upd = cand_t[sel]
    dist[upd] = cand_d[sel]
    return upd


def delta_stepping_sssp(
    graph: CSRGraph,
    source: int,
    delta: Union[str, float] = "mean",
    *,
    counters: Optional[Counters] = None,
    max_phases: int = 10_000_000,
) -> DeltaSteppingResult:
    """Run Δ-stepping from ``source``.

    Parameters
    ----------
    graph:
        Weighted graph (positive weights).
    source:
        Source node id.
    delta:
        Bucket width: a positive number, or a strategy name resolved by
        :func:`_resolve_delta` (``"mean"`` default — the benches sweep it,
        as the paper did, and pick the best).
    counters:
        Optional external accumulator.
    max_phases:
        Safety bound on total phases.

    Returns
    -------
    DeltaSteppingResult
    """
    counters = counters if counters is not None else Counters()
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ConfigurationError(f"source {source} out of range [0, {n})")
    dval = _resolve_delta(graph, delta)

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    light_arc = weights <= dval

    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    # Tentative value at which each node was last expanded in a light
    # phase; a node re-enters its bucket whenever its tentative distance
    # drops below this (the Meyer–Sanders reinsertion rule).
    expanded_at = np.full(n, np.inf, dtype=np.float64)

    num_buckets = 0
    light_phases = 0
    heavy_phases = 0
    total_phases = 0

    while True:
        # Next bucket: smallest bucket index holding an unexpanded node.
        pending = np.flatnonzero(dist < expanded_at)
        if pending.size == 0:
            break
        bucket = int(math.floor(dist[pending].min() / dval))
        lo, hi = bucket * dval, (bucket + 1) * dval
        num_buckets += 1
        set_phase = getattr(counters, "set_phase", None)
        if set_phase is not None:
            set_phase(f"bucket-{bucket}")

        settled: list = []
        while True:
            in_bucket = pending[(dist[pending] >= lo) & (dist[pending] < hi)]
            # Also catch nodes whose tent dropped back into the bucket
            # after an earlier expansion at a larger value.
            if in_bucket.size == 0:
                break
            members = in_bucket[dist[in_bucket] < expanded_at[in_bucket]]
            if members.size == 0:
                break
            settled.append(members)
            expanded_at[members] = dist[members]

            starts = indptr[members]
            counts = indptr[members + 1] - starts
            arc_idx = expand_ranges(starts, counts)
            is_light = light_arc[arc_idx]
            arc_idx = arc_idx[is_light]
            tgt = indices[arc_idx]
            nd = (
                np.repeat(dist[members], counts)[is_light] + weights[arc_idx]
            )
            messages = len(tgt)
            upd = _relax(dist, tgt, nd)
            counters.record_round(messages=messages, updates=len(upd))
            light_phases += 1
            total_phases += 1
            if total_phases > max_phases:
                raise ConfigurationError("delta-stepping exceeded max_phases")
            pending = np.flatnonzero(dist < expanded_at)

        if settled:
            removed = np.unique(np.concatenate(settled))
            starts = indptr[removed]
            counts = indptr[removed + 1] - starts
            arc_idx = expand_ranges(starts, counts)
            is_heavy = ~light_arc[arc_idx]
            arc_idx = arc_idx[is_heavy]
            tgt = indices[arc_idx]
            nd = np.repeat(dist[removed], counts)[is_heavy] + weights[arc_idx]
            messages = len(tgt)
            upd = _relax(dist, tgt, nd)
            counters.record_round(messages=messages, updates=len(upd))
            heavy_phases += 1
            total_phases += 1

    return DeltaSteppingResult(
        dist=dist,
        delta=dval,
        num_buckets=num_buckets,
        light_phases=light_phases,
        heavy_phases=heavy_phases,
        counters=counters,
    )
