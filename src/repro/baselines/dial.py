"""Dial's algorithm: bucket-queue SSSP for small integer weights.

Dial's algorithm is the Δ-stepping ancestor (Δ = 1 with unit-width
buckets): tentative distances index into a circular array of buckets of
width 1, giving O(m + diameter) time for integer weights.  Road networks
— the DIMACS inputs the paper benchmarks — are its classic use case, so
it belongs in the baseline suite both as another correctness oracle and
as the sequential reference point for integer-weight instances.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph

__all__ = ["dial_sssp"]


def dial_sssp(graph: CSRGraph, source: int, *, max_weight: int = None) -> np.ndarray:
    """Single-source shortest paths via Dial's bucket queue.

    Requires strictly positive **integer** edge weights (raises
    :class:`~repro.errors.ConfigurationError` otherwise).  Memory is
    O(n + C) for maximum edge weight C (the circular bucket array has
    C + 1 slots).

    Returns float64 distances (``inf`` when unreachable) for drop-in
    compatibility with the other SSSP implementations.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise ConfigurationError(f"source {source} out of range [0, {n})")
    w = graph.weights
    if len(w):
        if not np.all(w == np.round(w)):
            raise ConfigurationError("Dial's algorithm needs integer weights")
        if w.min() < 1:
            raise ConfigurationError("Dial's algorithm needs weights >= 1")
    c = int(max_weight if max_weight is not None else (w.max() if len(w) else 1))
    if len(w) and c < w.max():
        raise ConfigurationError("max_weight below the largest edge weight")

    dist = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    dist[source] = 0
    num_buckets = c + 1
    buckets = [[] for _ in range(num_buckets)]
    buckets[0].append(source)
    remaining = 1
    cursor = 0

    indptr, indices = graph.indptr, graph.indices
    weights_int = w.astype(np.int64)

    while remaining > 0:
        slot = cursor % num_buckets
        while not buckets[slot]:
            cursor += 1
            slot = cursor % num_buckets
        bucket = buckets[slot]
        u = bucket.pop()
        remaining -= 1
        if dist[u] != cursor:
            # Check the entry is not stale: dist can only have decreased,
            # and a smaller dist means the node was re-queued earlier.
            if dist[u] < cursor:
                continue
            # dist[u] > cursor cannot happen: entries are queued at their
            # tentative distance and distances never increase.
            raise AssertionError("bucket invariant violated")
        lo, hi = indptr[u], indptr[u + 1]
        for v, wt in zip(indices[lo:hi], weights_int[lo:hi]):
            nd = cursor + int(wt)
            if nd < dist[v]:
                dist[v] = nd
                buckets[nd % num_buckets].append(int(v))
                remaining += 1

    out = dist.astype(np.float64)
    out[dist == np.iinfo(np.int64).max] = np.inf
    return out
