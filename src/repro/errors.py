"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "CorruptArtifact",
    "MemoryLimitExceeded",
    "ConfigurationError",
    "ConvergenceError",
    "WorkerFailure",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphFormatError(ReproError):
    """Raised when parsing a graph file fails (bad header, bad record, ...)."""


class CorruptArtifact(GraphFormatError):
    """An on-disk artifact failed an integrity check.

    Raised when a file that *identifies* as one of ours (store magic,
    shard manifest, checkpoint round) fails structural validation or a
    digest comparison — as opposed to :class:`GraphFormatError` proper,
    which also covers "this is simply not our format".  Subclassing
    keeps every existing ``except GraphFormatError`` recovery path
    working while letting the quarantine layer react only to artifacts
    it positively knows are damaged.

    ``quarantined`` is filled in by the layer that moved the artifact
    into its ``.quarantine/`` directory, when that happened.
    """

    def __init__(
        self,
        path: object,
        *,
        kind: str = "store",
        detail: str = "",
        quarantined: object = None,
    ):
        self.path = str(path)
        self.kind = kind
        self.detail = detail
        self.quarantined = str(quarantined) if quarantined else None
        message = f"corrupt {kind} {self.path}: {detail or 'integrity check failed'}"
        if self.quarantined:
            message += f" (quarantined to {self.quarantined})"
        super().__init__(message)


class GraphValidationError(ReproError):
    """Raised when a graph violates a structural invariant.

    Examples include negative edge weights, out-of-range endpoints, or an
    inconsistent CSR layout.
    """


class MemoryLimitExceeded(ReproError):
    """Raised by the MR engine when a reducer exceeds its local memory M_L.

    The MR(M_T, M_L) model of Pietracaprina et al. requires every reducer to
    work within ``M_L`` memory words.  The simulator enforces the constraint
    and raises this error so that violations are caught in tests rather than
    silently ignored.
    """

    def __init__(self, used: int, limit: int, key: object = None):
        self.used = int(used)
        self.limit = int(limit)
        self.key = key
        suffix = f" (reducer key {key!r})" if key is not None else ""
        super().__init__(
            f"reducer used {used} memory words, exceeding local limit M_L={limit}{suffix}"
        )


class ConfigurationError(ReproError):
    """Raised when algorithm parameters are invalid or inconsistent."""


class ConvergenceError(ReproError):
    """Raised when an iterative algorithm fails to converge within its budget."""


class WorkerFailure(ReproError):
    """A distributed worker died, hung past its deadline, or lost its pipe.

    Carries enough context to supervise: which shard (``None`` for a
    pool worker or an unknown origin), which command was in flight, and
    the growing-step ordinal the driver was executing (attached by the
    driver, which is the only layer that knows it).  The recovery loop
    in :mod:`repro.runtime.checkpoint` catches this, rebuilds the worker
    pool, and replays from the last durable checkpoint (or round 0).
    """

    def __init__(
        self,
        message: str,
        *,
        shard: object = None,
        round: object = None,
        command: object = None,
    ):
        self.shard = shard
        self.round = round
        self.command = command
        super().__init__(message)

    def __str__(self) -> str:  # annotate lazily: round is attached late
        base = super().__str__()
        ctx = []
        if self.shard is not None:
            ctx.append(f"shard={self.shard}")
        if self.command is not None:
            ctx.append(f"command={self.command}")
        if self.round is not None:
            ctx.append(f"round={self.round}")
        return f"{base} [{', '.join(ctx)}]" if ctx else base


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be written, read, or trusted.

    A *stale* checkpoint (store signature or config changed since it was
    written) is skipped rather than raised during recovery; this error
    surfaces only genuine corruption or an explicitly-requested resume
    that cannot be honoured.
    """
