"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "MemoryLimitExceeded",
    "ConfigurationError",
    "ConvergenceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphFormatError(ReproError):
    """Raised when parsing a graph file fails (bad header, bad record, ...)."""


class GraphValidationError(ReproError):
    """Raised when a graph violates a structural invariant.

    Examples include negative edge weights, out-of-range endpoints, or an
    inconsistent CSR layout.
    """


class MemoryLimitExceeded(ReproError):
    """Raised by the MR engine when a reducer exceeds its local memory M_L.

    The MR(M_T, M_L) model of Pietracaprina et al. requires every reducer to
    work within ``M_L`` memory words.  The simulator enforces the constraint
    and raises this error so that violations are caught in tests rather than
    silently ignored.
    """

    def __init__(self, used: int, limit: int, key: object = None):
        self.used = int(used)
        self.limit = int(limit)
        self.key = key
        suffix = f" (reducer key {key!r})" if key is not None else ""
        super().__init__(
            f"reducer used {used} memory words, exceeding local limit M_L={limit}{suffix}"
        )


class ConfigurationError(ReproError):
    """Raised when algorithm parameters are invalid or inconsistent."""


class ConvergenceError(ReproError):
    """Raised when an iterative algorithm fails to converge within its budget."""
