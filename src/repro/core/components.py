"""Per-component diameter estimation for disconnected graphs.

The paper defines the diameter of a disconnected graph as the largest
distance within a connected component.  ``approximate_diameter`` already
honours that definition globally (the quotient inherits the component
structure), but callers analysing fragmented graphs usually want the
breakdown: which component is the diametral one, and how large each is.
This module runs the estimator per component and assembles the report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import ClusterConfig
from repro.core.diameter import approximate_diameter
from repro.graph.csr import CSRGraph
from repro.graph.ops import connected_components, induced_subgraph

__all__ = ["per_component_diameters", "ComponentDiameter"]


@dataclass
class ComponentDiameter:
    """One component's estimate.

    ``nodes`` are original node ids; ``estimate`` is the CL-DIAM upper
    bound for the component's diameter (0 for singleton components).
    """

    component: int
    size: int
    estimate: float
    num_clusters: int
    nodes: np.ndarray


def per_component_diameters(
    graph: CSRGraph,
    tau: Optional[int] = None,
    config: Optional[ClusterConfig] = None,
    *,
    min_size: int = 2,
    counters=None,
) -> List[ComponentDiameter]:
    """Estimate every component's diameter (descending by estimate).

    Components below ``min_size`` are reported with estimate 0 without
    running the estimator (a singleton's diameter is 0 by definition).
    The global diameter estimate is ``max(r.estimate for r in result)``.
    A caller-supplied ``counters`` accumulates rounds/messages/updates
    across all per-component runs (the components execute sequentially,
    so the round total is the paper-faithful cost of the whole job).
    """
    config = config or ClusterConfig()
    count, labels = connected_components(graph)
    results: List[ComponentDiameter] = []
    for comp in range(count):
        nodes = np.flatnonzero(labels == comp)
        if len(nodes) < min_size:
            results.append(
                ComponentDiameter(
                    component=comp,
                    size=len(nodes),
                    estimate=0.0,
                    num_clusters=len(nodes),
                    nodes=nodes,
                )
            )
            continue
        sub = induced_subgraph(graph, nodes)
        est = approximate_diameter(sub, tau=tau, config=config)
        if counters is not None:
            counters.merge(est.counters)
        results.append(
            ComponentDiameter(
                component=comp,
                size=len(nodes),
                estimate=est.value,
                num_clusters=est.num_clusters,
                nodes=nodes,
            )
        )
    results.sort(key=lambda r: (-r.estimate, -r.size))
    return results
