"""The paper's core contribution: weighted graph decomposition and CL-DIAM.

Layout
------
* :mod:`~repro.core.config` — tunables (τ, initial-Δ strategy, caps).
* :mod:`~repro.core.state` — per-node ``(c_u, d_u)`` state arrays.
* :mod:`~repro.core.growing` — the vectorized Δ-growing step.
* :mod:`~repro.core.contract` — Contract / Contract2 as freeze operations.
* :mod:`~repro.core.cluster` — Algorithm 1, ``CLUSTER(G, τ)``.
* :mod:`~repro.core.cluster2` — Algorithm 2, ``CLUSTER2(G, τ)``.
* :mod:`~repro.core.quotient` — the weighted quotient graph.
* :mod:`~repro.core.diameter` — CL-DIAM: ``Φ_approx = Φ(G_C) + 2·R``.
"""

from repro.core.config import ClusterConfig
from repro.core.cluster import cluster, Clustering
from repro.core.cluster2 import cluster2
from repro.core.quotient import quotient_graph
from repro.core.diameter import (
    approximate_diameter,
    diameter_from_clustering,
    DiameterEstimate,
)
from repro.core.eccentricity import eccentricity_bounds, EccentricityBounds
from repro.core.tuning import tune_tau, TauTuningResult
from repro.core.components import per_component_diameters, ComponentDiameter

__all__ = [
    "ClusterConfig",
    "cluster",
    "cluster2",
    "Clustering",
    "quotient_graph",
    "approximate_diameter",
    "diameter_from_clustering",
    "DiameterEstimate",
    "eccentricity_bounds",
    "EccentricityBounds",
    "tune_tau",
    "TauTuningResult",
    "per_component_diameters",
    "ComponentDiameter",
]
