"""Contract / Contract2 and their frozen-mask simulation.

The paper contracts the graph after every stage: covered nodes are removed
(except centers) and boundary edges are re-attached to centers —

* **Contract** (CLUSTER): edge ``(u, v)`` with ``u`` covered, ``v``
  uncovered becomes ``(c_u, v)`` with weight ``w(u, v)``;
* **Contract2** (CLUSTER2): the same edge becomes ``(c_u, v)`` with
  *rescaled* weight ``d_u + w(u, v) − 2·R_CL`` (edges heavier than
  ``2·R_CL`` are never used).

The production implementation never materializes the contracted graph; it
freezes covered nodes in :class:`~repro.core.state.ClusterState` and lets
them propagate with an effective distance that reproduces the contracted
edge weights exactly (see the state module's docstring for the argument).
:func:`materialize_contracted_graph` builds the *literal* contracted graph
of the paper, and exists so tests can verify the simulation against it.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.state import ClusterState
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph

__all__ = ["contract", "contract2", "materialize_contracted_graph"]


def contract(state: ClusterState, iteration: int = 0) -> np.ndarray:
    """Apply Contract: freeze all currently assigned nodes.

    Returns the newly frozen node ids.  Frozen nodes subsequently propagate
    with effective distance 0, which is exactly the contracted edge
    ``(c_u, v)`` of weight ``w(u, v)``.
    """
    return state.freeze_assigned(iteration)


def contract2(state: ClusterState, iteration: int) -> np.ndarray:
    """Apply Contract2: freeze assigned nodes, recording the iteration.

    The recorded iteration feeds the per-iteration ``−2·R_CL`` weight
    rescaling in :meth:`~repro.core.state.ClusterState.effective_dist`.
    """
    return state.freeze_assigned(iteration)


def materialize_contracted_graph(
    graph: CSRGraph, state: ClusterState
) -> Tuple[CSRGraph, Dict[int, int], np.ndarray]:
    """Build the literal Contract output (CLUSTER semantics) for testing.

    Nodes of the contracted graph are: the distinct centers of frozen
    nodes, followed by all non-frozen nodes.  Edges follow the paper's
    three cases (both covered → dropped; both uncovered → kept; boundary →
    re-attached to the center with the original weight, parallel edges
    collapsing to the minimum).

    Returns
    -------
    (contracted, old_to_new, new_to_old):
        The contracted graph, a dict mapping surviving original ids to
        contracted ids, and the inverse array.
    """
    frozen = state.frozen
    centers = np.unique(state.center[frozen]) if frozen.any() else np.empty(0, np.int64)
    others = np.flatnonzero(~frozen)
    new_to_old = np.concatenate([centers, others])
    old_to_new: Dict[int, int] = {int(o): i for i, o in enumerate(new_to_old)}

    src = graph.arc_sources()
    dst = graph.indices
    w = graph.weights
    keep_one_dir = src < dst  # each undirected edge once

    u = src[keep_one_dir]
    v = dst[keep_one_dir]
    ww = w[keep_one_dir]

    u_frozen = frozen[u]
    v_frozen = frozen[v]

    out_u = []
    out_v = []
    out_w = []

    # Both uncovered: kept verbatim.
    both_open = ~u_frozen & ~v_frozen
    out_u.append(u[both_open])
    out_v.append(v[both_open])
    out_w.append(ww[both_open])

    # Boundary: re-attach the covered endpoint to its center.
    ub = u_frozen & ~v_frozen
    out_u.append(state.center[u[ub]])
    out_v.append(v[ub])
    out_w.append(ww[ub])

    vb = ~u_frozen & v_frozen
    out_u.append(u[vb])
    out_v.append(state.center[v[vb]])
    out_w.append(ww[vb])

    cu = np.concatenate(out_u)
    cv = np.concatenate(out_v)
    cw = np.concatenate(out_w)

    # Remap to contracted ids; drop accidental self-loops (edges between two
    # members of the same cluster crossing the boundary case never arise,
    # but a boundary edge into the cluster's own center does).
    remap = np.full(graph.num_nodes, -1, dtype=np.int64)
    remap[new_to_old] = np.arange(len(new_to_old), dtype=np.int64)
    cu = remap[cu]
    cv = remap[cv]
    keep = cu != cv
    contracted = from_edges(cu[keep], cv[keep], cw[keep], len(new_to_old))
    return contracted, old_to_new, new_to_old
