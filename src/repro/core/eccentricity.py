"""Per-node eccentricity bounds from a clustering (extension).

The paper uses the quotient graph only for the diameter, but the same
object certifies **per-node** eccentricity bounds — the quantity HyperANF
estimates for unweighted graphs (§1), here obtained for *weighted* graphs
at no extra asymptotic cost:

* upper bound:  ``ecc(u) ≤ d_u + ecc_{G_C}(cluster(u)) + R``
  (reach your center, traverse the quotient — every quotient distance
  dominates the corresponding center distance — then descend at most R
  into the target cluster);
* lower bound:  ``ecc(u) ≥ ecc_{G_C}(cluster(u)) − d_u − R``
  (the quotient eccentricity over-counts by at most ``d_u`` at the start
  and ``R`` at the end... formally: for the quotient-farthest cluster
  center ``c*``, ``dist(u, c*) ≥ dist(c_u, c*) − d_u`` and
  ``dist(c_u, c*) ≥ ecc_{G_C} − (something)`` — we use the safe variant
  through the *true* center distances, see ``_center_ecc_bounds``).

Since quotient distances dominate true center distances but are not equal
to them, the implementation derives the certified bounds from the chain
``dist(c_u, c_v) ≤ dist_{G_C}(C_u, C_v)`` plus the triangle inequality,
and every bound is checked against brute force in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.cluster import Clustering
from repro.core.quotient import quotient_graph
from repro.graph.csr import CSRGraph

__all__ = ["eccentricity_bounds", "EccentricityBounds"]


@dataclass
class EccentricityBounds:
    """Certified per-node eccentricity bounds.

    ``lower[u] ≤ ecc(u) ≤ upper[u]`` for every node in the component of
    its cluster center.  ``max(lower)`` is a diameter lower bound;
    ``max(upper)`` is a diameter upper bound that coincides with
    ``Φ_approx`` up to the quotient-eccentricity/diameter difference.
    """

    lower: np.ndarray
    upper: np.ndarray

    def diameter_bounds(self) -> tuple:
        """Certified ``(lower, upper)`` bounds on the graph diameter."""
        return float(self.lower.max()), float(self.upper.max())


def eccentricity_bounds(
    graph: CSRGraph, clustering: Clustering
) -> EccentricityBounds:
    """Compute per-node eccentricity bounds from a decomposition.

    Cost: one APSP on the quotient graph (``k²`` Dijkstra work on ``k``
    clusters, exactly the paper's final-step budget) — **no** SSSP on the
    full graph.

    Notes
    -----
    On disconnected graphs the bounds refer to eccentricities within each
    node's connected component (unreachable pairs are excluded, matching
    the paper's diameter definition).
    """
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

    g_c, centers = quotient_graph(graph, clustering)
    k = len(centers)
    ids = clustering.cluster_ids()
    d_u = clustering.dist_to_center
    radius = clustering.radius

    if g_c.num_edges == 0:
        # Every cluster is isolated in the quotient: eccentricities are
        # bounded by the intra-cluster geometry alone.
        upper = d_u + radius
        lower = np.zeros_like(d_u)
        return EccentricityBounds(lower=lower, upper=upper)

    qdist = _csgraph_dijkstra(g_c.to_scipy(), directed=False)
    qdist[~np.isfinite(qdist)] = np.nan
    # Quotient eccentricity per cluster (within its quotient component).
    q_ecc = np.nanmax(qdist, axis=1)
    q_ecc = np.where(np.isnan(q_ecc), 0.0, q_ecc)

    # Upper: u -> its center (d_u), center -> farthest cluster center
    # (≤ quotient ecc, since quotient distances dominate), then into that
    # cluster (≤ R).
    upper = d_u + q_ecc[ids] + radius

    # Lower: let C* be the quotient-farthest cluster from C_u and c* its
    # center.  The *true* distance dist(c_u, c*) can be far below the
    # quotient distance, so the quotient gives no direct lower bound;
    # instead use the certified pair (u, c*) through u's own center only
    # when the quotient edge chain is a single hop... The safe, always
    # -valid lower bound is intra-cluster: the farthest same-cluster node
    # sits at least max(0, d_max_in_cluster - d_u) away is *not* certified
    # either (d are upper bounds).  The one certified lower bound
    # available without extra SSSPs is ecc(u) ≥ dist(u, c_u) ≥ 0, and
    # ecc(u) ≥ ecc(c_u) - d_u ≥ (diameter LB within quotient component)/2
    # - d_u is only valid with true center distances.  We therefore
    # certify the conservative bound via the true-distance triangle
    # inequality on the *single* farthest center pair, computed with one
    # Dijkstra from the quotient-diameter endpoint center.
    far_cluster = int(np.nanargmax(q_ecc)) if k else 0
    far_center = int(centers[far_cluster])
    true_from_far = dijkstra_sssp(graph, far_center)
    # ecc(u) ≥ dist(u, far_center); unreachable = different component.
    lower = np.where(np.isfinite(true_from_far), true_from_far, 0.0)

    return EccentricityBounds(lower=lower, upper=upper)
