"""The weighted quotient graph of a clustering (§4, after Lemma 2).

Given a clustering ``C`` with per-node center ``c_u`` and distance bound
``d_u``, the quotient graph ``G_C`` has one node per cluster and, for every
original edge ``(u, v)`` with ``c_u ≠ c_v``, an edge between the two
clusters of weight ``w(u, v) + d_u + d_v`` (parallel edges keep the
minimum).  By construction every quotient distance upper-bounds the
corresponding original distance between centers, which makes
``Φ(G_C) + 2·R`` a conservative diameter estimate.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.cluster import Clustering
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph

__all__ = ["quotient_graph"]


def quotient_graph(
    graph: CSRGraph, clustering: Clustering
) -> Tuple[CSRGraph, np.ndarray]:
    """Build the weighted quotient graph of ``clustering`` over ``graph``.

    Returns
    -------
    (g_c, centers):
        ``g_c`` — the quotient :class:`~repro.graph.csr.CSRGraph`, whose
        node ``i`` represents the cluster centered at ``centers[i]``;
        ``centers`` — the sorted array of original center ids.

    Notes
    -----
    The construction is fully vectorized: cluster ids are looked up per
    arc endpoint, intra-cluster arcs are masked out, and the builder's
    min-weight deduplication implements the "retain only the minimum
    weight edge between two clusters" rule.
    """
    ids = clustering.cluster_ids()
    centers = clustering.centers

    src = graph.arc_sources()
    dst = graph.indices
    w = graph.weights
    one_dir = src < dst
    u = src[one_dir]
    v = dst[one_dir]
    ww = w[one_dir]

    cu = ids[u]
    cv = ids[v]
    cross = cu != cv
    if not cross.any():
        # Single cluster (or disconnected identical assignment): quotient
        # is an edgeless graph on the cluster set.
        return (
            from_edges(
                np.empty(0, np.int64),
                np.empty(0, np.int64),
                np.empty(0),
                len(centers),
            ),
            centers,
        )

    du = clustering.dist_to_center[u[cross]]
    dv = clustering.dist_to_center[v[cross]]
    qw = ww[cross] + du + dv
    g_c = from_edges(cu[cross], cv[cross], qw, len(centers))
    return g_c, centers
