"""Algorithm 1: ``CLUSTER(G, τ)`` — progressive weighted graph decomposition.

Clusters are grown in stages.  Each stage selects a fresh random batch of
~``γ·τ·ln n`` centers among the still-uncovered nodes, then grows all
clusters (old centers included, as contracted representatives) with
Δ-growing steps, doubling the guess Δ until at least half of the uncovered
nodes are absorbed.  When fewer than ``8·τ·ln n`` nodes remain they become
singleton clusters.

Theorem 1 (reproduced by the property tests): w.h.p. the result is an
``O(τ log² n)``-clustering of radius ``O(R_G(τ) · log n)`` computed with
``O(ℓ_{R_G(τ)} · log n)`` growing steps, with ``Δ_end = O(R_G(τ))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import ClusterConfig
from repro.core.contract import contract
from repro.core.growing import partial_growth
from repro.core.state import ClusterState
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.ops import total_weight
from repro.mr.metrics import Counters
from repro.util import as_rng

__all__ = ["cluster", "Clustering", "StageInfo"]


@dataclass(frozen=True)
class StageInfo:
    """Diagnostics for one stage (outer-loop iteration) of CLUSTER."""

    stage: int
    uncovered_before: int
    new_centers: int
    delta_start: float
    delta_end: float
    growing_steps: int
    newly_covered: int


@dataclass
class Clustering:
    """A clustering of a weighted graph, as returned by CLUSTER / CLUSTER2.

    Attributes
    ----------
    center:
        int64[n]; ``center[u]`` is the original node id of ``u``'s cluster
        center (every node is assigned on return).
    dist_to_center:
        float64[n]; upper bound on ``dist(center[u], u)`` in the input
        graph.  Defines the radius and the quotient-graph edge weights.
    centers:
        Sorted array of distinct center ids.
    radius:
        ``max_u dist_to_center[u]`` — the clustering radius R.
    delta_end:
        Final value of the Δ guess (Lemma 1: ``O(R_G(τ))`` w.h.p.).
    tau:
        The τ the algorithm ran with.
    counters:
        Rounds / messages / updates / growing steps.
    stages:
        Per-stage diagnostics (empty for CLUSTER2, which reports
        iterations through ``counters.extra`` instead).
    singleton_count:
        Clusters created by the final sweep-up of uncovered nodes.
    """

    center: np.ndarray
    dist_to_center: np.ndarray
    centers: np.ndarray
    radius: float
    delta_end: float
    tau: int
    counters: Counters
    stages: List[StageInfo] = field(default_factory=list)
    singleton_count: int = 0

    @property
    def num_clusters(self) -> int:
        return len(self.centers)

    def cluster_ids(self) -> np.ndarray:
        """Dense 0-based cluster index per node (ordered by center id)."""
        return np.searchsorted(self.centers, self.center)

    def cluster_sizes(self) -> np.ndarray:
        """Number of nodes per cluster, aligned with :attr:`centers`."""
        return np.bincount(self.cluster_ids(), minlength=self.num_clusters)

    def validate(self) -> None:
        """Assert the partition invariants (used heavily by tests)."""
        from repro.errors import GraphValidationError

        if np.any(self.center < 0):
            raise GraphValidationError("unassigned node in final clustering")
        if not np.all(self.center[self.centers] == self.centers):
            raise GraphValidationError("a center is not in its own cluster")
        if not np.all(np.isfinite(self.dist_to_center)):
            raise GraphValidationError("non-finite distance to center")
        if np.any(self.dist_to_center[self.centers] != 0):
            raise GraphValidationError("center with nonzero self-distance")


def _select_new_centers(
    uncovered: np.ndarray, probability: float, rng: np.random.Generator
) -> np.ndarray:
    """Independent center sampling; guarantees at least one selection."""
    picks = uncovered[rng.random(len(uncovered)) < probability]
    if len(picks) == 0:
        picks = np.array([uncovered[int(rng.integers(len(uncovered)))]], dtype=np.int64)
    return picks


def cluster(
    graph: CSRGraph,
    tau: Optional[int] = None,
    config: Optional[ClusterConfig] = None,
    *,
    counters: Optional[Counters] = None,
) -> Clustering:
    """Run ``CLUSTER(G, τ)`` (Algorithm 1).

    Parameters
    ----------
    graph:
        Input weighted graph.  Disconnected graphs are handled: nodes
        unreachable from every sampled center become their own clusters
        once Δ stops making progress (the paper assumes connectivity; the
        guard only affects pathological inputs).
    tau:
        Cluster-count parameter τ; overrides ``config.tau`` when given.
    config:
        Remaining tunables; defaults to :class:`ClusterConfig()`.
    counters:
        Optional external counter accumulator (CL-DIAM threads one
        instance through clustering and quotient construction).

    Returns
    -------
    Clustering
    """
    config = config or ClusterConfig()
    if tau is not None:
        config = config.with_(tau=tau)
    n = graph.num_nodes
    if n == 0:
        raise ConfigurationError("cannot cluster the empty graph")
    tau_val = config.resolve_tau(n)

    counters = counters if counters is not None else Counters()
    rng = as_rng(config.seed)
    state = ClusterState(n)

    if graph.num_edges == 0:
        # Degenerate: every node is isolated; all become singletons.
        centers = np.arange(n, dtype=np.int64)
        state.start_stage(centers)
        state.freeze_assigned()
        return Clustering(
            center=state.center.copy(),
            dist_to_center=state.dist_acc.copy(),
            centers=centers,
            radius=0.0,
            delta_end=0.0,
            tau=tau_val,
            counters=counters,
            singleton_count=n,
        )

    delta = config.resolve_initial_delta(graph.min_weight, graph.mean_weight)
    threshold = config.stage_threshold(n, tau_val)
    # Any distance in the graph is below the total edge weight; once Δ
    # exceeds it, further doubling cannot reach anything new (the
    # remaining uncovered nodes are disconnected from every center).
    delta_ceiling = max(2.0 * total_weight(graph), delta)
    gamma_tau_log = config.gamma * tau_val * np.log(max(n, 2))

    stages: List[StageInfo] = []
    stage_index = 0

    while True:
        uncovered = np.flatnonzero(~state.frozen)
        num_uncovered = len(uncovered)
        if num_uncovered == 0 or num_uncovered < threshold:
            break
        stage_index += 1
        set_phase = getattr(counters, "set_phase", None)
        if set_phase is not None:
            set_phase(f"stage-{stage_index}")
        probability = min(1.0, gamma_tau_log / num_uncovered)
        new_centers = _select_new_centers(uncovered, probability, rng)
        state.start_stage(new_centers)

        delta_start = delta
        steps_this_stage = 0
        cover_target = -(-num_uncovered // 2)  # ceil
        doublings = 0
        # New centers are themselves uncovered nodes with d = 0 ≤ Δ, so
        # they count towards the stage's half-coverage goal.
        covered_so_far = len(new_centers)
        while True:
            result = partial_growth(
                graph,
                state,
                delta,
                counters,
                cover_target=cover_target - covered_so_far,
                step_cap=config.growing_step_cap,
            )
            steps_this_stage += result.steps
            covered_so_far += result.newly_covered
            if covered_so_far >= cover_target:
                break
            if result.hit_cap:
                # §4.1 variant: accept the partial coverage for this stage.
                break
            if delta >= delta_ceiling:
                # Remaining uncovered nodes are unreachable from all
                # centers (disconnected input); accept partial coverage.
                break
            doublings += 1
            if doublings > config.max_delta_doublings:
                raise ConfigurationError(
                    "exceeded max_delta_doublings; the Δ guess diverged "
                    "(check edge weights are positive and finite)"
                )
            delta *= 2.0

        newly = contract(state, stage_index)
        stages.append(
            StageInfo(
                stage=stage_index,
                uncovered_before=num_uncovered,
                new_centers=len(new_centers),
                delta_start=delta_start,
                delta_end=delta,
                growing_steps=steps_this_stage,
                newly_covered=len(newly),
            )
        )

    # Remaining uncovered nodes become singleton clusters.
    leftover = np.flatnonzero(~state.frozen)
    if len(leftover):
        state.start_stage(leftover)
        state.freeze_assigned(stage_index + 1)

    clustering = Clustering(
        center=state.center.copy(),
        dist_to_center=state.dist_acc.copy(),
        centers=np.unique(state.center),
        radius=state.radius(),
        delta_end=delta,
        tau=tau_val,
        counters=counters,
        stages=stages,
        singleton_count=len(leftover),
    )
    clustering.validate()
    return clustering
