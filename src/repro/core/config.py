"""Configuration of the clustering / diameter-approximation algorithms.

Every tunable the paper discusses is surfaced here:

* ``tau`` — the target number of clusters (τ), which trades round
  complexity against quotient-graph size (§4.1);
* ``initial_delta`` — the starting guess for Δ.  The pseudocode uses the
  minimum edge weight; §5 shows the *average* edge weight "reduces the
  round complexity without affecting the approximation quality
  significantly" and adopts it for all experiments, so it is the default;
* ``gamma`` — the center-selection constant (γ = 4 ln 2 in Algorithm 1);
* ``stage_threshold_factor`` — the ``8`` in the ``|V_i − C_i| ≥ 8 τ ln n``
  outer-loop guard;
* ``growing_step_cap`` — the §4.1 extension that caps the number of
  growing steps per PartialGrowth at O(n/τ), bounding round complexity on
  skewed topologies at the price of approximation quality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.errors import ConfigurationError

__all__ = ["ClusterConfig"]

#: γ = 4 ln 2 from Algorithm 1's center-selection probability.
DEFAULT_GAMMA = 4.0 * math.log(2.0)


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of ``CLUSTER`` / ``CLUSTER2`` / CL-DIAM.

    Attributes
    ----------
    tau:
        Target cluster-count parameter τ.  ``None`` lets CL-DIAM derive τ
        from ``target_quotient_nodes`` (the paper sets τ so the quotient
        graph has at most 100 000 nodes).
    initial_delta:
        ``"mean"`` (paper's experimental default), ``"min"`` (pseudocode
        default), or an explicit positive float.
    gamma:
        Center-selection constant γ.
    stage_threshold_factor:
        The outer while loop runs while more than
        ``stage_threshold_factor · τ · ln n`` nodes are uncovered.
    growing_step_cap:
        Optional cap on Δ-growing steps per PartialGrowth invocation
        (§4.1's O(n/τ) variant).  ``None`` disables the cap.
    max_delta_doublings:
        Safety bound on Δ doublings per stage; on connected graphs
        Lemma 1 keeps the count small, on adversarial/disconnected inputs
        the guard prevents unbounded looping.
    seed:
        Seed for the center-selection randomness.
    use_cluster2:
        Run the theoretically-analysed ``CLUSTER2`` instead of the
        practical ``CLUSTER`` inside CL-DIAM (the paper's CL-DIAM uses
        CLUSTER "for efficiency").
    target_quotient_nodes:
        When ``tau`` is ``None``, τ is chosen so the expected number of
        clusters is about this value.
    quotient_mode:
        ``"auto"`` — exact quotient diameter up to
        ``quotient_exact_limit`` nodes, 2-approximation beyond;
        ``"exact"`` or ``"sweep"`` force one behaviour.
    quotient_exact_limit:
        Node-count threshold for the exact quotient diameter in ``auto``.
    executor:
        MR execution backend the ``mrimpl`` drivers build their default
        engine with: ``"serial"`` (paper-literal per-key simulation),
        ``"vector"`` (vectorized batch shuffle, single process),
        ``"parallel"`` (shared-memory process pool), ``"mmap"``
        (spill-file + memory-map process pool), or ``"sharded"``
        (owner-compute persistent shard workers with boundary-only
        exchange).  All backends produce identical clusterings; they
        differ only in wall-clock speed and in which per-round metrics
        are literal vs simulated (see ``docs/mr_model.md`` and
        ``docs/architecture.md``).  Ignored by the vectorized
        ``repro.core`` path, which does not run an engine at all.
    shards:
        Shard count for the ``sharded`` executor (``None`` = CPU
        count).  Ignored by the other backends.
    kernel_impl:
        Kernel tier for the hot Δ-growing loops: ``"auto"`` (compiled C
        kernels when a toolchain is available, pure NumPy otherwise),
        ``"py"`` (force the pure tier — the parity oracle), or
        ``"native"`` (request the C tier; degrades to ``"py"`` with a
        warning when it cannot build).  Both tiers are bit-identical.
        Overrides ``REPRO_KERNEL_IMPL`` for the run.
    emit_threads:
        Thread count for the native tier's chunked emit expansion
        (``None``: ``REPRO_EMIT_THREADS``, else ``os.cpu_count()``).
        Any count produces the same bit-identical batches.
    """

    tau: Optional[int] = None
    initial_delta: Union[str, float] = "mean"
    gamma: float = DEFAULT_GAMMA
    stage_threshold_factor: float = 8.0
    growing_step_cap: Optional[int] = None
    max_delta_doublings: int = 96
    seed: Optional[int] = 0
    use_cluster2: bool = False
    target_quotient_nodes: int = 1000
    quotient_mode: str = "auto"
    quotient_exact_limit: int = 3000
    executor: str = "serial"
    shards: Optional[int] = None
    kernel_impl: str = "auto"
    emit_threads: Optional[int] = None

    def __post_init__(self):
        if self.tau is not None and self.tau < 1:
            raise ConfigurationError("tau must be >= 1")
        if isinstance(self.initial_delta, str):
            if self.initial_delta not in ("mean", "min"):
                raise ConfigurationError(
                    "initial_delta must be 'mean', 'min', or a positive number"
                )
        elif self.initial_delta <= 0:
            raise ConfigurationError("numeric initial_delta must be positive")
        if self.gamma <= 0:
            raise ConfigurationError("gamma must be positive")
        if self.stage_threshold_factor <= 0:
            raise ConfigurationError("stage_threshold_factor must be positive")
        if self.growing_step_cap is not None and self.growing_step_cap < 1:
            raise ConfigurationError("growing_step_cap must be >= 1")
        if self.max_delta_doublings < 1:
            raise ConfigurationError("max_delta_doublings must be >= 1")
        if self.target_quotient_nodes < 1:
            raise ConfigurationError("target_quotient_nodes must be >= 1")
        if self.quotient_mode not in ("auto", "exact", "sweep"):
            raise ConfigurationError("quotient_mode must be auto|exact|sweep")
        if self.quotient_exact_limit < 1:
            raise ConfigurationError("quotient_exact_limit must be >= 1")
        from repro.mr.executor import EXECUTOR_NAMES

        if self.executor not in EXECUTOR_NAMES:
            raise ConfigurationError(
                "executor must be " + "|".join(EXECUTOR_NAMES)
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.kernel_impl not in ("auto", "py", "native"):
            raise ConfigurationError("kernel_impl must be auto|py|native")
        if self.emit_threads is not None and self.emit_threads < 1:
            raise ConfigurationError("emit_threads must be >= 1")

    # ------------------------------------------------------------------ #

    def resolve_tau(self, num_nodes: int) -> int:
        """Concrete τ for a graph of ``num_nodes`` nodes.

        When ``tau`` is unset, τ is sized so the expected number of
        clusters (Θ(τ log² n) in theory, ≈ τ·ln n per stage in practice)
        stays near ``target_quotient_nodes`` — the paper's "number of nodes
        in the quotient graph ≤ 100 000" policy, scaled down.
        """
        if self.tau is not None:
            return self.tau
        log_n = max(math.log(max(num_nodes, 2)), 1.0)
        tau = max(1, int(self.target_quotient_nodes / log_n))
        return min(tau, max(num_nodes, 1))

    def resolve_initial_delta(self, min_weight: float, mean_weight: float) -> float:
        """Concrete starting Δ from the configured strategy."""
        if self.initial_delta == "mean":
            value = mean_weight
        elif self.initial_delta == "min":
            value = min_weight
        else:
            value = float(self.initial_delta)
        if not value > 0:
            raise ConfigurationError(
                "resolved initial delta must be positive (edgeless graph?)"
            )
        return value

    def stage_threshold(self, num_nodes: int, tau: int) -> float:
        """Uncovered-node threshold below which remaining nodes become singletons."""
        return self.stage_threshold_factor * tau * math.log(max(num_nodes, 2))

    def with_(self, **changes) -> "ClusterConfig":
        """Functional update helper (frozen dataclass)."""
        return replace(self, **changes)
