"""CL-DIAM: diameter approximation through the clustered quotient graph.

The estimator (§4) runs the decomposition, builds the weighted quotient
graph ``G_C``, and returns::

    Φ_approx(G) = Φ(G_C) + 2 · R

where ``R`` is the clustering radius.  The estimate is **conservative**
(``Φ_approx ≥ Φ(G)``): any original shortest path between two nodes maps
to a quotient walk whose weight can only grow, and the ``2R`` term covers
the two endpoints' distance to their centers.  Theorem 2 bounds the
overshoot by ``O(log³ n)`` w.h.p. when CLUSTER2 is used; the experiments
(and this reproduction) observe ratios below 1.4 with plain CLUSTER.

Following §5, the default configuration is the paper's practical variant
**CL-DIAM**: decomposition via ``CLUSTER`` (not ``CLUSTER2``) and initial
Δ equal to the average edge weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cluster import Clustering, cluster
from repro.core.cluster2 import cluster2
from repro.core.config import ClusterConfig
from repro.core.quotient import quotient_graph
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.mr.metrics import Counters

__all__ = [
    "approximate_diameter",
    "diameter_from_clustering",
    "DiameterEstimate",
    "quotient_diameter",
]


@dataclass
class DiameterEstimate:
    """Result of a CL-DIAM run.

    Attributes
    ----------
    value:
        The estimate ``Φ(G_C) + 2·R`` (an upper bound on the diameter).
    quotient_diameter:
        Φ(G_C), the (possibly approximated, still conservative) quotient
        diameter.
    radius:
        Clustering radius R.
    num_clusters:
        Nodes of the quotient graph.
    quotient_exact:
        Whether Φ(G_C) was computed exactly or by the 2·ecc upper bound.
    clustering:
        The full decomposition (centers, per-node assignments, stages).
    counters:
        Rounds / messages / updates across decomposition + quotient step.
    """

    value: float
    quotient_diameter: float
    radius: float
    num_clusters: int
    quotient_exact: bool
    clustering: Clustering
    counters: Counters


def quotient_diameter(
    g_c: CSRGraph, *, mode: str = "auto", exact_limit: int = 3000
) -> tuple:
    """Diameter of the quotient graph, exactly or conservatively.

    Returns ``(value, exact)``.  ``"exact"`` computes all-pairs max finite
    distance; ``"sweep"`` returns ``2 · ecc(v)`` from an arbitrary node
    (still an upper bound, so Φ_approx stays conservative); ``"auto"``
    switches on ``exact_limit``.  The paper computes this step inside one
    reducer's memory in O(1) rounds; either variant respects that regime.
    """
    from repro.exact.apsp import exact_diameter
    from repro.exact.eccentricity import eccentricity

    if g_c.num_nodes <= 1 or g_c.num_edges == 0:
        return 0.0, True
    if mode == "exact" or (mode == "auto" and g_c.num_nodes <= exact_limit):
        return exact_diameter(g_c), True
    if mode in ("sweep", "auto"):
        # 2·ecc upper bound from the highest-degree node (a cheap, central
        # starting point); conservative by the triangle inequality.
        start = int(np.argmax(g_c.degrees))
        return 2.0 * eccentricity(g_c, start), False
    raise ConfigurationError(f"unknown quotient mode {mode!r}")


def diameter_from_clustering(
    graph: CSRGraph,
    clustering: Clustering,
    *,
    quotient_mode: str = "auto",
    quotient_exact_limit: int = 3000,
) -> DiameterEstimate:
    """Estimate the diameter from a *precomputed* decomposition.

    Decomposition dominates the cost at scale; callers that persist a
    clustering (:func:`repro.graph.serialize.save_clustering`) can
    re-derive estimates — e.g. with a different quotient mode — without
    re-running CLUSTER.  The estimate remains conservative as long as
    ``clustering`` was computed on this same graph.
    """
    counters = Counters()
    g_c, _centers = quotient_graph(graph, clustering)
    value, exact = quotient_diameter(
        g_c, mode=quotient_mode, exact_limit=quotient_exact_limit
    )
    counters.record_round(messages=g_c.num_arcs, updates=0)
    return DiameterEstimate(
        value=value + 2.0 * clustering.radius,
        quotient_diameter=value,
        radius=clustering.radius,
        num_clusters=clustering.num_clusters,
        quotient_exact=exact,
        clustering=clustering,
        counters=counters,
    )


def approximate_diameter(
    graph: CSRGraph,
    tau: Optional[int] = None,
    config: Optional[ClusterConfig] = None,
) -> DiameterEstimate:
    """Estimate the weighted diameter of ``graph`` with CL-DIAM.

    Parameters
    ----------
    graph:
        Input weighted graph.  For disconnected inputs the estimate refers
        to the largest finite quotient distance, matching the paper's
        per-component diameter definition.
    tau:
        Cluster-count parameter; when omitted, τ is derived from
        ``config.target_quotient_nodes`` (the paper's "quotient ≤ 100 000
        nodes" policy).
    config:
        Full configuration; ``config.use_cluster2`` switches the
        decomposition to the theoretically-analysed Algorithm 2.

    Returns
    -------
    DiameterEstimate

    Examples
    --------
    >>> from repro.generators import mesh
    >>> g = mesh(32, seed=7)
    >>> est = approximate_diameter(g, tau=16)
    >>> est.value >= 0
    True
    """
    config = config or ClusterConfig()
    if tau is not None:
        config = config.with_(tau=tau)
    counters = Counters()

    decompose = cluster2 if config.use_cluster2 else cluster
    clustering = decompose(graph, config=config, counters=counters)

    g_c, _centers = quotient_graph(graph, clustering)
    value, exact = quotient_diameter(
        g_c, mode=config.quotient_mode, exact_limit=config.quotient_exact_limit
    )
    # The final quotient-diameter computation runs inside a single
    # reducer's local memory: one more round (§4.1).
    counters.record_round(messages=g_c.num_arcs, updates=0)

    return DiameterEstimate(
        value=value + 2.0 * clustering.radius,
        quotient_diameter=value,
        radius=clustering.radius,
        num_clusters=clustering.num_clusters,
        quotient_exact=exact,
        clustering=clustering,
        counters=counters,
    )
