"""The Δ-growing step and PartialGrowth loops (vectorized).

A **Δ-growing step** (paper §3) performs, in parallel for every node ``u``
with ``d_u < Δ`` and every light edge ``(u, v)`` (weight ≤ Δ): if
``d_u + w(u, v) ≤ Δ`` and ``d_v > d_u + w(u, v)``, update
``(c_v, d_v) ← (c_u, d_u + w(u, v))``; among competing updates the one with
the smallest ``d_v`` wins, ties broken towards the smallest center index.

The implementation is a single synchronous (Jacobi-style) NumPy pass:

1. gather all arcs out of the active sources with
   :func:`~repro.util.expand_ranges`;
2. filter to light arcs whose candidate distance passes the Δ and
   improvement tests against the *old* state (synchronous semantics);
3. resolve competition per target with the O(candidates) scatter-min
   kernel (:func:`repro.mr.kernels.scatter_min_rows`) over
   ``(candidate_distance, candidate_center)`` — exactly the paper's
   tie-breaking rule, deterministically, without sorting the candidate
   batch (``REPRO_GROWING_KERNEL=sort`` restores the legacy
   ``np.lexsort`` for A/B comparison).

Frontier maintenance: after the first full step, only nodes whose state
changed can generate new improvements (frozen nodes' contributions never
change), so subsequent steps scan only the previous step's updated set.
This matches what a real MapReduce implementation sends and is the basis
of the work counts (messages = light arcs scanned from active sources).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Tuple

import numpy as np

from repro.core.state import NO_CENTER, ClusterState
from repro.graph.csr import CSRGraph
from repro.mr import native as _native
from repro.mr.emit import PULL_DEGREE_FRACTION, emit_mode
from repro.mr.kernels import ScatterScratch, merge_kernel_name, scatter_min_rows
from repro.mr.metrics import Counters
from repro.util import expand_ranges, first_occurrence

__all__ = ["delta_growing_step", "partial_growth", "GrowthResult"]


def delta_growing_step(
    graph: CSRGraph,
    state: ClusterState,
    delta: float,
    counters: Counters,
    *,
    sources: Optional[np.ndarray] = None,
    iteration: int = 0,
    rescale: float = 0.0,
    scratch: Optional[ScatterScratch] = None,
) -> Tuple[np.ndarray, int]:
    """Execute one synchronous Δ-growing step.

    Parameters
    ----------
    graph, state:
        The input graph and the mutable per-node state.
    delta:
        Current Δ (light-edge threshold and growth radius bound).
    counters:
        Accumulates one round, plus messages/updates/relaxations.
    sources:
        Candidate source nodes; ``None`` means "all assigned nodes"
        (required on the first step of a stage or after Δ changes).
    iteration, rescale:
        Contract2 rescaling parameters (see
        :meth:`~repro.core.state.ClusterState.effective_dist`); leave at
        defaults for CLUSTER semantics.
    scratch:
        Optional :class:`~repro.mr.kernels.ScatterScratch` for the
        winner-selection kernel; :func:`partial_growth` allocates one
        per growth loop so the dense buffers are reused across steps.

    Returns
    -------
    (updated, newly_assigned):
        Node ids whose state improved this step, and how many of them had
        no center before the step.
    """
    if sources is None:
        cand_src = np.flatnonzero(state.assigned_mask())
    else:
        cand_src = np.asarray(sources, dtype=np.int64)
        cand_src = cand_src[state.center[cand_src] != NO_CENTER]

    # Effective source distances (frozen nodes propagate as contracted edges).
    eff = state.dist[cand_src].copy()
    frozen_mask = state.frozen[cand_src]
    if rescale == 0.0:
        eff[frozen_mask] = 0.0
    else:
        fidx = np.flatnonzero(frozen_mask)
        eff[fidx] -= rescale * (iteration - state.frozen_iter[cand_src[fidx]])

    active = eff < delta
    srcs = cand_src[active]
    eff = eff[active]
    counters.growing_steps += 1
    if srcs.size == 0:
        counters.record_round(messages=0, updates=0)
        return np.empty(0, dtype=np.int64), 0

    emit_start = perf_counter()
    # Direction-optimizing expansion (mirrors repro.mr.emit): push
    # gathers the frontier's CSR rows; pull streams every arc
    # target-major once the frontier degree-sum crosses the threshold.
    # Both produce the identical candidate multiset with ascending
    # sources inside each target group, so winners cannot differ.
    mode = emit_mode()
    if mode == "auto":
        if _native.use_native():
            # The fused C push scans exactly the frontier's arcs with no
            # intermediate materialization — it never loses to the
            # full-arc pull scan, so auto resolves to push on the
            # native tier (both directions produce the identical
            # candidate multiset and message count).
            pull = False
        else:
            degree_sum = int((graph.indptr[srcs + 1] - graph.indptr[srcs]).sum())
            pull = graph.num_arcs and degree_sum > PULL_DEGREE_FRACTION * graph.num_arcs
    else:
        pull = mode == "pull"

    if pull:
        n = graph.num_nodes
        effd = np.zeros(n)
        emitting = np.zeros(n, dtype=bool)
        emitting[srcs] = True
        effd[srcs] = eff
        rows = graph.arc_sources_view()  # reverse-CSR arc→row map
        if _native.use_native():
            cand_t, cand_d, cand_s, cand_w, messages = _native.core_emit_pull(
                rows, graph.indices, graph.weights, emitting, effd,
                delta, state.frozen, state.dist,
            )
            if not len(cand_t):
                counters.record_round(messages=messages, updates=0)
                counters.add_time("emit", perf_counter() - emit_start)
                return np.empty(0, dtype=np.int64), 0
            cand_c = state.center[cand_s]
            cand_acc = state.dist_acc[cand_s] + cand_w
        else:
            em = emitting[graph.indices]
            w_all = graph.weights
            light_all = w_all <= delta
            open_all = ~state.frozen[rows]
            msg_mask = em & light_all & open_all
            messages = int(np.count_nonzero(msg_mask))
            nd_all = effd[graph.indices] + w_all
            ok_all = msg_mask & (nd_all <= delta) & (nd_all < state.dist[rows])
            if not ok_all.any():
                counters.record_round(messages=messages, updates=0)
                counters.add_time("emit", perf_counter() - emit_start)
                return np.empty(0, dtype=np.int64), 0
            cand_t = rows[ok_all]
            cand_d = nd_all[ok_all]
            cand_s = graph.indices[ok_all]
            cand_c = state.center[cand_s]
            cand_acc = state.dist_acc[cand_s] + w_all[ok_all]
    elif _native.use_native():
        # Fused push expansion + message count + Δ/improvement filter in
        # one C pass over the frontier's arcs (same semantics as the
        # NumPy cascade below, including the message count's exclusion
        # of the Δ and improvement tests).
        degs = graph.indptr[srcs + 1] - graph.indptr[srcs]
        cand_t, cand_d, cand_s, cand_w, messages = _native.core_emit_push(
            graph.indptr, graph.indices, graph.weights, srcs, eff,
            delta, state.frozen, state.dist, int(degs.sum()),
        )
        if not len(cand_t):
            counters.record_round(messages=messages, updates=0)
            counters.add_time("emit", perf_counter() - emit_start)
            return np.empty(0, dtype=np.int64), 0
        cand_c = state.center[cand_s]
        cand_acc = state.dist_acc[cand_s] + cand_w
    else:
        # Gather all arcs out of the active sources.
        starts = graph.indptr[srcs]
        counts = graph.indptr[srcs + 1] - starts
        arc_idx = expand_ranges(starts, counts)
        tgt = graph.indices[arc_idx]
        w = graph.weights[arc_idx]
        src_rep = np.repeat(srcs, counts)
        eff_rep = np.repeat(eff, counts)

        # Messages = light arcs that exist in the *contracted* graph:
        # arcs into frozen targets were removed by Contract (both
        # endpoints covered → edge dropped; boundary edges point outward
        # only), so a real implementation never sends along them.
        light = w <= delta
        open_target = ~state.frozen[tgt]
        messages = int(np.count_nonzero(light & open_target))

        nd = eff_rep + w
        ok = light & (nd <= delta) & open_target & (nd < state.dist[tgt])
        if not ok.any():
            counters.record_round(messages=messages, updates=0)
            counters.add_time("emit", perf_counter() - emit_start)
            return np.empty(0, dtype=np.int64), 0

        cand_t = tgt[ok]
        cand_d = nd[ok]
        cand_c = state.center[src_rep[ok]]
        cand_acc = state.dist_acc[src_rep[ok]] + w[ok]
    relaxations = len(cand_t)
    reduce_start = perf_counter()
    counters.add_time("emit", reduce_start - emit_start)

    # Winner per target: smallest distance, then smallest center index
    # (any remaining tie is a duplicate (target, distance, center) row;
    # both kernels keep the earliest arrival — which is the same row in
    # push and pull order, as sources ascend within each target group).
    if merge_kernel_name() == "sort":
        order = np.lexsort((cand_c, cand_d, cand_t))
        sel = order[first_occurrence(cand_t[order])]
        upd = cand_t[sel]
    else:
        upd, sel = scatter_min_rows(
            cand_t,
            (cand_d, cand_c.astype(np.float64)),
            domain=len(state.center),
            scratch=scratch,
        )

    apply_start = perf_counter()
    counters.add_time("reduce", apply_start - reduce_start)
    newly_assigned = int(np.count_nonzero(state.center[upd] == NO_CENTER))
    state.dist[upd] = cand_d[sel]
    state.center[upd] = cand_c[sel]
    state.dist_acc[upd] = cand_acc[sel]
    counters.add_time("apply", perf_counter() - apply_start)

    counters.record_round(messages=messages, updates=len(upd), relaxations=relaxations)
    return upd, newly_assigned


class GrowthResult:
    """Outcome of a PartialGrowth loop.

    Attributes
    ----------
    steps:
        Δ-growing steps executed.
    newly_covered:
        Previously-unassigned nodes that received a center.
    reached_fixpoint:
        ``True`` when the loop stopped because no state changed.
    hit_cap:
        ``True`` when the §4.1 growing-step cap stopped the loop.
    """

    __slots__ = ("steps", "newly_covered", "reached_fixpoint", "hit_cap")

    def __init__(self, steps: int, newly_covered: int, reached_fixpoint: bool, hit_cap: bool):
        self.steps = steps
        self.newly_covered = newly_covered
        self.reached_fixpoint = reached_fixpoint
        self.hit_cap = hit_cap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GrowthResult(steps={self.steps}, newly_covered={self.newly_covered}, "
            f"fixpoint={self.reached_fixpoint}, capped={self.hit_cap})"
        )


def partial_growth(
    graph: CSRGraph,
    state: ClusterState,
    delta: float,
    counters: Counters,
    *,
    cover_target: Optional[int] = None,
    step_cap: Optional[int] = None,
    iteration: int = 0,
    rescale: float = 0.0,
) -> GrowthResult:
    """Run Δ-growing steps to (near) fixpoint — Procedures PartialGrowth/2.

    Stops when a step produces no update (fixpoint; this happens after at
    most ``ℓ_Δ`` steps by the Bellman–Ford argument of Theorem 1), when
    ``cover_target`` newly covered nodes have been reached (PartialGrowth's
    half-coverage early exit), or when ``step_cap`` steps have run (§4.1's
    round-limiting variant).

    The first step scans all assigned nodes (frozen representatives
    included); later steps scan only the previous step's updated frontier.
    """
    frontier: Optional[np.ndarray] = None  # None = all assigned sources
    steps = 0
    newly_covered = 0
    scratch = ScatterScratch()  # winner-selection buffers, reused per step
    while True:
        updated, assigned_now = delta_growing_step(
            graph,
            state,
            delta,
            counters,
            sources=frontier,
            iteration=iteration,
            rescale=rescale,
            scratch=scratch,
        )
        steps += 1
        newly_covered += assigned_now
        if updated.size == 0:
            return GrowthResult(steps, newly_covered, True, False)
        if cover_target is not None and newly_covered >= cover_target:
            return GrowthResult(steps, newly_covered, False, False)
        if step_cap is not None and steps >= step_cap:
            return GrowthResult(steps, newly_covered, False, True)
        frontier = updated
