"""Per-node algorithm state ``(c_u, d_u)`` and the contraction bookkeeping.

The paper maintains, for every node ``u``, a pair ``(c_u, d_u)``: the
center of the cluster ``u`` is assigned to (or undefined) and an upper
bound on ``dist(c_u, u)``.  The Contract/Contract2 procedures then replace
covered nodes by their centers.

Rather than physically rebuilding the contracted graph after every stage —
which would copy the edge arrays O(log n) times — this implementation keeps
the original graph and marks covered nodes as **frozen**:

* a frozen node keeps its final cluster assignment and is never updated
  again (it was "removed" by Contract);
* a frozen node still *propagates* along its edges, with an effective
  distance that reproduces the contracted edge exactly:

  - Contract (CLUSTER): edge ``(u, v)`` became ``(c_u, v)`` of weight
    ``w(u, v)``, i.e. frozen ``u`` propagates with effective distance 0;
  - Contract2 (CLUSTER2): the edge became ``(c_u, v)`` of weight
    ``d_u + w(u, v) − 2·R_CL``, and iterating contraction subtracts another
    ``2·R_CL`` per elapsed iteration, i.e. frozen ``u`` propagates with
    effective distance ``d_u − 2·R_CL · (current_iter − freeze_iter)``.

Separately from the stage-local ``d_u`` (which Contract2 rescales), the
state tracks ``dist_acc``: an upper bound on the *true* weighted distance
from ``u`` to its center in the original graph, accumulated across stages.
``dist_acc`` defines the clustering radius and the quotient-graph weights.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["ClusterState"]

#: Sentinel for "no center assigned".
NO_CENTER = -1


class ClusterState:
    """Mutable per-node state shared by CLUSTER and CLUSTER2.

    Attributes
    ----------
    center:
        int64[n]; ``center[u]`` is the cluster center of ``u`` or ``-1``.
    dist:
        float64[n]; stage-local distance upper bound ``d_u`` (``inf`` when
        unassigned).  Compared against Δ by the growing step.
    dist_acc:
        float64[n]; accumulated upper bound on ``dist(center[u], u)`` in
        the original graph.
    frozen:
        bool[n]; covered in an earlier stage (Contract applied).
    frozen_iter:
        int64[n]; iteration index at which the node froze (CLUSTER2's
        rescaling needs it; unused by CLUSTER).
    """

    __slots__ = ("center", "dist", "dist_acc", "frozen", "frozen_iter")

    def __init__(self, num_nodes: int):
        self.center = np.full(num_nodes, NO_CENTER, dtype=np.int64)
        self.dist = np.full(num_nodes, np.inf, dtype=np.float64)
        self.dist_acc = np.full(num_nodes, np.inf, dtype=np.float64)
        self.frozen = np.zeros(num_nodes, dtype=bool)
        self.frozen_iter = np.zeros(num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        return len(self.center)

    def assigned_mask(self) -> np.ndarray:
        """Nodes with a defined center (frozen or current-stage)."""
        return self.center != NO_CENTER

    def uncovered_mask(self) -> np.ndarray:
        """Nodes not yet permanently covered (i.e. not frozen)."""
        return ~self.frozen

    def num_uncovered(self) -> int:
        return int(np.count_nonzero(~self.frozen))

    # ------------------------------------------------------------------ #

    def start_stage(self, new_centers: np.ndarray) -> None:
        """Reset non-frozen nodes and install ``new_centers``.

        Mirrors Algorithm 1's per-stage initialization: nodes in ``X`` get
        ``(u, 0)``, every other (non-frozen) node gets ``(nil, ∞)``.
        Frozen nodes keep their assignment — they are the contracted
        representatives of earlier clusters.
        """
        thaw = ~self.frozen
        self.center[thaw] = NO_CENTER
        self.dist[thaw] = np.inf
        self.dist_acc[thaw] = np.inf
        new_centers = np.asarray(new_centers, dtype=np.int64)
        if np.any(self.frozen[new_centers]):
            raise ValueError("cannot select a frozen node as a new center")
        self.center[new_centers] = new_centers
        self.dist[new_centers] = 0.0
        self.dist_acc[new_centers] = 0.0

    def freeze_assigned(self, iteration: int = 0) -> np.ndarray:
        """Contract: permanently cover every currently assigned node.

        Returns the array of newly frozen node ids.  ``iteration`` is
        recorded for CLUSTER2's rescaling arithmetic.
        """
        newly = np.flatnonzero(self.assigned_mask() & ~self.frozen)
        self.frozen[newly] = True
        self.frozen_iter[newly] = iteration
        return newly

    def effective_dist(self, iteration: int = 0, rescale: float = 0.0) -> np.ndarray:
        """Per-node distance used as the propagation source value.

        * non-frozen assigned nodes: their stage-local ``dist``;
        * frozen nodes under Contract semantics (``rescale == 0``): 0;
        * frozen nodes under Contract2 semantics: ``dist − rescale ·
          (iteration − frozen_iter)``;
        * unassigned nodes: ``inf`` (they never propagate).
        """
        eff = self.dist.copy()
        if rescale == 0.0:
            eff[self.frozen] = 0.0
        else:
            f = self.frozen
            eff[f] = self.dist[f] - rescale * (iteration - self.frozen_iter[f])
        eff[~self.assigned_mask()] = np.inf
        return eff

    def radius(self) -> float:
        """Max accumulated distance to a center over assigned nodes (0 if none)."""
        assigned = self.assigned_mask()
        if not assigned.any():
            return 0.0
        return float(self.dist_acc[assigned].max())

    # ------------------------------------------------------------------ #
    # Sharding: split/merge by contiguous node range
    # ------------------------------------------------------------------ #

    def slice_range(self, lo: int, hi: int) -> "ClusterState":
        """Copy the state of the node range ``[lo, hi)`` as its own state.

        The slice is independent (arrays are copied): a shard-owning
        worker mutates its slice across rounds without touching the
        original.  Node ``u`` of the slice is global node ``lo + u``;
        ``center`` values stay *global* node ids, which is what lets
        slices be merged back losslessly.
        """
        part = ClusterState.__new__(ClusterState)
        part.center = self.center[lo:hi].copy()
        part.dist = self.dist[lo:hi].copy()
        part.dist_acc = self.dist_acc[lo:hi].copy()
        part.frozen = self.frozen[lo:hi].copy()
        part.frozen_iter = self.frozen_iter[lo:hi].copy()
        return part

    def split_by_ranges(self, starts) -> "list[ClusterState]":
        """Split into per-shard slices along ``starts`` boundaries.

        ``starts`` is a partition-plan boundary array (length
        ``num_shards + 1``, covering ``[0, num_nodes)``); the returned
        slices concatenate back to ``self`` via :meth:`concat`.
        """
        starts = np.asarray(starts, dtype=np.int64)
        if starts[0] != 0 or starts[-1] != self.num_nodes:
            raise ValueError("ranges must cover [0, num_nodes) exactly")
        return [
            self.slice_range(int(lo), int(hi))
            for lo, hi in zip(starts[:-1], starts[1:])
        ]

    @classmethod
    def concat(cls, slices: "list[ClusterState]") -> "ClusterState":
        """Merge contiguous-range slices (in range order) into one state."""
        merged = cls.__new__(cls)
        merged.center = np.concatenate([s.center for s in slices])
        merged.dist = np.concatenate([s.dist for s in slices])
        merged.dist_acc = np.concatenate([s.dist_acc for s in slices])
        merged.frozen = np.concatenate([s.frozen for s in slices])
        merged.frozen_iter = np.concatenate([s.frozen_iter for s in slices])
        return merged
