"""τ auto-tuning (the paper's quotient-size policy, automated).

The paper sets τ "to yield a number of nodes in the quotient graph
≤ 100 000 ... to ensure that the final diameter computation would not
dominate the running time" (§5).  The mapping τ → cluster count depends on
the graph (Theorem 1 only gives O(τ log² n) w.h.p.), so this module tunes
τ empirically: exponential search over τ, probing each candidate with a
real (cheap) CLUSTER run and keeping the largest τ whose quotient stays
within budget.  The probe runs are full decompositions — on the scaled
instances this library targets they are fast; at extreme scale callers
would sample instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.cluster import cluster
from repro.core.config import ClusterConfig
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph

__all__ = ["tune_tau", "TauTuningResult"]


@dataclass
class TauTuningResult:
    """Outcome of :func:`tune_tau`.

    ``tau`` is the selected value; ``probes`` records every
    ``(tau, clusters)`` pair examined (useful for reports).
    """

    tau: int
    clusters: int
    probes: List[tuple]


def tune_tau(
    graph: CSRGraph,
    max_quotient_nodes: int,
    *,
    config: Optional[ClusterConfig] = None,
    max_probes: int = 12,
) -> TauTuningResult:
    """Largest τ whose decomposition keeps the quotient within budget.

    Exponential search: doubles τ while the cluster count stays within
    ``max_quotient_nodes``, then binary-refines between the last good and
    first bad values.  Monotonicity holds in expectation (Theorem 1), and
    the occasional randomness-induced violation only costs optimality,
    never the budget: the returned τ's own probe satisfied it.
    """
    if max_quotient_nodes < 1:
        raise ConfigurationError("max_quotient_nodes must be >= 1")
    config = config or ClusterConfig()
    n = graph.num_nodes
    if n == 0:
        raise ConfigurationError("cannot tune on the empty graph")

    probes: List[tuple] = []

    def probe(tau: int) -> int:
        count = cluster(graph, tau=tau, config=config).num_clusters
        probes.append((tau, count))
        return count

    # Exponential phase.
    tau = 1
    count = probe(tau)
    if count > max_quotient_nodes:
        # Even τ = 1 busts the budget (tiny budget or singleton regime):
        # report τ = 1, the smallest legal value.
        return TauTuningResult(tau=1, clusters=count, probes=probes)
    best = (tau, count)
    used = 1
    while used < max_probes and tau < n:
        candidate = min(tau * 2, n)
        count = probe(candidate)
        used += 1
        if count <= max_quotient_nodes:
            best = (candidate, count)
            if candidate == n:
                break
            tau = candidate
        else:
            # Binary refinement between tau (good) and candidate (bad).
            lo, hi = tau, candidate
            while used < max_probes and hi - lo > 1:
                mid = (lo + hi) // 2
                count = probe(mid)
                used += 1
                if count <= max_quotient_nodes:
                    best = (mid, count)
                    lo = mid
                else:
                    hi = mid
            break

    return TauTuningResult(tau=best[0], clusters=best[1], probes=probes)
