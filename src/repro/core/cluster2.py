"""Algorithm 2: ``CLUSTER2(G, τ)`` — the analysis-friendly decomposition.

CLUSTER2 first runs :func:`~repro.core.cluster.cluster` to learn the radius
``R_CL(τ)``, then performs ``⌈log₂ n⌉`` iterations in which uncovered nodes
become new centers with probability ``2^i / n`` and all clusters grow with
``2·R_CL``-growing steps to fixpoint (Procedure PartialGrowth2).  After each
iteration Contract2 rescales boundary edges by ``−2·R_CL``, which caps how
far late-selected centers can reach — the property Theorem 2's
approximation bound hinges on.

Lemma 2 (reproduced by the tests): w.h.p. the result is an
``O(τ log⁴ n)``-clustering of radius ``O(R_G(τ) log² n)``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.cluster import Clustering, cluster
from repro.core.config import ClusterConfig
from repro.core.contract import contract2
from repro.core.growing import partial_growth
from repro.core.state import ClusterState
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.mr.metrics import Counters
from repro.util import as_rng

__all__ = ["cluster2"]


def cluster2(
    graph: CSRGraph,
    tau: Optional[int] = None,
    config: Optional[ClusterConfig] = None,
    *,
    counters: Optional[Counters] = None,
) -> Clustering:
    """Run ``CLUSTER2(G, τ)`` (Algorithm 2).

    The returned :class:`~repro.core.cluster.Clustering` reports the final
    assignment, the accumulated (true-graph) distances to centers and the
    radius ``R_CL2``.  The embedded :class:`~repro.mr.metrics.Counters`
    include the initial CLUSTER run, matching how the paper accounts the
    algorithm's total round complexity.
    """
    config = config or ClusterConfig()
    if tau is not None:
        config = config.with_(tau=tau)
    n = graph.num_nodes
    if n == 0:
        raise ConfigurationError("cannot cluster the empty graph")
    counters = counters if counters is not None else Counters()

    # Phase 1: learn R_CL(τ) with the practical algorithm.
    base = cluster(graph, config=config, counters=counters)
    r_cl = base.radius
    if r_cl <= 0.0:
        # All nodes were singletons (τ ≥ n regime or edgeless graph); the
        # base clustering is already a legal output and growth with Δ = 0
        # could not move, so return it directly.
        counters.extra["cluster2_iterations"] = 0
        return base

    delta = 2.0 * r_cl
    rng = as_rng(None if config.seed is None else config.seed + 1)
    state = ClusterState(n)
    num_iterations = max(1, math.ceil(math.log2(max(n, 2))))

    for i in range(1, num_iterations + 1):
        uncovered = np.flatnonzero(~state.frozen)
        if len(uncovered) == 0:
            break
        probability = min(1.0, (2.0**i) / n)
        picks = uncovered[rng.random(len(uncovered)) < probability]
        if i == num_iterations:
            # The last iteration selects with probability 1 by construction
            # (2^⌈log₂ n⌉ ≥ n); enforce it exactly so every node is covered
            # even when floating-point rounding nudges the probability.
            picks = uncovered
        if len(picks) == 0 and len(uncovered) > 0:
            # No center sampled this iteration: the pseudocode proceeds
            # with only old clusters growing, which cannot cover new nodes
            # beyond their rescaled reach; that is legal, so continue.
            pass
        state.start_stage(picks)
        partial_growth(
            graph,
            state,
            delta,
            counters,
            step_cap=config.growing_step_cap,
            iteration=i,
            rescale=delta,
        )
        contract2(state, i)

    # Safety net for disconnected graphs: any node never reached becomes a
    # singleton (cannot happen for connected inputs because the last
    # iteration selects every uncovered node as a center).
    leftover = np.flatnonzero(~state.frozen)
    if len(leftover):
        state.start_stage(leftover)
        state.freeze_assigned(num_iterations + 1)

    counters.extra["cluster2_iterations"] = num_iterations
    counters.extra["cluster2_base_radius"] = int(round(r_cl)) if r_cl >= 1 else 0

    clustering = Clustering(
        center=state.center.copy(),
        dist_to_center=state.dist_acc.copy(),
        centers=np.unique(state.center),
        radius=state.radius(),
        delta_end=delta,
        tau=base.tau,
        counters=counters,
        stages=base.stages,
        singleton_count=len(leftover),
    )
    clustering.validate()
    return clustering
