"""repro — reproduction of "A Practical Parallel Algorithm for Diameter
Approximation of Massive Weighted Graphs" (Ceccarello, Pietracaprina,
Pucci, Upfal — IPPS 2016).

Public API
----------
Graphs
    :class:`~repro.graph.CSRGraph`, :func:`~repro.graph.from_edges`,
    :func:`~repro.graph.read_dimacs`, generators in :mod:`repro.generators`.
Core algorithm (the paper's contribution)
    :func:`~repro.core.cluster` (Algorithm 1),
    :func:`~repro.core.cluster2` (Algorithm 2),
    :func:`~repro.core.quotient_graph`,
    :func:`~repro.core.approximate_diameter` (CL-DIAM),
    :class:`~repro.core.ClusterConfig`.
Baselines
    :func:`~repro.baselines.delta_stepping_sssp`,
    :func:`~repro.baselines.sssp_diameter_approx`,
    :func:`~repro.baselines.diameter_lower_bound`,
    :func:`~repro.baselines.dijkstra_sssp`.
MR model
    :class:`~repro.mr.MRSpec`, :class:`~repro.mr.MREngine`,
    :class:`~repro.mr.Counters`.
Runtime layer
    :class:`~repro.runtime.GraphStore` (memory-mapped graph cache),
    :func:`~repro.runtime.get_graph`, and :func:`repro.run_algorithm`
    (the unified dispatcher over the algorithm registry — see
    ``docs/architecture.md``).

Quickstart
----------
>>> from repro import mesh, approximate_diameter, diameter_lower_bound
>>> g = mesh(64, seed=1)                  # 64x64 grid, uniform weights
>>> est = approximate_diameter(g, tau=32)
>>> lb = diameter_lower_bound(g, seed=1)
>>> est.value >= lb                       # conservative estimate
True
"""

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    GraphFormatError,
    GraphValidationError,
    MemoryLimitExceeded,
    ReproError,
)
from repro.graph import (
    CSRGraph,
    from_edges,
    from_edge_list,
    read_dimacs,
    read_edge_list,
    write_dimacs,
    write_edge_list,
)
from repro.generators import (
    gnm_random_graph,
    mesh,
    path_graph,
    powerlaw_cluster_like,
    rmat,
    road_network,
    roads,
    torus,
)
from repro.core import (
    ClusterConfig,
    Clustering,
    DiameterEstimate,
    approximate_diameter,
    cluster,
    cluster2,
    quotient_graph,
)
from repro.baselines import (
    bellman_ford_sssp,
    delta_stepping_sssp,
    diameter_lower_bound,
    dijkstra_sssp,
    sssp_diameter_approx,
)
from repro.exact import exact_diameter
from repro.mr import Counters, MREngine, MRSpec
from repro.runtime import GraphStore, RunResult, get_graph
from repro.runtime import run as run_algorithm

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "MemoryLimitExceeded",
    "ConfigurationError",
    "ConvergenceError",
    # graphs
    "CSRGraph",
    "from_edges",
    "from_edge_list",
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
    # generators
    "mesh",
    "torus",
    "rmat",
    "road_network",
    "roads",
    "gnm_random_graph",
    "path_graph",
    "powerlaw_cluster_like",
    # core
    "ClusterConfig",
    "Clustering",
    "DiameterEstimate",
    "cluster",
    "cluster2",
    "quotient_graph",
    "approximate_diameter",
    # baselines
    "dijkstra_sssp",
    "bellman_ford_sssp",
    "delta_stepping_sssp",
    "sssp_diameter_approx",
    "diameter_lower_bound",
    "exact_diameter",
    # MR model
    "MRSpec",
    "MREngine",
    "Counters",
    # runtime layer
    "GraphStore",
    "get_graph",
    "run_algorithm",
    "RunResult",
]
