"""BFS-batched graph decomposition — the [CPPU15] unweighted algorithm.

Structure mirrors ``CLUSTER`` (Algorithm 1) with the weighted machinery
stripped out: in each stage a fresh batch of random centers is selected
among uncovered nodes, then every growing step absorbs *all* uncovered
neighbours of the current cluster frontiers (one BFS level per step, one
MR round per step) until at least half of the stage's uncovered nodes are
covered.  Covered nodes freeze (Contract) exactly as in the weighted case.

Two distances are tracked per node: the **hop** distance to its center
(the quantity the unweighted analysis bounds) and the **weighted** length
of the BFS path actually used (needed by the weight-oblivious experiment
to expose how large the weighted radius of a hop-ball can get).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.cluster import Clustering, StageInfo
from repro.core.config import ClusterConfig
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.mr.metrics import Counters
from repro.util import as_rng, expand_ranges, first_occurrence

__all__ = ["bfs_cluster", "UnweightedDecomposition"]


@dataclass
class UnweightedDecomposition:
    """Result of :func:`bfs_cluster`.

    Attributes
    ----------
    clustering:
        The decomposition with **hop** distances in ``dist_to_center``
        and the hop radius in ``radius``.
    weighted_dist:
        float64[n]; the weighted length of the BFS path each node was
        reached through — an upper bound on the weighted distance to its
        center, and the quantity the weight-oblivious experiment exposes.
    """

    clustering: Clustering
    weighted_dist: np.ndarray

    @property
    def weighted_radius(self) -> float:
        """Largest weighted path length to any center (can vastly exceed
        the hop radius times the mean weight on skewed inputs)."""
        return float(self.weighted_dist.max()) if len(self.weighted_dist) else 0.0


def _bfs_growing_step(
    graph: CSRGraph,
    center: np.ndarray,
    hops: np.ndarray,
    wdist: np.ndarray,
    frozen: np.ndarray,
    sources: Optional[np.ndarray],
    counters: Counters,
) -> np.ndarray:
    """One synchronous BFS step from ``sources`` (``None`` = all assigned).

    Mirrors the Δ-growing step with hop-count relaxation: an uncovered
    node joins the cluster of the neighbouring frontier node whose center
    index is smallest (deterministic tie-break); frozen nodes propagate as
    contracted representatives at hop distance 0.
    """
    if sources is None:
        cand_src = np.flatnonzero(center >= 0)
    else:
        cand_src = np.asarray(sources, dtype=np.int64)
        cand_src = cand_src[center[cand_src] >= 0]
    counters.growing_steps += 1
    if cand_src.size == 0:
        counters.record_round(messages=0, updates=0)
        return np.empty(0, dtype=np.int64)

    starts = graph.indptr[cand_src]
    counts = graph.indptr[cand_src + 1] - starts
    arc_idx = expand_ranges(starts, counts)
    tgt = graph.indices[arc_idx]
    w = graph.weights[arc_idx]
    src_rep = np.repeat(cand_src, counts)

    src_hops = hops[src_rep].copy()
    src_w = wdist[src_rep].copy()
    fr = frozen[src_rep]
    src_hops[fr] = 0  # contracted representatives restart at the center

    open_target = ~frozen[tgt] & (center[tgt] < 0)
    messages = int(np.count_nonzero(~frozen[tgt]))
    if not open_target.any():
        counters.record_round(messages=messages, updates=0)
        return np.empty(0, dtype=np.int64)

    cand_t = tgt[open_target]
    cand_h = src_hops[open_target] + 1
    cand_c = center[src_rep[open_target]]
    cand_w = src_w[open_target] + w[open_target]

    order = np.lexsort((cand_c, cand_h, cand_t))
    sel = order[first_occurrence(cand_t[order])]
    upd = cand_t[sel]
    center[upd] = cand_c[sel]
    hops[upd] = cand_h[sel]
    wdist[upd] = cand_w[sel]

    counters.record_round(messages=messages, updates=len(upd), relaxations=len(cand_t))
    return upd


def bfs_cluster(
    graph: CSRGraph,
    tau: Optional[int] = None,
    config: Optional[ClusterConfig] = None,
    *,
    counters: Optional[Counters] = None,
) -> UnweightedDecomposition:
    """Decompose ``graph`` with the unweighted [CPPU15] strategy.

    Edge weights are **ignored for growth** (every edge is one hop); the
    embedded :class:`~repro.core.cluster.Clustering` reports *hop*
    distances in ``dist_to_center`` and the hop radius in ``radius``,
    while :attr:`UnweightedDecomposition.weighted_dist` records the
    weighted length of every node's BFS path for the weight-oblivious
    analysis.

    Parameters mirror :func:`repro.core.cluster.cluster`; ``initial_delta``
    and the doubling machinery are unused (there is no Δ here).
    """
    config = config or ClusterConfig()
    if tau is not None:
        config = config.with_(tau=tau)
    n = graph.num_nodes
    if n == 0:
        raise ConfigurationError("cannot cluster the empty graph")
    tau_val = config.resolve_tau(n)
    counters = counters if counters is not None else Counters()
    rng = as_rng(config.seed)

    center = np.full(n, -1, dtype=np.int64)
    hops = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    wdist = np.full(n, np.inf, dtype=np.float64)
    frozen = np.zeros(n, dtype=bool)

    threshold = config.stage_threshold(n, tau_val)
    gamma_tau_log = config.gamma * tau_val * math.log(max(n, 2))
    stages: List[StageInfo] = []
    stage_index = 0

    while True:
        uncovered = np.flatnonzero(~frozen)
        num_uncovered = len(uncovered)
        if num_uncovered == 0 or num_uncovered < threshold:
            break
        stage_index += 1
        probability = min(1.0, gamma_tau_log / num_uncovered)
        picks = uncovered[rng.random(num_uncovered) < probability]
        if len(picks) == 0:
            picks = np.array(
                [uncovered[int(rng.integers(num_uncovered))]], dtype=np.int64
            )

        # Stage init: reset non-frozen nodes, install the new centers.
        thaw = ~frozen
        center[thaw] = -1
        hops[thaw] = np.iinfo(np.int64).max
        wdist[thaw] = np.inf
        center[picks] = picks
        hops[picks] = 0
        wdist[picks] = 0.0

        cover_target = -(-num_uncovered // 2)
        covered = len(picks)
        steps = 0
        frontier: Optional[np.ndarray] = None
        while covered < cover_target:
            upd = _bfs_growing_step(
                graph, center, hops, wdist, frozen, frontier, counters
            )
            steps += 1
            if upd.size == 0:
                break  # stage exhausted its reachable set
            covered += len(upd)
            frontier = upd
            if config.growing_step_cap and steps >= config.growing_step_cap:
                break

        newly = np.flatnonzero((center >= 0) & ~frozen)
        frozen[newly] = True
        stages.append(
            StageInfo(
                stage=stage_index,
                uncovered_before=num_uncovered,
                new_centers=len(picks),
                delta_start=float(steps),
                delta_end=float(steps),
                growing_steps=steps,
                newly_covered=len(newly),
            )
        )

    leftover = np.flatnonzero(~frozen)
    if len(leftover):
        center[leftover] = leftover
        hops[leftover] = 0
        wdist[leftover] = 0.0
        frozen[leftover] = True

    hop_dist = hops.astype(np.float64)
    max_hops = float(hop_dist.max()) if n else 0.0

    clustering = Clustering(
        center=center.copy(),
        dist_to_center=hop_dist,
        centers=np.unique(center),
        radius=max_hops,
        delta_end=max_hops,
        tau=tau_val,
        counters=counters,
        stages=stages,
        singleton_count=len(leftover),
    )
    clustering.validate()
    return UnweightedDecomposition(clustering=clustering, weighted_dist=wdist.copy())
