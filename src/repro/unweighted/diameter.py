"""Diameter estimation with the unweighted decomposition.

Two estimators:

* :func:`unweighted_approximate_diameter` — the legitimate [CPPU15] use:
  estimate the **hop** (unweighted) diameter of a graph through the
  hop-quotient, ``Ψ_approx = Ψ(G_C) + 2·R_hops``.
* :func:`weight_oblivious_diameter` — the paper's §1 cautionary tale:
  cluster by hops but measure weights.  The estimate stays conservative
  (distances only ever over-count), but with no Δ to stop heavy edges the
  weighted cluster radius — and hence the estimate — can blow up
  arbitrarily, which is exactly why the weighted algorithm needs the
  Δ-bounded growth.  The benches demonstrate the blow-up on bimodal
  weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ClusterConfig
from repro.core.diameter import quotient_diameter
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph
from repro.unweighted.decomposition import UnweightedDecomposition, bfs_cluster

__all__ = [
    "unweighted_approximate_diameter",
    "weight_oblivious_diameter",
    "WeightObliviousResult",
]


def _hop_quotient(graph: CSRGraph, decomposition: UnweightedDecomposition):
    """Quotient with unit edge weights and hop offsets (hop semantics)."""
    cl = decomposition.clustering
    ids = cl.cluster_ids()
    src = graph.arc_sources()
    dst = graph.indices
    one_dir = src < dst
    u, v = src[one_dir], dst[one_dir]
    cu, cv = ids[u], ids[v]
    cross = cu != cv
    if not cross.any():
        return from_edges(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0),
            cl.num_clusters,
        )
    qw = 1.0 + cl.dist_to_center[u[cross]] + cl.dist_to_center[v[cross]]
    return from_edges(cu[cross], cv[cross], qw, cl.num_clusters)


def _weighted_quotient(graph: CSRGraph, decomposition: UnweightedDecomposition):
    """Quotient with true edge weights and weighted-path offsets."""
    cl = decomposition.clustering
    ids = cl.cluster_ids()
    wdist = decomposition.weighted_dist
    src = graph.arc_sources()
    dst = graph.indices
    w = graph.weights
    one_dir = src < dst
    u, v, ww = src[one_dir], dst[one_dir], w[one_dir]
    cu, cv = ids[u], ids[v]
    cross = cu != cv
    if not cross.any():
        return from_edges(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0),
            cl.num_clusters,
        )
    qw = ww[cross] + wdist[u[cross]] + wdist[v[cross]]
    return from_edges(cu[cross], cv[cross], qw, cl.num_clusters)


def unweighted_approximate_diameter(
    graph: CSRGraph,
    tau: Optional[int] = None,
    config: Optional[ClusterConfig] = None,
    *,
    counters=None,
) -> float:
    """Estimate the **unweighted** (hop) diameter via the hop quotient.

    Conservative for the hop metric: ``Ψ_approx ≥ Ψ(G)``.  A
    caller-supplied ``counters`` accumulates the decomposition's
    rounds/messages/updates.
    """
    config = config or ClusterConfig()
    if tau is not None:
        config = config.with_(tau=tau)
    decomposition = bfs_cluster(graph, config=config)
    if counters is not None:
        counters.merge(decomposition.clustering.counters)
    q = _hop_quotient(graph, decomposition)
    value, _ = quotient_diameter(
        q, mode=config.quotient_mode, exact_limit=config.quotient_exact_limit
    )
    return value + 2.0 * decomposition.clustering.radius


@dataclass
class WeightObliviousResult:
    """Outcome of running the unweighted decomposition on weighted data.

    ``estimate`` is still an upper bound on Φ(G) (over-counting only),
    but ``weighted_radius`` — the term that drives it — is unbounded
    relative to Φ(G) in the worst case, unlike the Δ-bounded weighted
    algorithm's radius.
    """

    estimate: float
    weighted_radius: float
    hop_radius: float
    num_clusters: int


def weight_oblivious_diameter(
    graph: CSRGraph,
    tau: Optional[int] = None,
    config: Optional[ClusterConfig] = None,
) -> WeightObliviousResult:
    """Estimate Φ(G) while clustering weight-obliviously (the §1 anti-pattern)."""
    config = config or ClusterConfig()
    if tau is not None:
        config = config.with_(tau=tau)
    decomposition = bfs_cluster(graph, config=config)
    q = _weighted_quotient(graph, decomposition)
    value, _ = quotient_diameter(
        q, mode=config.quotient_mode, exact_limit=config.quotient_exact_limit
    )
    return WeightObliviousResult(
        estimate=value + 2.0 * decomposition.weighted_radius,
        weighted_radius=decomposition.weighted_radius,
        hop_radius=decomposition.clustering.radius,
        num_clusters=decomposition.clustering.num_clusters,
    )
