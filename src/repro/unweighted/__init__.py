"""The unweighted predecessor algorithm (Ceccarello et al., SPAA 2015).

The paper generalizes its earlier *unweighted* decomposition ([CPPU15]):
grow clusters from progressively selected random center batches, adding
**all** nodes adjacent to cluster frontiers in every step (pure BFS — no
Δ cap, because every edge "weighs" one hop).  This package implements that
algorithm both as a baseline in its own right (unweighted diameter
approximation) and to demonstrate the paper's §1 claim that running it
**weight-obliviously** on a weighted graph forfeits the approximation
guarantee: hop-ball clusters can have enormous weighted radii.
"""

from repro.unweighted.decomposition import bfs_cluster
from repro.unweighted.diameter import (
    unweighted_approximate_diameter,
    weight_oblivious_diameter,
)

__all__ = [
    "bfs_cluster",
    "unweighted_approximate_diameter",
    "weight_oblivious_diameter",
]
