"""Offline integrity verification: the ``repro verify`` machinery.

:func:`verify_tree` walks every on-disk artifact derived from one graph
— the binary store, its shard-partition layouts, its checkpoint rounds
— and checks each against its recorded digests, *collecting* failures
instead of stopping at the first one: the CLI's job is a damage report,
not a stack trace.

Two depths mirror the ``REPRO_STORE_VERIFY`` tiers: the default pass
checks structure plus the O(1) digests (store header hash, partition
manifest self-digest, checkpoint manifest shape); ``--deep`` re-hashes
every payload byte — store sections, shard files, sidecars, and
``state.bin`` blobs — exactly what open-time ``full`` verification
would do.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ReproError

__all__ = ["verify_tree"]


def _report(
    artifact, kind: str, ok: bool, detail: str = ""
) -> Dict[str, object]:
    return {
        "artifact": str(artifact),
        "kind": kind,
        "ok": bool(ok),
        "detail": detail,
    }


def _resolve_store_file(path) -> Path:
    """The binary store behind ``path`` (which may be a source graph)."""
    from repro.graph.serialize import is_store

    path = Path(path)
    if path.exists() and is_store(path):
        return path
    from repro.runtime import default_store

    return Path(default_store().store_path(path))


def _verify_store_file(store_file: Path, level: str) -> Dict[str, object]:
    from repro.graph.serialize import verify_store

    try:
        info = verify_store(store_file, level=level)
    except ReproError as exc:
        return _report(store_file, "store", False, str(exc))
    checked = info.get("checked", [])
    detail = (
        f"v{info['version']}, verified {', '.join(checked)}"
        if checked
        else f"v{info['version']}, no digest block (legacy v1)"
    )
    return _report(store_file, "store", True, detail)


def _verify_partitions(store_file: Path, level: str) -> List[Dict[str, object]]:
    from repro.graph.partition import MANIFEST_NAME, verify_partition

    shards_root = Path(str(store_file) + ".shards")
    if not shards_root.is_dir():
        return []
    out = []
    for directory in sorted(shards_root.iterdir()):
        if not (directory / MANIFEST_NAME).is_file():
            continue
        try:
            info = verify_partition(directory, level=level)
        except ReproError as exc:
            out.append(_report(directory, "partition", False, str(exc)))
            continue
        checked = info.get("checked", [])
        out.append(
            _report(
                directory,
                "partition",
                True,
                f"verified {', '.join(checked)}" if checked
                else "structure only (verify level off)",
            )
        )
    return out


def _verify_checkpoints(store_file: Path, deep: bool) -> List[Dict[str, object]]:
    base = os.environ.get("REPRO_CHECKPOINT_DIR")
    ckpt_root = Path(base) if base else Path(str(store_file) + ".ckpt")
    if not ckpt_root.is_dir():
        return []
    out = []
    for run_dir in sorted(d for d in ckpt_root.iterdir() if d.is_dir()):
        if run_dir.name.endswith(".quarantine"):
            continue
        for round_dir in sorted(run_dir.iterdir()):
            if not round_dir.name.startswith("round-"):
                continue
            out.append(_verify_round(round_dir, deep))
    return out


def _verify_round(round_dir: Path, deep: bool) -> Dict[str, object]:
    try:
        with open(round_dir / "manifest.json") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        return _report(round_dir, "checkpoint", False, f"bad manifest: {exc}")
    state = round_dir / "state.bin"
    if not state.is_file():
        return _report(round_dir, "checkpoint", False, "state.bin missing")
    if deep:
        try:
            digest = hashlib.sha256(state.read_bytes()).hexdigest()
        except OSError as exc:
            return _report(
                round_dir, "checkpoint", False, f"unreadable state: {exc}"
            )
        if digest != manifest.get("state_sha256"):
            return _report(
                round_dir, "checkpoint", False, "state digest mismatch"
            )
        return _report(round_dir, "checkpoint", True, "state digest verified")
    return _report(
        round_dir,
        "checkpoint",
        True,
        f"round {manifest.get('round')}, manifest well-formed",
    )


def verify_tree(path, *, deep: bool = False) -> List[Dict[str, object]]:
    """Verify every artifact derived from ``path``; never raises on
    damage — each finding is one report row (``ok`` False on failure).

    ``deep`` re-hashes all payload bytes (the open-time ``full`` tier);
    the default checks structure plus the O(1) digests only.
    """
    level = "full" if deep else "header"
    try:
        store_file = _resolve_store_file(path)
    except FileNotFoundError:
        return [_report(path, "store", False, "graph file not found")]
    reports: List[Dict[str, object]] = []
    if store_file.exists():
        reports.append(_verify_store_file(store_file, level))
    else:
        reports.append(
            _report(
                store_file,
                "store",
                True,
                "no binary store yet (source graph never converted)",
            )
        )
    reports.extend(_verify_partitions(store_file, level))
    reports.extend(_verify_checkpoints(store_file, deep))
    return reports
