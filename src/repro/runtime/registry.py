"""The algorithm registry: one name → one way to run it.

Before this layer existed, every CLI subcommand, benchmark, and example
hand-wired the same orchestration — load the graph, build a
``ClusterConfig``, pick the core vectorized path or an MR engine
backend, run, collect counters.  :class:`AlgorithmRegistry` centralizes
that wiring: an :class:`AlgorithmSpec` declares how an algorithm runs
from a :class:`~repro.runtime.runner.RunContext`, and
:func:`repro.runtime.runner.run` is the single dispatcher every caller
goes through.

The built-in registry covers the whole reproduction surface::

    diameter              CL-DIAM weighted-diameter estimate
    cluster               CLUSTER (Algorithm 1) decomposition
    cluster2              CLUSTER2 (Algorithm 2) decomposition
    sssp                  Δ-stepping single-source shortest paths
    eccentricity          certified per-node eccentricity bounds
    components            per-component diameter estimates
    unweighted-diameter   hop-diameter via the unweighted decomposition

Specs with ``supports_executor=True`` honour ``RunContext.executor``
(``serial``/``vector``/``parallel``/``mmap``/``sharded``) by routing
through the ``mrimpl`` engine drivers; with ``executor=None`` they run
the vectorized :mod:`repro.core` path.  All paths are bit-identical
from a shared seed — the integration tests assert it — so the executor
choice is purely an execution-platform knob (``sharded`` additionally
reads ``ClusterConfig.shards`` for its owner-compute shard count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple

import numpy as np

__all__ = ["AlgorithmSpec", "AlgorithmRegistry", "REGISTRY", "register"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """How to run one named algorithm.

    Attributes
    ----------
    name:
        Registry key (also the CLI name, e.g. ``repro run diameter``).
    summary:
        One-line human description (shown by ``repro algorithms``).
    fn:
        ``fn(ctx) -> RunResult`` — the implementation, taking a
        :class:`~repro.runtime.runner.RunContext`.
    supports_executor:
        Whether ``ctx.executor`` selects an MR-engine backend; specs
        without support reject a non-``None`` executor early instead of
        silently ignoring it.
    supports_checkpoint:
        Whether the spec forwards ``ctx.checkpoint``/``ctx.resume`` to a
        driver with safe-point snapshots (the clustering family).  The
        runner rejects explicit checkpoint arguments on other specs and
        silently skips an env-armed cadence.
    option_names:
        Extra keyword options the algorithm understands (validated by
        the runner so typos fail fast).
    """

    name: str
    summary: str
    fn: Callable
    supports_executor: bool = False
    supports_checkpoint: bool = False
    option_names: Tuple[str, ...] = ()


class AlgorithmRegistry:
    """Name → :class:`AlgorithmSpec` mapping with validation."""

    def __init__(self):
        self._specs: Dict[str, AlgorithmSpec] = {}

    def register(self, spec: AlgorithmSpec) -> AlgorithmSpec:
        if spec.name in self._specs:
            raise ValueError(f"algorithm {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> AlgorithmSpec:
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs))
            raise KeyError(
                f"unknown algorithm {name!r}; registered: {known}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._specs))

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[AlgorithmSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide registry the CLI and benchmarks dispatch through.
REGISTRY = AlgorithmRegistry()


def register(
    name: str,
    summary: str,
    *,
    supports_executor: bool = False,
    supports_checkpoint: bool = False,
    option_names: Tuple[str, ...] = (),
):
    """Decorator registering ``fn`` under ``name`` in :data:`REGISTRY`."""

    def decorate(fn):
        REGISTRY.register(
            AlgorithmSpec(
                name=name,
                summary=summary,
                fn=fn,
                supports_executor=supports_executor,
                supports_checkpoint=supports_checkpoint,
                option_names=option_names,
            )
        )
        return fn

    return decorate


# --------------------------------------------------------------------- #
# Built-in algorithms
# --------------------------------------------------------------------- #


def _decompose(ctx, *, use_cluster2: bool):
    """Run the decomposition on the path ``ctx`` selects.

    The single place that encodes the core-vs-engine dispatch for every
    clustering-based algorithm: ``executor=None`` is the vectorized
    :mod:`repro.core` path, anything else an MR engine built from the
    config.  Both produce identical clusterings from a shared seed.
    """
    config = ctx.config.with_(use_cluster2=use_cluster2)
    if ctx.executor is None:
        from repro.core.cluster import cluster
        from repro.core.cluster2 import cluster2

        decompose = cluster2 if use_cluster2 else cluster
        return decompose(graph=ctx.graph, config=config, counters=ctx.counters)
    from repro.mrimpl.cluster2_mr import mr_cluster2
    from repro.mrimpl.cluster_mr import mr_cluster
    from repro.mrimpl.growing_mr import owned_engine

    decompose = mr_cluster2 if use_cluster2 else mr_cluster
    with owned_engine(
        ctx.graph,
        config.with_(executor=ctx.executor),
        ctx.engine,
        num_workers=ctx.workers,
    ) as engine:
        clustering = decompose(
            ctx.graph,
            config=config,
            engine=engine,
            checkpoint=ctx.checkpoint,
            resume=ctx.resume,
        )
    ctx.counters.merge(clustering.counters)
    return clustering


@register(
    "diameter",
    "CL-DIAM weighted-diameter estimate (quotient diameter + 2R)",
    supports_executor=True,
    supports_checkpoint=True,
    option_names=("exact", "use_cluster2"),
)
def _run_diameter(ctx):
    from repro.runtime.runner import RunResult

    use_cluster2 = bool(ctx.options.get("use_cluster2", ctx.config.use_cluster2))
    if ctx.executor is None:
        from repro.core.diameter import approximate_diameter

        est = approximate_diameter(
            ctx.graph, config=ctx.config.with_(use_cluster2=use_cluster2)
        )
    else:
        from repro.mrimpl.diameter_mr import mr_approximate_diameter

        est = mr_approximate_diameter(
            ctx.graph,
            config=ctx.config.with_(
                executor=ctx.executor, use_cluster2=use_cluster2
            ),
            engine=ctx.engine,
            num_workers=ctx.workers,
            checkpoint=ctx.checkpoint,
            resume=ctx.resume,
        )
    ctx.counters.merge(est.counters)
    metrics = {
        "estimate": est.value,
        "quotient_diameter": est.quotient_diameter,
        "radius": est.radius,
        "clusters": est.num_clusters,
        "quotient_exact": est.quotient_exact,
    }
    if ctx.options.get("exact"):
        from repro.exact import exact_diameter

        exact = exact_diameter(ctx.graph)
        metrics["exact"] = exact
        metrics["true_ratio"] = est.value / exact if exact > 0 else 1.0
    return RunResult(value=est.value, raw=est, metrics=metrics)


def _clustering_result(ctx, *, use_cluster2: bool):
    from repro.runtime.runner import RunResult

    clustering = _decompose(ctx, use_cluster2=use_cluster2)
    return RunResult(
        value=clustering.radius,
        raw=clustering,
        metrics={
            "clusters": clustering.num_clusters,
            "radius": clustering.radius,
            "singletons": clustering.singleton_count,
            "delta_end": clustering.delta_end,
            "tau": clustering.tau,
        },
    )


@register(
    "cluster",
    "CLUSTER (Algorithm 1) decomposition: centers, radius, quotient input",
    supports_executor=True,
    supports_checkpoint=True,
)
def _run_cluster(ctx):
    return _clustering_result(ctx, use_cluster2=False)


@register(
    "cluster2",
    "CLUSTER2 (Algorithm 2) decomposition with the analysed guarantees",
    supports_executor=True,
    supports_checkpoint=True,
)
def _run_cluster2(ctx):
    return _clustering_result(ctx, use_cluster2=True)


@register(
    "sssp",
    "Δ-stepping single-source shortest paths (baseline)",
    option_names=("source", "delta"),
)
def _run_sssp(ctx):
    from repro.baselines.delta_stepping import delta_stepping_sssp
    from repro.runtime.runner import RunResult

    source = int(ctx.options.get("source", 0))
    delta = ctx.options.get("delta", "mean")
    result = delta_stepping_sssp(ctx.graph, source, delta)
    ctx.counters.merge(result.counters)
    finite = result.dist[np.isfinite(result.dist)]
    ecc = float(finite.max()) if len(finite) else 0.0
    return RunResult(
        value=ecc,
        raw=result,
        metrics={
            "source": source,
            "delta": result.delta,
            "reached": int(len(finite)),
            "eccentricity": ecc,
            "buckets": result.num_buckets,
        },
    )


@register(
    "eccentricity",
    "certified per-node eccentricity intervals from one decomposition",
    supports_executor=True,
    supports_checkpoint=True,
)
def _run_eccentricity(ctx):
    from repro.core.eccentricity import eccentricity_bounds
    from repro.runtime.runner import RunResult

    clustering = _decompose(ctx, use_cluster2=False)
    bounds = eccentricity_bounds(ctx.graph, clustering)
    lo, hi = bounds.diameter_bounds()
    return RunResult(
        value=hi,
        raw=bounds,
        metrics={
            "diameter_lower": lo,
            "diameter_upper": hi,
            "clusters": clustering.num_clusters,
        },
    )


@register(
    "components",
    "per-connected-component diameter estimates",
)
def _run_components(ctx):
    from repro.core.components import per_component_diameters
    from repro.runtime.runner import RunResult

    results = per_component_diameters(
        ctx.graph, tau=ctx.config.tau, config=ctx.config,
        counters=ctx.counters,
    )
    # Results are sorted descending by estimate; the global diameter
    # estimate is the max over components (the first entry).
    return RunResult(
        value=results[0].estimate if results else 0.0,
        raw=results,
        metrics={
            "components": len(results),
            "estimate": results[0].estimate if results else 0.0,
            "largest_size": max((r.size for r in results), default=0),
        },
    )


@register(
    "unweighted-diameter",
    "hop-diameter estimate via the unweighted (BFS) decomposition",
)
def _run_unweighted_diameter(ctx):
    from repro.runtime.runner import RunResult
    from repro.unweighted.diameter import unweighted_approximate_diameter

    value = unweighted_approximate_diameter(
        ctx.graph, config=ctx.config, counters=ctx.counters
    )
    return RunResult(value=value, raw=value, metrics={"estimate": value})
