"""Round-level checkpoints for the MR clustering drivers.

The paper's algorithms target MapReduce runtimes whose defining
operational property is surviving worker failure mid-job; this module is
that property for the reproduction.  A :class:`CheckpointPolicy`
(``REPRO_CHECKPOINT_EVERY=<rounds|seconds>``, off by default) arms a
:class:`RunCheckpointer` that atomically snapshots the growing state —
the global ``ClusterState`` arrays, the changed mask, the driver's
stage/Δ cursor, the RNG bit-generator state, and the ``Counters``
snapshot — to ``<dir>/round-<r>/`` with a manifest + sha256.  A killed
driver resumes from the last durable round (``repro run --resume``) and
a killed shard worker is replayed from it by :func:`recovery_loop`; both
paths finish bit-identical (clusterings AND counters) to an
uninterrupted run, because every snapshot is taken at a *safe point*.

Safe points
-----------
Checkpoints are written only at growing-step boundaries where no
candidates are in flight: the start of a stage, the start of each
Δ-growth phase (after a doubling), and the start of each CLUSTER2
iteration.  At those points the drivers guarantee ``pending`` is empty,
the ``changed`` mask is clear, and the last round's emission count is
zero — so the snapshot is just the five state arrays plus scalars, and
it restores onto *any* backend (serial pairs, vector arrays, sharded
workers) without serializing in-flight emission batches.  The policy's
round/second cadence *arms* a save; the write happens at the next safe
point.

Layout
------
``<dir>/round-<r>/state.bin``  — the global arrays (center, dist,
dist_acc, frozen, frozen_iter, changed) as raw concatenated bytes, with
each array's dtype/shape recorded in the manifest;
``<dir>/round-<r>/manifest.json`` — run key, store signature, cursor,
counters snapshot, RNG state, sha256 of ``state.bin``.

``<dir>`` defaults to ``<store>.ckpt/<run-key>/`` next to the graph's
``.rcsr`` store (override: ``REPRO_CHECKPOINT_DIR``); the run key hashes
(algorithm, canonical config) so concurrent runs with different
parameters never collide.  Writes go to a ``tmp-`` sibling directory and
are published with one atomic rename; a reader validates the manifest
and the state digest, skipping partial or stale rounds.  Snapshots are
published *write-behind* on a single background thread so a safe point
pays only the array copy; readers drain the writer before scanning.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import CheckpointError, WorkerFailure
from repro.integrity import (
    preflight_free_space,
    quarantine_artifact,
    sweep_orphan_tmps,
)

__all__ = [
    "CHECKPOINT_EVERY_ENV",
    "CHECKPOINT_DIR_ENV",
    "CKPT_RETAIN_ENV",
    "WORKER_RETRIES_ENV",
    "CheckpointPolicy",
    "RetentionPolicy",
    "RunCheckpointer",
    "checkpoint_dir_for",
    "collect_garbage",
    "latest_metadata",
    "list_checkpoints",
    "recovery_loop",
    "run_key",
]

#: Cadence knob: an integer = every N engine rounds; ``<x>s`` = every x
#: wall-clock seconds.  Unset/empty = checkpointing off.
CHECKPOINT_EVERY_ENV = "REPRO_CHECKPOINT_EVERY"
#: Directory override for checkpoint trees (default: ``<store>.ckpt``).
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"
#: Retention policy for published rounds: ``<count>`` newest rounds,
#: ``<age>[smhd]`` by round mtime, or ``<bytes>[KMG]B`` total budget.
CKPT_RETAIN_ENV = "REPRO_CKPT_RETAIN"
#: Replay attempts after a WorkerFailure before giving up (default 2).
WORKER_RETRIES_ENV = "REPRO_WORKER_RETRIES"

#: Floor on retained rounds: whatever the policy says, the newest 3
#: survive — recovery always has a durable round plus two fallbacks.
_KEEP_ROUNDS = 3

_ARRAY_FIELDS = ("center", "dist", "dist_acc", "frozen", "frozen_iter", "changed")


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to arm a checkpoint: every N rounds, every S seconds, or never."""

    every_rounds: Optional[int] = None
    every_seconds: Optional[float] = None

    @property
    def enabled(self) -> bool:
        return self.every_rounds is not None or self.every_seconds is not None

    @classmethod
    def parse(cls, raw: Optional[str]) -> "CheckpointPolicy":
        """Parse the ``REPRO_CHECKPOINT_EVERY`` syntax.

        ``"5"`` = every 5 rounds, ``"2.5s"`` = every 2.5 seconds,
        ``None``/``""`` = disabled.
        """
        if raw is None:
            return cls()
        raw = str(raw).strip()
        if not raw:
            return cls()
        try:
            if raw.endswith("s"):
                seconds = float(raw[:-1])
                if seconds <= 0:
                    raise ValueError
                return cls(every_seconds=seconds)
            rounds = int(raw)
            if rounds < 1:
                raise ValueError
            return cls(every_rounds=rounds)
        except ValueError:
            raise CheckpointError(
                f"invalid checkpoint cadence {raw!r}: "
                "expected an integer round count or '<seconds>s'"
            ) from None

    @classmethod
    def from_env(cls) -> "CheckpointPolicy":
        return cls.parse(os.environ.get(CHECKPOINT_EVERY_ENV))


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
_BYTE_UNITS = {"kb": 1024, "mb": 1024**2, "gb": 1024**3, "tb": 1024**4}


@dataclass(frozen=True)
class RetentionPolicy:
    """How many published rounds to keep (``REPRO_CKPT_RETAIN``).

    Exactly one of the three axes is set:

    * ``count`` — keep the newest N rounds (``"5"``);
    * ``max_age_s`` — keep rounds whose directory mtime is within the
      window (``"36h"``, ``"90m"``, ``"7d"``);
    * ``max_bytes`` — keep the newest rounds whose cumulative size fits
      the budget (``"500MB"``, ``"2GB"``).

    Whatever the policy, the newest :data:`_KEEP_ROUNDS` rounds are
    never deleted — a recovery replay must always find a durable round
    plus fallbacks, even under an aggressive age/byte budget.
    """

    count: Optional[int] = None
    max_age_s: Optional[float] = None
    max_bytes: Optional[int] = None

    @classmethod
    def parse(cls, raw: Optional[str]) -> "RetentionPolicy":
        if raw is None or not str(raw).strip():
            return cls(count=_KEEP_ROUNDS)
        text = str(raw).strip().lower()
        try:
            for suffix, scale in _BYTE_UNITS.items():
                if text.endswith(suffix):
                    value = float(text[: -len(suffix)])
                    if value <= 0:
                        raise ValueError
                    return cls(max_bytes=int(value * scale))
            if text[-1] in _AGE_UNITS:
                value = float(text[:-1])
                if value <= 0:
                    raise ValueError
                return cls(max_age_s=value * _AGE_UNITS[text[-1]])
            count = int(text)
            if count < 1:
                raise ValueError
            return cls(count=max(count, _KEEP_ROUNDS))
        except (ValueError, IndexError):
            raise CheckpointError(
                f"invalid {CKPT_RETAIN_ENV} value {raw!r}: expected a round "
                "count ('5'), an age ('36h', '90m', '7d'), or a byte budget "
                "('500MB', '2GB')"
            ) from None

    @classmethod
    def from_env(cls) -> "RetentionPolicy":
        return cls.parse(os.environ.get(CKPT_RETAIN_ENV))

    def survivors(self, rounds_info) -> set:
        """Which round numbers to keep, given ``(round, mtime, bytes)`` rows.

        The newest :data:`_KEEP_ROUNDS` always survive; beyond those the
        configured axis decides.
        """
        ordered = sorted(rounds_info, key=lambda row: row[0], reverse=True)
        keep = {row[0] for row in ordered[:_KEEP_ROUNDS]}
        if self.count is not None:
            keep.update(row[0] for row in ordered[: self.count])
            return keep
        if self.max_age_s is not None:
            cutoff = time.time() - self.max_age_s
            keep.update(row[0] for row in ordered if row[1] >= cutoff)
            return keep
        if self.max_bytes is not None:
            total = 0
            for rnd, _, size in ordered:
                total += size
                if total <= self.max_bytes:
                    keep.add(rnd)
                else:
                    break
            return keep
        return keep  # pragma: no cover - one axis is always set


#: Config fields that select an execution platform, not a result.  All
#: backends/tiers are bit-identical, so two configs differing only here
#: share checkpoints — which is what makes cross-backend resume work.
_BACKEND_FIELDS = frozenset(
    {"executor", "shards", "kernel_impl", "emit_threads"}
)


def _canonical_config(config) -> str:
    """Deterministic string form of a ClusterConfig (dataclass).

    Backend-only fields are dropped: a snapshot taken under
    ``executor="sharded"`` must validate (and resume) under ``vector``.
    """
    import dataclasses

    if dataclasses.is_dataclass(config):
        items = dataclasses.asdict(config).items()
    else:  # pragma: no cover - configs are dataclasses today
        items = vars(config).items()
    return repr(sorted((k, v) for k, v in items if k not in _BACKEND_FIELDS))


def run_key(algorithm: str, config) -> str:
    """Short stable id for (algorithm, config) — the checkpoint leaf name.

    Deliberately excludes the executor: snapshots are backend-portable,
    so a run interrupted under ``--executor sharded`` may resume under
    ``vector`` (and the tests do exactly that).
    """
    blob = f"{algorithm}\n{_canonical_config(config)}".encode()
    return f"{algorithm}-{hashlib.sha256(blob).hexdigest()[:12]}"


def checkpoint_dir_for(
    algorithm: str,
    config,
    *,
    store_path: Optional[os.PathLike] = None,
    directory: Optional[os.PathLike] = None,
) -> Optional[Path]:
    """Resolve the checkpoint directory for one (algorithm, config, graph).

    Explicit ``directory`` wins, then ``REPRO_CHECKPOINT_DIR``, then a
    ``<store>.ckpt`` sibling of the graph's on-disk store.  Returns
    ``None`` when no location is derivable (in-memory graph, no
    override) — the caller decides whether that is an error.
    """
    base: Optional[Path] = None
    if directory is not None:
        base = Path(directory)
    elif os.environ.get(CHECKPOINT_DIR_ENV):
        base = Path(os.environ[CHECKPOINT_DIR_ENV])
    elif store_path is not None:
        base = Path(str(store_path) + ".ckpt")
    if base is None:
        return None
    return base / run_key(algorithm, config)


class RunCheckpointer:
    """Writer/reader of one run's checkpoint tree.

    One instance per ``runtime.run`` invocation; the drivers call
    :meth:`maybe_save` at every safe point and :func:`recovery_loop`
    calls :meth:`load_latest` when replaying after a worker failure.
    """

    def __init__(
        self,
        directory: os.PathLike,
        *,
        algorithm: str,
        config,
        signature: Tuple,
        policy: Optional[CheckpointPolicy] = None,
    ):
        self.directory = Path(directory)
        self.algorithm = algorithm
        self.config_key = _canonical_config(config)
        self.signature = list(signature)
        self.policy = policy or CheckpointPolicy()
        self.retention = RetentionPolicy.from_env()
        self._last_save_rounds = 0
        self._last_save_time = time.monotonic()
        #: Round of the snapshot this run resumed from (reporting only).
        self.resumed_round: Optional[int] = None
        #: Rounds saved by this instance (tests / bench accounting).
        self.saved_rounds: list = []
        #: Corrupt rounds this instance moved into quarantine.
        self.quarantined_rounds: list = []
        # Orphaned tmp- dirs from an earlier crash mid-publish; the
        # grace window keeps a concurrently-publishing sibling safe.
        sweep_orphan_tmps(
            self.directory, ("*.tmp*",), dir_patterns=("tmp-*",)
        )
        #: Write-behind state: at most one in-flight publish thread.
        #: ``maybe_save`` hands the (already copied) snapshot to it so
        #: the safe point pays only the array copy, not the bytes + digest
        #: + rename — without this the save cost dominates short rounds.
        self._writer: Optional[threading.Thread] = None
        self._writer_error: Optional[BaseException] = None

    # -- policy ---------------------------------------------------------- #

    def due(self, rounds: int) -> bool:
        """Whether the policy has come due since the last save."""
        policy = self.policy
        if policy.every_rounds is not None:
            return rounds - self._last_save_rounds >= policy.every_rounds
        if policy.every_seconds is not None:
            return (
                time.monotonic() - self._last_save_time >= policy.every_seconds
            )
        return False

    def note_restored(self, rounds: int) -> None:
        """Reset the cadence after a restore (the restored round is durable)."""
        self._last_save_rounds = rounds
        self._last_save_time = time.monotonic()

    # -- writing --------------------------------------------------------- #

    def maybe_save(self, state, engine, rng, cursor: Dict[str, Any]) -> bool:
        """Save a snapshot at a safe point if the policy is due.

        ``state`` is any growing state exposing ``snapshot_arrays()``;
        ``cursor`` is the driver's JSON-able loop position.  Returns
        whether a snapshot was scheduled.

        The snapshot itself (bytes + digest + atomic rename) is published
        *write-behind* on a background thread: ``snapshot_arrays()``
        copies the state at the safe point, so compute continues while
        the previous copy hits disk.  Readers (:meth:`load_latest`)
        drain the writer first, and a publish failure re-raises at the
        next safe point or :meth:`flush`.
        """
        if not self.policy.enabled:
            return False
        rounds = engine.counters.rounds
        if not self.due(rounds):
            return False
        arrays = state.snapshot_arrays()
        kwargs = dict(
            arrays=arrays,
            cursor=cursor,
            counters=engine.counters.snapshot(),
            simulated_time=int(engine.simulated_time),
            rng_state=rng.bit_generator.state if rng is not None else None,
        )
        self.flush()  # one in-flight write at a time; surface old errors
        self._note_saved(rounds)
        self._writer = threading.Thread(
            target=self._publish_quietly,
            args=(int(rounds),),
            kwargs=kwargs,
            name="repro-checkpoint-writer",
        )
        self._writer.start()
        return True

    def flush(self) -> None:
        """Block until the in-flight write-behind snapshot is published.

        Re-raises the writer's exception, if any — checkpoint failures
        are the caller's to see, just delayed by one safe point.
        """
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.join()
        if self._writer_error is not None:
            error, self._writer_error = self._writer_error, None
            raise error

    def _publish_quietly(self, rounds: int, **kwargs) -> None:
        try:
            self._publish(rounds, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - re-raised at flush
            self._writer_error = exc

    def _note_saved(self, rounds: int) -> None:
        self._last_save_rounds = int(rounds)
        self._last_save_time = time.monotonic()
        if int(rounds) not in self.saved_rounds:
            self.saved_rounds.append(int(rounds))

    def save(
        self,
        rounds: int,
        *,
        arrays: Dict[str, np.ndarray],
        cursor: Dict[str, Any],
        counters: Dict[str, Any],
        simulated_time: int,
        rng_state: Optional[dict],
    ) -> Path:
        """Synchronously publish ``round-<rounds>/`` (idempotent per round)."""
        self.flush()
        final, wrote = self._publish(
            rounds,
            arrays=arrays,
            cursor=cursor,
            counters=counters,
            simulated_time=simulated_time,
            rng_state=rng_state,
        )
        if wrote:
            self._note_saved(rounds)
        return final

    def _publish(
        self,
        rounds: int,
        *,
        arrays: Dict[str, np.ndarray],
        cursor: Dict[str, Any],
        counters: Dict[str, Any],
        simulated_time: int,
        rng_state: Optional[dict],
    ) -> Tuple[Path, bool]:
        """Atomically publish ``round-<rounds>/`` (idempotent per round).

        The tmp directory + single ``os.rename`` sequence means a
        mid-write kill leaves at worst a ``tmp-*`` orphan that no reader
        ever considers; a published round directory is always complete.
        """
        final = self.directory / f"round-{rounds}"
        if final.exists():
            # Deterministic replay re-reaches the same safe point with
            # the same state; the existing snapshot is already it.
            return final, False
        self.directory.mkdir(parents=True, exist_ok=True)
        self._checkpoint_fault("pre", rounds)
        tmp = self.directory / f"tmp-{os.getpid()}-{rounds}"
        if tmp.exists():  # pragma: no cover - stale orphan from a crash
            shutil.rmtree(tmp, ignore_errors=True)
        tmp.mkdir()
        try:
            # Raw concatenated array bytes, dtype/shape in the manifest.
            # Chosen over np.savez because the write-behind thread
            # shares the GIL with the compute thread: tobytes + sha256 +
            # a single write are nearly all GIL-releasing C, where the
            # zipfile layer under savez is milliseconds of held-GIL
            # Python per snapshot — measurable on sub-100 ms rounds.
            blocks = [
                np.ascontiguousarray(arrays[k]) for k in _ARRAY_FIELDS
            ]
            payload = b"".join(b.tobytes() for b in blocks)
            digest = hashlib.sha256(payload).hexdigest()
            preflight_free_space(
                self.directory, len(payload) + 4096,
                label=f"checkpoint round-{rounds}",
            )
            with open(tmp / "state.bin", "wb") as fh:
                fh.write(payload)
            manifest = {
                "format": 2,
                "arrays": {
                    k: {"dtype": b.dtype.str, "shape": list(b.shape)}
                    for k, b in zip(_ARRAY_FIELDS, blocks)
                },
                "algorithm": self.algorithm,
                "config_key": self.config_key,
                "signature": self.signature,
                "round": int(rounds),
                "cursor": cursor,
                "counters": counters,
                "simulated_time": int(simulated_time),
                "rng_state": rng_state,
                "state_sha256": digest,
                "meta": {
                    "frontier": int(np.count_nonzero(arrays["changed"])),
                    "uncovered": int(np.count_nonzero(~arrays["frozen"])),
                },
            }
            with open(tmp / "manifest.json", "w") as fh:
                json.dump(manifest, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.rename(tmp, final)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        if self._checkpoint_fault("post", rounds):
            _flip_round_byte(final)
        self._prune()
        return final, True

    def _checkpoint_fault(self, kind: str, rounds: int) -> bool:
        """Consult the fault plan for a scheduled checkpoint fault.

        ``"pre"`` may raise the scheduled ``enospc``/``ioerror`` before
        any byte lands; ``"post"`` reports whether a ``corrupt`` entry
        should flip a byte in the just-published round.
        """
        from repro.mr.faults import get_fault_plan

        plan = get_fault_plan()
        if plan is None:
            return False
        if kind == "pre":
            import errno

            action = plan.io_fault("ckpt", rounds)
            if action == "enospc":
                raise OSError(
                    errno.ENOSPC,
                    f"fault plan: enospc publishing round-{rounds}",
                )
            if action == "ioerror":
                raise OSError(
                    errno.EIO, f"fault plan: ioerror publishing round-{rounds}"
                )
            return False
        return plan.corrupt_fault("ckpt", rounds)

    def _prune(self) -> None:
        removed = collect_garbage(self.directory, self.retention)
        del removed  # accounting lives on the CLI path

    def _round_dirs(self):
        if not self.directory.is_dir():
            return []
        out = []
        for entry in self.directory.iterdir():
            name = entry.name
            if name.startswith("round-"):
                try:
                    out.append(int(name[len("round-"):]))
                except ValueError:
                    continue
        return out

    # -- reading --------------------------------------------------------- #

    def load_latest(self) -> Optional[Dict[str, Any]]:
        """Load the newest valid, non-stale snapshot (or ``None``).

        Partial/corrupt rounds (bad manifest, digest mismatch) and stale
        rounds (store signature or config changed) are skipped — the
        next older round is tried, so one torn write never strands a
        run.  Drains the write-behind thread first so the newest
        scheduled snapshot is on disk before the scan.
        """
        try:
            self.flush()
        except Exception:
            pass  # a failed publish falls back to the older rounds
        for rounds in sorted(self._round_dirs(), reverse=True):
            payload = self._load_round(rounds)
            if payload is not None:
                return payload
        return None

    def _quarantine_round(self, root: Path, rounds: int, detail: str) -> None:
        """Move a corrupt round aside so no later scan re-reads it.

        Stale rounds (config/signature drift) are *not* quarantined —
        they are valid data for a different run.  Only structural damage
        (unreadable manifest, digest/length mismatch) lands here.
        """
        moved = quarantine_artifact(root, reason=detail)
        if moved is not None and int(rounds) not in self.quarantined_rounds:
            self.quarantined_rounds.append(int(rounds))

    def _load_round(self, rounds: int) -> Optional[Dict[str, Any]]:
        try:
            self.flush()
        except Exception:
            pass  # a failed publish falls back to the older rounds
        root = self.directory / f"round-{rounds}"
        try:
            with open(root / "manifest.json") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError) as exc:
            self._quarantine_round(
                root, rounds, f"unreadable manifest: {exc}"
            )
            return None
        if manifest.get("format") != 2:
            return None
        if manifest.get("algorithm") != self.algorithm:
            return None
        if manifest.get("config_key") != self.config_key:
            return None
        if list(manifest.get("signature", ())) != self.signature:
            return None  # stale: the store changed under the checkpoint
        try:
            payload = (root / "state.bin").read_bytes()
            if hashlib.sha256(payload).hexdigest() != manifest.get(
                "state_sha256"
            ):
                self._quarantine_round(root, rounds, "state digest mismatch")
                return None
            arrays = {}
            offset = 0
            for k in _ARRAY_FIELDS:
                spec = manifest["arrays"][k]
                dtype = np.dtype(spec["dtype"])
                count = int(np.prod(spec["shape"], dtype=np.int64))
                nbytes = count * dtype.itemsize
                arrays[k] = (
                    np.frombuffer(payload, dtype=dtype, count=count,
                                  offset=offset)
                    .reshape(spec["shape"])
                    .copy()
                )
                offset += nbytes
            if offset != len(payload):
                self._quarantine_round(root, rounds, "state length mismatch")
                return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self._quarantine_round(root, rounds, f"unreadable state: {exc}")
            return None
        return {
            "round": int(manifest["round"]),
            "arrays": arrays,
            "cursor": manifest["cursor"],
            "counters": manifest["counters"],
            "simulated_time": int(manifest["simulated_time"]),
            "rng_state": manifest.get("rng_state"),
            "meta": manifest.get("meta", {}),
        }


def _flip_round_byte(round_dir: Path) -> None:
    """Flip one byte in the middle of a round's ``state.bin`` (fault plan).

    The deterministic stand-in for silent media corruption: the manifest
    digest no longer matches, so a later ``--resume`` must skip (and
    quarantine) the round instead of restoring garbage state.
    """
    path = Path(round_dir) / "state.bin"
    try:
        size = path.stat().st_size
    except OSError:  # pragma: no cover - round vanished underneath us
        return
    if size == 0:
        return
    offset = size // 2
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes((byte[0] ^ 0xFF,)))


def _round_sizes(run_dir: Path):
    """``(round, mtime, bytes)`` rows for every published round dir."""
    rows = []
    if not run_dir.is_dir():
        return rows
    for entry in run_dir.iterdir():
        if not entry.name.startswith("round-") or not entry.is_dir():
            continue
        try:
            rounds = int(entry.name[len("round-"):])
        except ValueError:
            continue
        size = 0
        try:
            mtime = entry.stat().st_mtime
            for child in entry.iterdir():
                try:
                    size += child.stat().st_size
                except OSError:
                    continue
        except OSError:
            continue
        rows.append((rounds, mtime, size))
    return rows


def list_checkpoints(base_dir: os.PathLike):
    """Inventory a checkpoint tree for ``repro ckpt list``.

    ``base_dir`` may be a ``<store>.ckpt`` root (one subdirectory per
    run key) or a single run directory; either way the result is a list
    of ``{run_key, directory, rounds: [{round, mtime, bytes}]}`` dicts,
    newest round first.
    """
    base = Path(base_dir)
    if not base.is_dir():
        return []
    run_dirs = []
    if any(child.name.startswith("round-") for child in base.iterdir()):
        run_dirs.append(base)
    else:
        run_dirs.extend(sorted(d for d in base.iterdir() if d.is_dir()))
    out = []
    for run_dir in run_dirs:
        rows = sorted(_round_sizes(run_dir), reverse=True)
        if not rows and run_dir is not base:
            continue
        out.append(
            {
                "run_key": run_dir.name,
                "directory": str(run_dir),
                "rounds": [
                    {"round": r, "mtime": m, "bytes": b} for r, m, b in rows
                ],
            }
        )
    return out


def collect_garbage(
    run_dir: os.PathLike,
    policy: Optional[RetentionPolicy] = None,
    *,
    dry_run: bool = False,
):
    """Delete rounds the retention policy no longer keeps.

    Returns the list of round numbers removed (or, under ``dry_run``,
    the rounds that *would* be removed).  The newest ``_KEEP_ROUNDS``
    always survive regardless of policy.
    """
    run_dir = Path(run_dir)
    policy = policy or RetentionPolicy.from_env()
    rows = _round_sizes(run_dir)
    keep = policy.survivors(rows)
    doomed = sorted(r for r, _, _ in rows if r not in keep)
    if not dry_run:
        for rounds in doomed:
            shutil.rmtree(run_dir / f"round-{rounds}", ignore_errors=True)
    return doomed


def latest_metadata(directory: os.PathLike) -> Optional[Dict[str, Any]]:
    """Manifest metadata of the newest published round under ``directory``.

    Used by the serve degradation path: a deadline-expired query reports
    the round reached and frontier size of the in-progress run's last
    durable checkpoint instead of failing with a 500.  Only the manifest
    is read (no array load, no digest check — metadata, not state).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best = None
    for entry in directory.iterdir():
        if not entry.name.startswith("round-"):
            continue
        try:
            rounds = int(entry.name[len("round-"):])
        except ValueError:
            continue
        if best is not None and rounds <= best:
            continue
        try:
            with open(entry / "manifest.json") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            continue
        best = rounds
        meta = dict(manifest.get("meta", {}))
        meta["round"] = int(manifest.get("round", rounds))
        result = meta
    return result if best is not None else None


# --------------------------------------------------------------------- #
# Recovery: replay after a WorkerFailure
# --------------------------------------------------------------------- #


def worker_retries() -> int:
    try:
        return max(0, int(os.environ.get(WORKER_RETRIES_ENV, "2")))
    except ValueError:
        return 2


def recovery_loop(
    engine,
    checkpointer: Optional[RunCheckpointer],
    resume: Optional[Dict[str, Any]],
    attempt: Callable[[Optional[Dict[str, Any]]], Any],
):
    """Run ``attempt(payload)``, replaying on :class:`WorkerFailure`.

    The supervision state machine, driver side: a worker death (kill,
    hang past deadline, broken pipe) surfaces as ``WorkerFailure``; the
    loop tears down the executor's pool (the whole pool — single-worker
    rehydration cannot restore cross-shard consistency), sleeps an
    exponential backoff, reloads the last durable checkpoint (or falls
    back to a round-0 replay with the counters reset to this call's
    baseline), and re-enters the driver.  Determinism makes the replay
    bit-identical, checkpointing on or off.  ``REPRO_WORKER_RETRIES``
    bounds the attempts.
    """
    from repro.mr.metrics import Counters

    baseline = engine.counters.snapshot()
    baseline_time = int(engine.simulated_time)
    retries = worker_retries()
    attempts = 0
    delay = 0.05
    payload = resume
    while True:
        try:
            result = attempt(payload)
            if checkpointer is not None:
                # Drain the write-behind thread: the run's checkpoints
                # are durable by the time the driver returns.
                checkpointer.flush()
            return result
        except WorkerFailure:
            attempts += 1
            if attempts > retries:
                raise
            executor = getattr(engine, "executor", None)
            if hasattr(executor, "close"):
                executor.close()
            time.sleep(delay)
            delay = min(delay * 2.0, 2.0)
            payload = (
                checkpointer.load_latest() if checkpointer is not None else None
            )
            if payload is None:
                # Round-0 replay: back to this invocation's entry state.
                Counters.restore_into(engine.counters, baseline)
                engine.simulated_time = baseline_time


def restore_run_state(state, engine, rng, payload: Dict[str, Any]) -> None:
    """Rehydrate a growing state + engine counters + RNG from a payload.

    Shared by the drivers' resume paths: the arrays go to the backend's
    ``restore_arrays``, the counters snapshot replaces the engine's
    counts, and the RNG bit-generator state is reinstalled so the center
    sampling stream continues exactly where the snapshot left it.
    """
    from repro.mr.metrics import Counters

    state.restore_arrays(payload["arrays"])
    Counters.restore_into(engine.counters, payload["counters"])
    engine.simulated_time = int(payload["simulated_time"])
    if rng is not None and payload.get("rng_state") is not None:
        rng.bit_generator.state = _rng_state_from_json(payload["rng_state"])


def _rng_state_from_json(state):
    """Undo JSON's stringification quirks in a bit-generator state dict."""
    if isinstance(state, dict):
        return {k: _rng_state_from_json(v) for k, v in state.items()}
    if isinstance(state, list):  # pragma: no cover - SFC64-style states
        return np.array(state, dtype=np.uint64)
    return state
