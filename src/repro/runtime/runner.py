"""The unified runtime entry point: ``run(name, graph_or_path, ...)``.

One dispatcher replaces the orchestration that used to be duplicated in
every CLI subcommand, benchmark, and example:

1. resolve the graph — a :class:`~repro.graph.csr.CSRGraph` passes
   through, a path goes via the :class:`~repro.runtime.store.GraphStore`
   (memory-mapped, converted once, LRU-cached);
2. build the :class:`~repro.core.config.ClusterConfig` from the common
   knobs (``seed``, ``tau``) unless a full config is supplied;
3. validate executor/worker/option arguments against the algorithm's
   :class:`~repro.runtime.registry.AlgorithmSpec`;
4. run the spec on a :class:`RunContext` and return a :class:`RunResult`
   carrying the headline value, the raw result object, shared
   :class:`~repro.mr.metrics.Counters`, and wall-clock time.

Example
-------
>>> from repro.runtime import run
>>> from repro.generators import mesh
>>> result = run("diameter", mesh(16, seed=1), tau=4, seed=1)
>>> result.value >= 0
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.config import ClusterConfig
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.mr.metrics import Counters
from repro.runtime.registry import REGISTRY, AlgorithmRegistry
from repro.runtime.store import GraphStore, default_store

__all__ = ["RunContext", "RunResult", "run"]

GraphLike = Union[CSRGraph, str, Path]

#: Options every algorithm accepts (handled by the runner itself).
_COMMON_OPTIONS = frozenset()


@dataclass
class RunContext:
    """Everything an :class:`AlgorithmSpec` needs to execute.

    One context = one run: the ``counters`` accumulate across the
    stages an algorithm performs (decomposition + quotient + finish),
    and ``options`` carries the spec-specific extras (``source`` for
    sssp, ``exact`` for diameter, ...).
    """

    graph: CSRGraph
    config: ClusterConfig
    executor: Optional[str] = None
    workers: Optional[int] = None
    options: Mapping[str, Any] = field(default_factory=dict)
    counters: Counters = field(default_factory=Counters)
    #: Caller-owned MR engine to reuse (``repro serve`` keeps one warm
    #: per resident graph so scratch buffers and pooled executors
    #: survive across queries).  ``None`` builds a per-run engine whose
    #: executor is closed when the run ends.
    engine: Optional[Any] = None
    #: :class:`~repro.runtime.checkpoint.RunCheckpointer` armed for this
    #: run (``None`` = checkpointing off).  Built by :func:`run` from
    #: ``checkpoint_every``/``REPRO_CHECKPOINT_EVERY``; specs forward it
    #: to the MR drivers, which snapshot at their safe points.
    checkpoint: Optional[Any] = None
    #: Checkpoint payload to resume from (``run(resume=True)`` loads the
    #: newest valid round), or ``None`` to start at round 0.
    resume: Optional[Dict[str, Any]] = None

    @property
    def seed(self) -> Optional[int]:
        return self.config.seed


@dataclass
class RunResult:
    """What every registry algorithm returns.

    ``value`` is the headline scalar (estimate, radius, eccentricity);
    ``raw`` the full result object (``DiameterEstimate``, ``Clustering``,
    ...); ``metrics`` an ordered, JSON-friendly summary.  The runner
    fills in ``algorithm``, ``counters``, ``executor``/``workers`` and
    ``elapsed`` after the spec returns.
    """

    value: float
    raw: Any
    metrics: Dict[str, Any] = field(default_factory=dict)
    algorithm: str = ""
    counters: Counters = field(default_factory=Counters)
    executor: Optional[str] = None
    workers: Optional[int] = None
    elapsed: float = 0.0
    graph: Optional[CSRGraph] = None

    @property
    def timings(self) -> Dict[str, float]:
        """Per-phase wall-clock seconds (emit / shuffle / reduce / apply).

        Accumulated by the growing-step pipeline across every round of
        the run; phases a backend never recorded read 0.0.  Kept out of
        :meth:`snapshot` — snapshots are compared bit-for-bit across
        backends, wall-clock never is.
        """
        return self.counters.timing_snapshot()

    @property
    def kernel_impl(self) -> Optional[str]:
        """Resolved kernel tier of the run (``"py"`` or ``"native"``)."""
        impl = self.counters.impl.get("kernel_impl")
        return str(impl) if impl is not None else None

    @property
    def emit_threads(self) -> Optional[int]:
        """Resolved emit thread count of the run (native tier)."""
        threads = self.counters.impl.get("emit_threads")
        return int(threads) if threads is not None else None

    def snapshot(self) -> Dict[str, Any]:
        """Flat dict view: metrics + counters + run metadata."""
        return {
            "algorithm": self.algorithm,
            "value": self.value,
            **self.metrics,
            **self.counters.snapshot(),
            "executor": self.executor or "core",
            "elapsed_s": self.elapsed,
            **self.counters.impl_snapshot(),
        }


def _resolve_graph(graph: GraphLike, store: Optional[GraphStore]) -> CSRGraph:
    if isinstance(graph, CSRGraph):
        return graph
    if store is None:  # NB: an empty GraphStore is falsy (len == 0)
        store = default_store()
    return store.get(graph)


def _resolve_config(
    config: Optional[ClusterConfig],
    seed: Optional[int],
    tau: Optional[int],
    shards: Optional[int] = None,
    kernel_impl: Optional[str] = None,
    emit_threads: Optional[int] = None,
) -> ClusterConfig:
    if config is None:
        # The CLI's historical defaults: practical stage threshold, the
        # given seed.  Callers needing other knobs pass a full config.
        config = ClusterConfig(seed=0, stage_threshold_factor=1.0)
    if seed is not None:
        config = config.with_(seed=seed)
    if tau is not None:
        config = config.with_(tau=tau)
    if shards is not None:
        config = config.with_(shards=shards)
    if kernel_impl is not None:
        config = config.with_(kernel_impl=kernel_impl)
    if emit_threads is not None:
        config = config.with_(emit_threads=emit_threads)
    return config


def run(
    name: str,
    graph: GraphLike,
    *,
    config: Optional[ClusterConfig] = None,
    seed: Optional[int] = None,
    tau: Optional[int] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    kernel_impl: Optional[str] = None,
    emit_threads: Optional[int] = None,
    engine: Optional[Any] = None,
    checkpoint_every: Optional[str] = None,
    resume: bool = False,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    store: Optional[GraphStore] = None,
    registry: Optional[AlgorithmRegistry] = None,
    **options: Any,
) -> RunResult:
    """Run registered algorithm ``name`` on ``graph`` and return the result.

    Parameters
    ----------
    name:
        A registry key (``repro algorithms`` lists them).
    graph:
        A :class:`CSRGraph`, or a path to any supported graph file —
        paths are opened through the :class:`GraphStore` (memory-mapped,
        converted once, cached), so repeated runs start in milliseconds.
    config, seed, tau:
        ``config`` wins when given; otherwise a CLI-equivalent default
        config is built and ``seed``/``tau`` applied on top.
    executor, workers:
        MR-engine backend selection for specs that support it
        (``serial``/``vector``/``parallel``/``mmap``/``sharded``);
        ``None`` runs the vectorized core path.  Specs without executor
        support reject a non-``None`` value.
    shards:
        Shard count for ``executor="sharded"`` (default: ``workers``,
        falling back to the CPU count).  Rejected with any other
        executor.
    kernel_impl, emit_threads:
        Kernel-tier overrides applied on top of the config (see
        :class:`~repro.core.config.ClusterConfig`): ``"py"``/``"native"``
        /``"auto"`` tier and the native emit thread count.  The resolved
        values are stamped on ``result.counters.impl``.
    engine:
        A caller-owned :class:`~repro.mr.engine.MREngine` for the spec
        to reuse instead of building (and closing) one per run.  The
        engine must have been built for *this* graph and executor kind;
        its per-run counters are reset before the spec executes, but its
        scratch buffers, growing state, and pooled executor stay warm —
        this is how ``repro serve`` amortizes engine start-up across
        queries.  Requires a non-``None`` ``executor``.
    checkpoint_every, resume, checkpoint_dir:
        Fault tolerance for specs with ``supports_checkpoint``:
        ``checkpoint_every`` is the :class:`CheckpointPolicy` cadence
        (``"5"`` rounds / ``"2.5s"``; default from
        ``REPRO_CHECKPOINT_EVERY``), ``resume=True`` restarts from the
        newest valid snapshot (fresh run when none exists), and
        ``checkpoint_dir`` overrides the ``<store>.ckpt`` default
        location.  Explicit values require an MR ``executor`` and a
        checkpoint-capable spec; an env-armed cadence on other runs is
        silently ignored.  The resolved resume round and saved rounds
        are stamped on ``result.counters.impl``.
    store, registry:
        Override the process-wide defaults (mostly for tests).
    **options:
        Spec-specific extras, validated against the spec's
        ``option_names``.

    Raises
    ------
    KeyError
        Unknown algorithm name.
    ConfigurationError
        Executor passed to a spec that does not support it, an unknown
        option, or an invalid worker count.
    """
    spec = (registry or REGISTRY).get(name)
    if executor is not None and not spec.supports_executor:
        raise ConfigurationError(
            f"algorithm {name!r} does not support --executor"
        )
    if workers is not None and workers < 1:
        raise ConfigurationError("workers must be >= 1")
    if workers is not None and executor is None:
        raise ConfigurationError("workers requires an executor")
    if engine is not None and executor is None:
        raise ConfigurationError("engine requires an executor")
    if shards is not None and executor != "sharded":
        raise ConfigurationError("shards requires executor='sharded'")
    if shards is not None and shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if executor == "sharded":
        # The owner-compute backend's machine count is its shard count.
        # Explicit kwargs win; a caller-supplied config's shards is
        # preserved (shards stays None so _resolve_config keeps it).
        import os

        if workers is not None and shards is not None and workers != shards:
            raise ConfigurationError(
                "executor='sharded' has workers == shards by definition; "
                f"got workers={workers}, shards={shards}"
            )
        if shards is None and workers is not None:
            shards = workers
        workers = (
            shards
            or (config.shards if config is not None else None)
            or os.cpu_count()
            or 1
        )
    elif executor is not None and workers is None:
        # Resolve the engine default here so RunResult.workers reports
        # the count the run actually used (pool backends: CPU count).
        from repro.mr.executor import POOL_EXECUTOR_NAMES

        if executor in POOL_EXECUTOR_NAMES:
            import os

            workers = os.cpu_count() or 1
        else:
            workers = 1
    unknown = set(options) - set(spec.option_names) - _COMMON_OPTIONS
    if unknown:
        raise ConfigurationError(
            f"algorithm {name!r} does not understand option(s): "
            + ", ".join(sorted(unknown))
        )

    if executor == "sharded" and not isinstance(graph, CSRGraph):
        # Partition through the GraphStore so the shard directories are
        # written (and trimmed) under the cache's byte budget; the
        # executor then finds a fresh manifest and reuses it.  Resolve
        # the partitioner the same way the executor will, so the two
        # agree on the cache leaf.
        import os

        from repro.mr.sharded import PARTITIONER_ENV

        (store if store is not None else default_store()).get_partitioned(
            graph, workers, partitioner=os.environ.get(PARTITIONER_ENV) or "lp"
        )

    if engine is not None:
        # A reused engine accumulates counters/simulated-time across
        # runs; each run must start from zero so the RunResult's
        # counters stay bit-comparable with a fresh-engine run.  Every
        # component reads ``engine.counters`` live, so swapping the
        # object is safe.
        engine.counters = Counters()
        engine.simulated_time = 0

    resolved_config = _resolve_config(
        config, seed, tau, shards, kernel_impl, emit_threads
    )

    explicit_ckpt = (
        checkpoint_every is not None or resume or checkpoint_dir is not None
    )
    if explicit_ckpt and not spec.supports_checkpoint:
        raise ConfigurationError(
            f"algorithm {name!r} does not support checkpointing"
        )
    if explicit_ckpt and executor is None:
        raise ConfigurationError(
            "checkpointing runs on the MR drivers; pass an executor"
        )
    checkpointer = None
    resume_payload = None
    if spec.supports_checkpoint and executor is not None:
        from repro.runtime.checkpoint import (
            CheckpointPolicy,
            RunCheckpointer,
            checkpoint_dir_for,
        )

        policy = (
            CheckpointPolicy.parse(str(checkpoint_every))
            if checkpoint_every is not None
            else CheckpointPolicy.from_env()
        )
        if policy.enabled or resume:
            if isinstance(graph, CSRGraph):
                signature = ("memory", graph.num_nodes, graph.num_edges)
                store_path = None
            else:
                signature = (
                    store if store is not None else default_store()
                ).signature(graph)
                store_path = signature[0]
            ckpt_dir = checkpoint_dir_for(
                name,
                resolved_config,
                store_path=store_path,
                directory=checkpoint_dir,
            )
            if ckpt_dir is None:
                if explicit_ckpt:
                    raise ConfigurationError(
                        "no checkpoint directory derivable for an "
                        "in-memory graph; pass checkpoint_dir or set "
                        "REPRO_CHECKPOINT_DIR"
                    )
                # Env-armed cadence with nowhere to write: skip.
            else:
                checkpointer = RunCheckpointer(
                    ckpt_dir,
                    algorithm=name,
                    config=resolved_config,
                    signature=signature,
                    policy=policy,
                )
                if resume:
                    resume_payload = checkpointer.load_latest()

    ctx = RunContext(
        graph=_resolve_graph(graph, store),
        config=resolved_config,
        executor=executor,
        workers=workers,
        options=dict(options),
        engine=engine,
        checkpoint=checkpointer,
        resume=resume_payload,
    )
    from repro.mr import native

    start = time.perf_counter()
    # The config's kernel tier / thread count apply for the whole run
    # (environment-scoped so pool workers fork with the same setting);
    # the resolved values are stamped on the counters for reporting —
    # never into the snapshot, which stays tier-invariant.
    with native.impl_overrides(ctx.config.kernel_impl, ctx.config.emit_threads):
        result = spec.fn(ctx)
        ctx.counters.impl.update(native.resolved_info())
    from repro.integrity import verify_level

    ctx.counters.impl["store_verify"] = verify_level()
    if checkpointer is not None:
        ctx.counters.impl["checkpoint_rounds"] = list(checkpointer.saved_rounds)
        if checkpointer.resumed_round is not None:
            ctx.counters.impl["resume_round"] = int(checkpointer.resumed_round)
    result.elapsed = time.perf_counter() - start
    result.algorithm = name
    result.counters = ctx.counters
    result.executor = executor
    result.workers = workers
    result.graph = ctx.graph
    return result
