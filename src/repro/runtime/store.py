"""GraphStore: load any graph once, memory-map it everywhere after.

The paper sizes everything around memory budgets (M_T/M_L, τ chosen so
the quotient graph fits local memory); the harness around the kernels
should honour the same discipline.  Re-parsing a DIMACS file costs
seconds per invocation and hands every process a private copy of the
CSR arrays.  :class:`GraphStore` replaces that with a cache of
memory-mapped binary containers (see :mod:`repro.graph.serialize` for
the on-disk layout):

* ``store.get(path)`` on a text graph (``.gr``/METIS/edge-list/npz)
  converts it **once** into a ``.rcsr`` file under the cache directory,
  then memory-maps it; subsequent calls — from this process, another
  process, or a later CLI invocation — open in O(1) and share the same
  page-cache bytes;
* ``store.get(path)`` on a ``.rcsr`` file memory-maps it directly;
* an in-process LRU keeps the most recent :class:`CSRGraph` handles
  alive so repeated runs in one session don't even reopen the file.

Cache entries are keyed by the source's resolved path *and* its
(mtime, size) signature, so editing a text graph invalidates its
converted store automatically; stale conversions for the same source
are removed when a fresh one is written.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import CorruptArtifact, GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.serialize import STORE_SUFFIX, is_store, write_store
from repro.integrity import quarantine_artifact, sweep_orphan_tmps

__all__ = ["GraphStore", "default_store", "get_graph"]

PathLike = Union[str, Path]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_STORE_DIR"

#: Environment variable overriding the on-disk cache budget (bytes).
MAX_BYTES_ENV = "REPRO_STORE_MAX_BYTES"


def _default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "graphstore"


class GraphStore:
    """A cache of memory-mapped graphs with transparent conversion.

    Parameters
    ----------
    cache_dir:
        Directory for converted ``.rcsr`` files (created on demand).
        Defaults to ``$REPRO_STORE_DIR`` or ``~/.cache/repro/graphstore``.
    capacity:
        Number of open graphs the in-process LRU retains.  Evicting a
        handle only drops this cache's reference — existing
        :class:`CSRGraph` objects stay valid.
    max_cache_bytes:
        On-disk budget for the conversion cache.  After each conversion
        the oldest cache files are removed until the directory fits the
        budget (the file just written is kept regardless).  Defaults to
        ``$REPRO_STORE_MAX_BYTES`` or 16 GiB; ``None`` disables
        trimming.  Only files this class created (``*.rcsr`` inside
        ``cache_dir``) are ever deleted.
    """

    def __init__(
        self,
        cache_dir: Optional[PathLike] = None,
        capacity: int = 8,
        max_cache_bytes: Optional[int] = -1,
    ):
        if capacity < 1:
            raise ValueError("GraphStore capacity must be >= 1")
        self.cache_dir = (
            Path(cache_dir) if cache_dir is not None else _default_cache_dir()
        )
        if max_cache_bytes == -1:
            max_cache_bytes = int(
                os.environ.get(MAX_BYTES_ENV, 16 * 1024**3)
            )
        self.max_cache_bytes = max_cache_bytes
        self.capacity = capacity
        self._lru: "OrderedDict[tuple, CSRGraph]" = OrderedDict()
        #: key → number of in-flight pins; pinned entries are never
        #: evicted, so a long query's graph keeps its identity (and the
        #: engine state cached against it) even under eviction pressure.
        self._pins: Dict[tuple, int] = {}
        #: get/pin/clear run from server worker threads concurrently;
        #: the LRU bookkeeping is guarded by one reentrant lock (the
        #: conversion itself happens outside the lock — it is keyed by
        #: signature, so a duplicate conversion is wasted work, not a
        #: correctness problem: write_store is atomic).
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.conversions = 0
        #: Corrupt stores moved into quarantine / rebuilt from source.
        self.quarantined = 0
        self.rebuilds = 0
        #: Directories already swept for orphaned ``*.tmp`` debris this
        #: process; each store directory pays the sweep glob once.
        self._swept: set = set()

    # ------------------------------------------------------------------ #

    def _resolved_store(self, path: PathLike) -> Path:
        """``store_path(path)``, converting the source if needed."""
        store_file = self.store_path(path)
        if not store_file.exists():
            self._convert(Path(path), store_file)
        return store_file

    def signature(self, path: PathLike) -> Tuple[str, int, int]:
        """``path``'s store identity: (store file, mtime_ns, size).

        This is exactly the key the in-process LRU uses, so two calls
        return equal signatures iff :meth:`get` would return the same
        cached graph.  Mutating (rewriting) the store file changes the
        signature — result caches keyed by it invalidate automatically.
        """
        store_file = self._resolved_store(path)
        stat = store_file.stat()
        return (str(store_file), stat.st_mtime_ns, stat.st_size)

    def get(self, path: PathLike) -> CSRGraph:
        """Return ``path``'s graph, memory-mapped, converting if needed.

        ``path`` may be a ``.rcsr`` store (opened directly), a text
        graph (converted once, then opened from the cache directory), or
        the legacy ``.npz`` dump (likewise converted).
        """
        return self._lookup(path)[1]

    def _lookup(self, path: PathLike) -> Tuple[tuple, CSRGraph]:
        store_file = self._resolved_store(path)
        self._sweep_dir(store_file.parent)
        for attempt in (0, 1):
            stat = store_file.stat()
            key = (str(store_file), stat.st_mtime_ns, stat.st_size)
            with self._lock:
                cached = self._lru.get(key)
                if cached is not None:
                    self._lru.move_to_end(key)
                    self.hits += 1
                    return key, cached
            # Mapping the file happens outside the lock (it touches the
            # filesystem); a racing thread may map the same store twice,
            # in which case the second mapping wins the slot — both
            # views are read-only over the same bytes.
            try:
                graph = CSRGraph.open_mmap(store_file)
            except CorruptArtifact as exc:
                if attempt == 0 and self._heal(Path(path), store_file, exc):
                    continue  # rebuilt from source: reopen under new key
                raise
            with self._lock:
                self.misses += 1
                self._lru[key] = graph
                self._trim_lru()
            return key, graph
        raise AssertionError("unreachable")  # pragma: no cover

    def _sweep_dir(self, directory: Path) -> None:
        """Once per directory: clear orphaned store temp files.

        Interrupted ``write_store`` calls leave mkstemp files named
        ``<store>.rcsr.tmpXXXXXX``; the mtime grace window inside
        :func:`sweep_orphan_tmps` keeps a concurrent writer's live temp
        safe.
        """
        key = str(directory)
        with self._lock:
            if key in self._swept:
                return
            self._swept.add(key)
        sweep_orphan_tmps(directory, (f"*{STORE_SUFFIX}.tmp*",))

    def _heal(self, source: Path, store_file: Path, exc: CorruptArtifact) -> bool:
        """Quarantine a corrupt store; rebuild it when the source remains.

        Returns True when the store was rebuilt (caller retries the
        open).  A store that *is* the user's source file cannot be
        rebuilt — it is quarantined and the error re-raised with the
        quarantine location attached, so nothing downstream ever
        computes on damaged bytes.
        """
        quarantined = quarantine_artifact(store_file, reason=str(exc))
        with self._lock:
            self.quarantined += 1
            # Any LRU entries for the damaged file are stale now.
            for key in [k for k in self._lru if k[0] == str(store_file)]:
                if not self._pins.get(key):
                    del self._lru[key]
        rebuildable = (
            store_file != source
            and source.exists()
            and not is_store(source)
        )
        if not rebuildable:
            raise CorruptArtifact(
                store_file,
                kind=exc.kind,
                detail=exc.detail,
                quarantined=quarantined,
            ) from exc
        self._convert(source, store_file)
        with self._lock:
            self.rebuilds += 1
        return True

    def _trim_lru(self) -> None:
        """Evict oldest *unpinned* entries down to capacity (lock held)."""
        if len(self._lru) <= self.capacity:
            return
        for key in list(self._lru):
            if len(self._lru) <= self.capacity:
                break
            if self._pins.get(key):
                continue
            del self._lru[key]

    @contextmanager
    def pin(self, path: PathLike) -> Iterator[CSRGraph]:
        """Context manager yielding ``path``'s graph, pinned in the LRU.

        While pinned, the entry cannot be evicted: a concurrent
        ``get(path)`` returns the *same* :class:`CSRGraph` object, so
        state keyed by graph identity (warm engine scratch, resident
        shard workers) survives any amount of cache pressure from other
        graphs.  Pins nest; the entry becomes evictable again when the
        last pin exits (the LRU is re-trimmed at that point).
        """
        key, graph = self._lookup(path)
        with self._lock:
            self._pins[key] = self._pins.get(key, 0) + 1
        try:
            yield graph
        finally:
            with self._lock:
                remaining = self._pins.get(key, 1) - 1
                if remaining <= 0:
                    self._pins.pop(key, None)
                else:
                    self._pins[key] = remaining
                self._trim_lru()

    def store_path(self, path: PathLike) -> Path:
        """The ``.rcsr`` file ``get(path)`` will open (may not exist yet).

        A store file is its own store path; any other source maps into
        the cache directory under a name derived from its resolved path
        and (mtime, size) signature.
        """
        path = Path(path)
        if path.suffix == STORE_SUFFIX or (path.exists() and is_store(path)):
            return path
        if not path.exists():
            raise FileNotFoundError(f"graph file not found: {path}")
        stat = path.stat()
        return self.cache_dir / (
            f"{path.name}-{self._digest(path)}-"
            f"{stat.st_mtime_ns}-{stat.st_size}{STORE_SUFFIX}"
        )

    @staticmethod
    def _digest(path: Path) -> str:
        """Stable identity of a source file's resolved path."""
        return hashlib.sha1(str(path.resolve()).encode()).hexdigest()[:16]

    def _convert(self, source: Path, store_file: Path) -> None:
        """Parse ``source`` and write its store file (one-time cost).

        Conversions for an earlier version of the same source (same
        path digest, different signature) are deleted — they can never
        be opened again.
        """
        import glob as globmod

        from repro.graph.io import read_auto

        if source.suffix == STORE_SUFFIX and not source.exists():
            raise FileNotFoundError(f"graph store not found: {source}")
        graph = read_auto(source)
        store_file.parent.mkdir(parents=True, exist_ok=True)
        # The source name may contain glob metacharacters ("data[v2].gr");
        # escape the fixed prefix and wildcard only the signature part.
        prefix = globmod.escape(f"{source.name}-{self._digest(source)}-")
        for stale_name in globmod.glob(
            str(store_file.parent / (prefix + "*" + STORE_SUFFIX))
        ):
            try:
                Path(stale_name).unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            # A stale conversion's shard partition can never be opened
            # again either (it is keyed to the deleted store file).
            self._remove_shards(Path(stale_name))
        write_store(graph, store_file)
        self.conversions += 1
        self._trim_disk(keep=store_file)

    @staticmethod
    def _shards_root(store_file: Path) -> Path:
        """The partition root (``<store>.shards/``) of a store file."""
        from repro.graph.partition import SHARDS_DIR_SUFFIX

        return store_file.parent / (store_file.name + SHARDS_DIR_SUFFIX)

    @classmethod
    def _remove_shards(cls, store_file: Path) -> None:
        """Delete a store file's shard partitions (missing-ok)."""
        import shutil

        shutil.rmtree(cls._shards_root(store_file), ignore_errors=True)

    @classmethod
    def _shards_dir_size(cls, store_file: Path) -> int:
        """Bytes of a cached store's shard partitions (0 when absent)."""
        root = cls._shards_root(store_file)
        if not root.is_dir():
            return 0
        return sum(
            p.stat().st_size for p in root.rglob("*") if p.is_file()
        )

    def _trim_disk(self, keep: Path) -> None:
        """Evict oldest conversions until the cache fits its byte budget.

        A store's shard partitions (``<store>.shards/``) count toward
        the budget and are evicted with it.  ``keep`` (the conversion
        just written) is never evicted, so a single graph larger than
        the budget still works.
        """
        if self.max_cache_bytes is None:
            return
        entries = [
            (
                p.stat().st_mtime_ns,
                p.stat().st_size + self._shards_dir_size(p),
                p,
            )
            for p in self.cache_dir.glob("*" + STORE_SUFFIX)
            if p != keep and p.is_file()
        ]
        total = (
            sum(size for _, size, _ in entries)
            + keep.stat().st_size
            + self._shards_dir_size(keep)
        )
        for _, size, victim in sorted(entries):
            if total <= self.max_cache_bytes:
                break
            try:
                victim.unlink()
                total -= size
            except OSError:  # pragma: no cover - concurrent removal
                continue
            self._remove_shards(victim)

    def ensure_reverse(self, path: PathLike) -> CSRGraph:
        """Return ``path``'s graph with its reverse-CSR section attached.

        Resolves ``path`` through the cache as :meth:`get` does, then
        lazily appends the ``rsrc`` section (the arc→row map pull-mode
        growing steps gather by — see :mod:`repro.graph.serialize`) to
        the store file if it is missing.  The rewrite is atomic and
        signature-keyed like every other store mutation, so concurrent
        readers keep their old mapping and the in-process LRU refreshes
        itself.  Falls back to the unmodified graph (whose reverse map
        is then computed in memory on first use) when the store file is
        not writable — read-only datasets stay read-only.
        """
        from repro.graph.serialize import ensure_reverse_section, read_store_header

        store_file = self.store_path(path)
        if not store_file.exists():
            self._convert(Path(path), store_file)
        # Rewriting replaces the file (and resets its permissions), so a
        # store the user marked read-only is left untouched even though
        # the directory rename would technically succeed.  The mode bits
        # are checked besides os.access because a privileged process can
        # write files whose owner deliberately cleared the write bits.
        import stat

        mode = store_file.stat().st_mode
        writable = bool(
            mode & (stat.S_IWUSR | stat.S_IWGRP | stat.S_IWOTH)
        ) and os.access(store_file, os.W_OK)
        if read_store_header(store_file).has_reverse or writable:
            try:
                ensure_reverse_section(store_file)
            except OSError:
                pass
        return self.get(path)

    def get_partitioned(
        self,
        path: PathLike,
        num_shards: int,
        partitioner: Optional[str] = None,
    ):
        """Return ``path``'s ``num_shards``-way partition, building if needed.

        The graph is resolved through :meth:`get` (converted and
        memory-mapped as usual) and its partition is cached on disk
        under ``<store>.shards/<K>[-lp]/`` next to the store file
        (see :mod:`repro.graph.partition` for the layout and the two
        partitioners).  The cache invalidates itself: converted stores
        are signature-keyed files, so an edited source yields a fresh
        store *and* fresh shards, while a rewritten ``.rcsr`` is caught
        by the manifest's (mtime, size) record and re-partitioned.

        Returns a :class:`~repro.graph.partition.PartitionedStore`.
        """
        from repro.graph.partition import DEFAULT_PARTITIONER, ensure_partitioned

        if partitioner is None:
            partitioner = DEFAULT_PARTITIONER
        store_file = self.store_path(path)
        graph = self.get(path)
        partitioned = ensure_partitioned(
            store_file, num_shards, graph=graph, partitioner=partitioner
        )
        if store_file.parent == self.cache_dir:
            # Shard partitions count toward the cache budget like the
            # stores they belong to; re-trim now that one was written.
            self._trim_disk(keep=store_file)
        return partitioned

    # ------------------------------------------------------------------ #

    def convert(
        self, source: PathLike, destination: PathLike, *, reverse: bool = False
    ) -> CSRGraph:
        """Explicitly convert ``source`` into a store file at ``destination``.

        Unlike :meth:`get`, the output goes exactly where asked (e.g. a
        sidecar ``graph.rcsr`` you commit next to a dataset) and the
        returned graph memory-maps it.  ``reverse=True`` includes the
        reverse-CSR ``rsrc`` section in the same single write.
        """
        from repro.graph.io import read_auto

        destination = Path(destination)
        if destination.suffix != STORE_SUFFIX:
            raise GraphFormatError(
                f"store files use the {STORE_SUFFIX!r} suffix: {destination}"
            )
        write_store(read_auto(source), destination, reverse=reverse)
        return self.get(destination)

    def clear(self) -> None:
        """Drop every unpinned LRU entry (open graphs stay valid)."""
        with self._lock:
            for key in list(self._lru):
                if not self._pins.get(key):
                    del self._lru[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphStore(cache_dir={str(self.cache_dir)!r}, "
            f"open={len(self._lru)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_DEFAULT: Optional[GraphStore] = None


def default_store() -> GraphStore:
    """The process-wide :class:`GraphStore` (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = GraphStore()
    return _DEFAULT


def get_graph(path: PathLike) -> CSRGraph:
    """``default_store().get(path)`` — the one-line zero-copy loader."""
    return default_store().get(path)
