"""The runtime layer: zero-copy graph storage + one algorithm dispatcher.

Two subsystems (see ``docs/architecture.md`` for the full picture):

* :mod:`repro.runtime.store` — :class:`GraphStore`, which converts any
  supported graph file once into the binary GraphStore container and
  memory-maps it read-only everywhere after, so repeated invocations and
  process-pool workers share the same page-cache bytes;
* :mod:`repro.runtime.registry` / :mod:`repro.runtime.runner` — the
  :data:`REGISTRY` of named algorithms and the :func:`run` dispatcher
  that replaces per-caller orchestration (graph loading, config
  building, executor selection, counter collection).

>>> from repro.runtime import run
>>> from repro.generators import mesh
>>> run("diameter", mesh(16, seed=1), tau=4, seed=1).value >= 0
True
"""

from repro.runtime.registry import (
    REGISTRY,
    AlgorithmRegistry,
    AlgorithmSpec,
    register,
)
from repro.runtime.runner import RunContext, RunResult, run
from repro.runtime.store import GraphStore, default_store, get_graph

__all__ = [
    "GraphStore",
    "default_store",
    "get_graph",
    "AlgorithmRegistry",
    "AlgorithmSpec",
    "REGISTRY",
    "register",
    "RunContext",
    "RunResult",
    "run",
]
