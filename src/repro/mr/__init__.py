"""Simulator of the MR(M_T, M_L) MapReduce model of Pietracaprina et al.

The paper analyses its algorithms on the MR(M_T, M_L) model: computation
proceeds in *rounds*; in each round a multiset of key-value pairs is
transformed by applying a reducer independently to each same-key group,
subject to a total-memory budget ``M_T`` and a per-reducer local-memory
budget ``M_L``.  This package provides:

* :class:`~repro.mr.model.MRSpec` — the ``(M_T, M_L)`` parameters;
* :class:`~repro.mr.engine.MREngine` — a round-by-round executor that
  enforces the memory budgets and counts rounds and messages;
* :mod:`~repro.mr.primitives` — the sorting and (segmented) prefix-sum
  primitives of Fact 1, each running in ``O(log_{M_L} n)`` rounds;
* :mod:`~repro.mr.metrics` — the platform-independent counters the paper
  reports (rounds, work = node updates + messages);
* :mod:`~repro.mr.batch` — the array-valued batch reducer protocol of the
  vectorized shuffle (``MREngine.round_batch``);
* :mod:`~repro.mr.kernels` — the O(candidates) scatter-min merge kernels
  and the bounded-key counting-sort shuffle of the growing step;
* :mod:`~repro.mr.executor` — serial, multiprocessing, vectorized, and
  shared-memory parallel backends (``make_executor``).
"""

from repro.mr.model import MRSpec
from repro.mr.metrics import Counters
from repro.mr.trace import RoundTrace, RoundRecord
from repro.mr.engine import MREngine
from repro.mr.partitioner import (
    hash_partition,
    hash_partition_array,
    range_partition,
    range_partition_array,
)
from repro.mr.primitives import mr_sort, mr_prefix_sum, mr_segmented_prefix_sum
from repro.mr.executor import (
    EXECUTOR_NAMES,
    MultiprocessingExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    VectorExecutor,
    make_executor,
)

__all__ = [
    "MRSpec",
    "Counters",
    "RoundTrace",
    "RoundRecord",
    "MREngine",
    "hash_partition",
    "hash_partition_array",
    "range_partition",
    "range_partition_array",
    "mr_sort",
    "mr_prefix_sum",
    "mr_segmented_prefix_sum",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "VectorExecutor",
    "SharedMemoryExecutor",
    "make_executor",
    "EXECUTOR_NAMES",
]
