"""O(C) scatter-min kernels for the growing-step merge.

The Δ-growing step's merge half — "per target node, keep the winning
``(distance, center, arrival)`` candidate" — was historically a sort:
group the candidate batch with a stable ``np.argsort``, then resolve
each group with an ``np.lexsort`` over the tie-break columns
(:func:`repro.mr.batch.group_min_first`).  Sorting costs
``O(C log C)`` per round and, at R-MAT(18) scale, dominates the whole
clustering wall-clock.  The kernels here compute the *same* winners in
``O(C)`` data movement:

1. scatter-min the distance column per target (``np.minimum.at`` on a
   dense per-target buffer, or ``np.minimum.reduceat`` when the batch is
   already grouped);
2. restrict to the rows achieving their target's minimum distance and
   scatter-min the center column among them;
3. among full ``(distance, center)`` ties, keep the earliest arrival —
   a scatter-min over the *row index*, which is exactly the "stable
   first" rule the sorting implementation enforced.

Because each pass narrows the candidate set by exact equality against
the per-target minimum, the surviving row is the lexicographic minimum
— bit-identical to the sort-based tie-break (the property suite in
``tests/mr/test_kernels.py`` pits every kernel against the
:func:`~repro.mr.batch.group_min_first` oracle, which is kept unchanged
for exactly that purpose).  The kernels assume NaN-free columns; the
growing step only produces finite candidate rows.

Two layouts are provided, one per execution context:

* :func:`scatter_group_min_first` — a drop-in **batch reducer** (same
  signature and output as ``group_min_first``) that replaces the
  lexsort with ``np.minimum.reduceat`` passes over the grouped rows.
  Process-pool workers run this on their shard, so the ``parallel`` and
  ``mmap`` backends inherit the speedup without any transport change.
* :func:`scatter_min_rows` — the **ungrouped** kernel: candidates stay
  in arrival order and the reduction scatters into dense per-target
  buffers (:class:`ScatterScratch`, preallocated once and reset only on
  the touched targets, so rounds cost O(candidates) regardless of
  ``n``).  This is the hot path of the vector backend (via the engine's
  counting-sort shuffle), the serial core step, and the sharded
  workers' resident merge.

``REPRO_GROWING_KERNEL=sort`` switches every growing path back to the
legacy sort-based kernels — the switch exists for the A/B benchmark
(``benchmarks/bench_growing_kernels.py``) and the CI parity job, which
assert that both modes produce identical clusterings *and* counters.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mr import native as _native

__all__ = [
    "ScatterScratch",
    "CountScratch",
    "scatter_min_rows",
    "scatter_group_min_first",
    "merge_candidates",
    "merge_candidates_by_source",
    "counting_group_keys",
    "merge_kernel_name",
    "KERNEL_ENV",
]

#: Environment switch for the growing-step kernels: ``scatter`` (default)
#: or ``sort`` (the legacy argsort/lexsort path, kept for A/B parity).
KERNEL_ENV = "REPRO_GROWING_KERNEL"

#: "No row yet" sentinel of the first-arrival scatter pass.
_ROW_SENTINEL = np.iinfo(np.int64).max


def merge_kernel_name() -> str:
    """Active growing-kernel implementation: ``"scatter"`` or ``"sort"``.

    Read from :data:`KERNEL_ENV` on every call so benchmarks (and the CI
    parity job) can flip modes between runs in one process; anything but
    ``sort`` means the scatter kernels.
    """
    return "sort" if os.environ.get(KERNEL_ENV) == "sort" else "scatter"


class ScatterScratch:
    """Reusable dense buffers for the ungrouped scatter-min kernels.

    One buffer per tie-break column plus one int64 row buffer, each of
    the id-domain size.  Buffers are allocated (``np.empty`` — contents
    are irrelevant, every kernel call writes its touched ids before
    reading them) on first use and grown monotonically, so a state that
    keeps one scratch across rounds performs zero per-round allocation
    on the dense side.
    """

    __slots__ = ("_cols", "_rows", "_size", "_stamp", "_gen", "_out")

    def __init__(self) -> None:
        self._cols: List[np.ndarray] = []
        self._rows: Optional[np.ndarray] = None
        self._size = 0
        # Native-tier extras (allocated on first native dispatch): a
        # generation-stamp buffer that lets the single-pass C kernel
        # skip the per-call dense reset, plus the distinct-id/row output
        # buffers it sorts into.
        self._stamp: Optional[np.ndarray] = None
        self._gen = 0
        self._out: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def ensure(
        self, domain: int, ncols: int
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Return ``ncols`` float64 buffers plus the row buffer, each ≥ ``domain``."""
        if domain > self._size:
            self._size = int(domain)
            self._cols = [np.empty(self._size) for _ in self._cols]
            self._rows = np.empty(self._size, dtype=np.int64)
        while len(self._cols) < ncols:
            self._cols.append(np.empty(self._size))
        if self._rows is None:
            self._rows = np.empty(self._size, dtype=np.int64)
        return self._cols[:ncols], self._rows

    def ensure_native(self, domain: int, ncols: int):
        """Buffers + stamp generation for the native single-pass kernel."""
        cols, rows = self.ensure(domain, ncols)
        if self._stamp is None or len(self._stamp) < self._size:
            self._stamp = np.zeros(self._size, dtype=np.int64)
            self._gen = 0  # fresh zeros can never equal a positive gen
            self._out = (
                np.empty(self._size, dtype=np.int64),
                np.empty(self._size, dtype=np.int64),
            )
        self._gen += 1
        return cols, rows, self._stamp, self._gen, self._out[0], self._out[1]


def scatter_min_rows(
    ids: np.ndarray,
    cols: Sequence[np.ndarray],
    *,
    domain: int,
    scratch: Optional[ScatterScratch] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Winning row per distinct id, without grouping or sorting the rows.

    ``ids`` are int64 in ``[0, domain)`` (one per candidate row, in
    arrival order) and ``cols`` the tie-break columns in priority order;
    the winner of an id is the row minimizing
    ``(cols[0], cols[1], ..., arrival index)`` — the paper's relaxation
    tie-break when called with ``(distance, center)``.  Columns must be
    float64 (cast integer columns first; ids fit exactly) and NaN-free.

    Each pass resets the dense buffer only on the ids present in the
    batch, scatter-mins the column, and keeps the rows that achieve
    their id's minimum — so total work is O(rows · columns), independent
    of ``domain``.  Returns ``(distinct ids ascending, winner row per
    id)``.
    """
    scratch = scratch if scratch is not None else ScatterScratch()
    num_rows = len(ids)
    if num_rows == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if len(cols) <= 3 and _native.use_native():
        return _native.scatter_min_rows(
            ids, cols, domain=domain, scratch=scratch
        )
    col_bufs, row_buf = scratch.ensure(domain, len(cols))

    rows: Optional[np.ndarray] = None  # None = all rows still alive
    sub_ids = ids
    for col, buf in zip(cols, col_bufs):
        if rows is not None:
            col = col[rows]
        buf[sub_ids] = np.inf
        np.minimum.at(buf, sub_ids, col)
        keep = col == buf[sub_ids]
        rows = np.flatnonzero(keep) if rows is None else rows[keep]
        sub_ids = ids[rows]
    if rows is None:  # no tie-break columns: earliest arrival wins outright
        rows = np.arange(num_rows, dtype=np.int64)
        sub_ids = ids

    row_buf[sub_ids] = _ROW_SENTINEL
    np.minimum.at(row_buf, sub_ids, rows)
    winners = rows[row_buf[sub_ids] == rows]
    winner_ids = ids[winners]
    order = np.argsort(winner_ids)  # distinct ids: tiny vs the row count
    return winner_ids[order], winners[order]


class CountScratch:
    """Reusable histogram / prefix-sum buffers for the counting shuffle.

    :func:`counting_group_keys` historically allocated a fresh
    O(key-domain) histogram (``np.bincount``) plus a fresh offsets array
    every round.  A :class:`CountScratch` keyed by the largest
    ``key_bound`` seen replaces both with buffers that are grown
    monotonically and reused, mirroring what :class:`ScatterScratch`
    already does on the reduce side: a state (or engine) that keeps one
    scratch across rounds performs zero per-round dense allocation on
    the shuffle side.  The histogram buffer is kept **all-zero between
    calls** — after reading the counts, exactly the touched entries are
    zeroed again — so a skinny round pays O(rows + groups), not
    O(domain), to reset it.
    """

    __slots__ = ("_hist", "_offsets", "_gk", "_gc")

    def __init__(self) -> None:
        self._hist: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None
        # Native-tier distinct-key/count output buffers (sized to the
        # key bound: the distinct count can never exceed it).
        self._gk: Optional[np.ndarray] = None
        self._gc: Optional[np.ndarray] = None

    def native_out(self, bound: int) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct-key and count buffers of at least ``bound``."""
        if self._gk is None or len(self._gk) < bound:
            self._gk = np.empty(max(int(bound), 1024), dtype=np.int64)
            self._gc = np.empty(max(int(bound), 1024), dtype=np.int64)
        return self._gk, self._gc

    def hist(self, bound: int) -> np.ndarray:
        """An all-zero int64 histogram buffer of at least ``bound``."""
        if self._hist is None or len(self._hist) < bound:
            self._hist = np.zeros(
                max(int(bound), 2 * len(self._hist) if self._hist is not None else 0),
                dtype=np.int64,
            )
        return self._hist

    def offsets(self, num_groups: int) -> np.ndarray:
        """An int64 prefix-sum buffer of at least ``num_groups + 1``."""
        if self._offsets is None or len(self._offsets) < num_groups + 1:
            self._offsets = np.empty(
                max(num_groups + 1, 1024), dtype=np.int64
            )
        return self._offsets


def counting_group_keys(
    keys: np.ndarray,
    bound: int,
    *,
    with_offsets: bool = True,
    scratch: Optional[CountScratch] = None,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Counting-sort shuffle of bounded int64 keys: histogram + prefix sum.

    The grouping half of a stable counting sort — a dense histogram
    over the bounded key domain plus a prefix sum — in O(rows + bound),
    replacing the engine's stable ``np.argsort``.  Returns
    ``(group_keys, counts, offsets)``: distinct keys ascending, the size
    of each group, and the ``g + 1`` prefix array, exactly the layout
    the argsort shuffle derives (``offsets`` is ``None`` under
    ``with_offsets=False`` — the engine's scatter path consumes only
    keys and counts).  The rows themselves are *not* permuted; reducers
    that need physically grouped rows still gather via argsort,
    scatter-capable reducers never need them.

    ``scratch``, when given, supplies the histogram and prefix-sum
    buffers (reused across rounds, grown monotonically); without it the
    function allocates fresh ones per call as before.  The returned
    ``counts``/``offsets`` are views into the scratch, valid until the
    next call with the same scratch.
    """
    if scratch is None:
        dense = np.bincount(keys, minlength=bound)
        group_keys = np.flatnonzero(dense)
        counts = dense[group_keys].astype(np.int64)
    elif _native.use_native():
        # Single C pass replaces the buffered np.add.at scatter; the
        # scratch histogram's all-zero invariant is restored in-kernel.
        gk_buf, gc_buf = scratch.native_out(bound)
        g = _native.count_keys(keys, scratch.hist(bound), gk_buf, gc_buf)
        group_keys = gk_buf[:g]  # the astype below makes the owned copy
        counts = gc_buf[:g].copy()
    else:
        dense = scratch.hist(bound)
        np.add.at(dense, keys, 1)
        group_keys = np.flatnonzero(dense[:bound])
        counts = dense[group_keys].copy()
        dense[group_keys] = 0  # restore the all-zero invariant
    offsets = None
    if with_offsets:
        if scratch is None:
            offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        else:
            buf = scratch.offsets(len(group_keys))
            buf[0] = 0
            np.cumsum(counts, out=buf[1 : len(group_keys) + 1])
            offsets = buf[: len(group_keys) + 1]
    return group_keys.astype(np.int64), counts, offsets


def scatter_group_min_first(
    keys: np.ndarray,
    offsets: np.ndarray,
    values: np.ndarray,
    sort_cols: Optional[int] = None,
):
    """Scatter-min drop-in for :func:`repro.mr.batch.group_min_first`.

    Same signature, same output — per group, the first row in input
    order among those minimizing the leading ``sort_cols`` columns — but
    the lexsort is replaced by one ``np.minimum.reduceat`` pass per
    tie-break column over the (already grouped) rows, then a reduceat on
    the row index for the first-arrival rule.  O(rows · columns)
    instead of O(rows · log rows).  Assumes NaN-free columns.
    """
    num_groups = len(keys)
    if num_groups == 0:
        return keys, values, np.zeros(0, dtype=np.int64)
    d = values.shape[1] if sort_cols is None else int(sort_cols)
    if _native.use_native():
        firsts = _native.group_min_first_rows(values, d, offsets)
        if firsts is not None:  # None: layout needs the pure fallback
            return keys, values[firsts], np.ones(num_groups, dtype=np.int64)
    starts = offsets[:-1]
    sizes = np.diff(offsets)
    gid = np.repeat(np.arange(num_groups, dtype=np.int64), sizes)

    alive: Optional[np.ndarray] = None  # None = every row still tied
    for c in range(d):
        col = values[:, c]
        if alive is None:
            gmin = np.minimum.reduceat(col, starts)
            alive = col == gmin[gid]
        else:
            gmin = np.minimum.reduceat(np.where(alive, col, np.inf), starts)
            alive &= col == gmin[gid]

    rows = np.arange(len(gid), dtype=np.int64)
    if alive is not None:
        rows = np.where(alive, rows, np.int64(len(gid)))
    firsts = np.minimum.reduceat(rows, starts)
    return keys, values[firsts], np.ones(num_groups, dtype=np.int64)


def merge_candidates(keys, offsets, values):
    """The growing-step merge as a batch reducer (scatter implementation).

    Per target node, the winning ``(nd, center, dacc)`` row under the
    paper's tie-break — smallest distance, then smallest center, then
    earliest arrival (``sort_cols=2``: ``dacc`` rides along with the
    winner, it never breaks ties).  Drop-in for the legacy
    ``partial(group_min_first, sort_cols=2)`` reducer; a module-level
    function so pool workers receive it by reference.
    """
    return scatter_group_min_first(keys, offsets, values, sort_cols=2)


def merge_candidates_by_source(keys, offsets, values):
    """Order-free growing-step merge over ``(nd, center, source, dacc)`` rows.

    Equivalent to :func:`merge_candidates` whenever a source contributes
    at most one candidate per target (builders deduplicate edges):
    within a target group, arrival order ascends with the source id, so
    "earliest among the ``(nd, center)``-minimal rows" equals "the
    ``(nd, center, source)``-minimal row".  Making the source an
    explicit tie-break column frees the *producer* from arrival-order
    guarantees — the fused emit pipeline's frozen-emission cache replays
    rows out of arrival order, and pool workers merge them with this
    reducer.  ``dacc`` rides with the winner; output rows are trimmed
    back to the ``(nd, center, dacc)`` layout.
    """
    out_keys, out_values, out_counts = scatter_group_min_first(
        keys, offsets, values, sort_cols=3
    )
    return out_keys, out_values[:, [0, 1, 3]], out_counts


def _merge_candidates_ungrouped(keys, values, group_keys, bound, scratch):
    """Ungrouped fast path of :func:`merge_candidates`.

    Invoked by :meth:`repro.mr.engine.MREngine.round_batch` when the
    counting-sort shuffle applies and the executor reduces in-process:
    the candidate rows never get permuted — the winners come straight
    from the dense scatter.  ``group_keys`` (ascending, from the
    counting shuffle) is exactly the id set the scatter returns, so the
    output matches the grouped reducer's bit for bit.
    """
    out_keys, rows = scatter_min_rows(
        keys,
        (values[:, 0], values[:, 1]),
        domain=bound,
        scratch=scratch,
    )
    return out_keys, values[rows], np.ones(len(out_keys), dtype=np.int64)


#: Marks :func:`merge_candidates` as scatter-capable for the engine.
merge_candidates.ungrouped_reduce = _merge_candidates_ungrouped
