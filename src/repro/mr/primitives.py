"""Sorting and (segmented) prefix-sum primitives on the MR engine.

Fact 1 of the paper (from Goodrich et al. / Pietracaprina et al.): sorting
and (segmented) prefix sums of ``n`` items run in ``O(log_{M_L} n)`` rounds
on MR(M_T, M_L) with ``M_T = Θ(n)``.  The implementations here follow the
classical recipes — sample sort and an ``M_L``-ary scan tree — and are the
building blocks the paper invokes when it argues that one Δ-growing step
costs O(1) rounds.

These functions drive the :class:`~repro.mr.engine.MREngine` and therefore
inherit its memory enforcement: a reducer that would exceed ``M_L`` raises,
which is how the tests certify the round/space bounds rather than taking
them on faith.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.mr.engine import MREngine
from repro.util import as_rng

__all__ = [
    "mr_sort",
    "mr_prefix_sum",
    "mr_segmented_prefix_sum",
    "mr_scan",
    "mr_reduce_by_key",
    "mr_join",
]

T = TypeVar("T")


# --------------------------------------------------------------------- #
# Sorting (sample sort)
# --------------------------------------------------------------------- #


def _sort_bucket_reducer(key, values):
    """Sort one bucket locally and re-emit it under its bucket id."""
    return [(key, tuple(sorted(values)))]


def mr_sort(engine: MREngine, values: Sequence, *, seed: int = 0) -> List:
    """Sort ``values`` with a recursive sample sort on the MR engine.

    Buckets are delimited by splitters sampled driver-side (the standard
    TeraSort arrangement); each bucket is sorted by one reducer.  A bucket
    that would overflow ``M_L`` is re-split recursively, giving the
    ``O(log_{M_L} n)`` round bound with high probability.
    """
    values = list(values)
    rng = as_rng(seed)
    capacity = max(engine.spec.local_memory // 2, 2)
    return _sample_sort(engine, values, capacity, rng)


def _chunk_sort_merge(engine: MREngine, values: List, capacity: int) -> List:
    """Fallback: sort capacity-sized chunks in one round, k-way merge.

    Used when sampling cannot split a bucket (e.g. massive duplicate
    runs): every chunk respects M_L, and the merge is a driver-side
    streaming operation (O(1) memory per chunk cursor).
    """
    from heapq import merge as _heap_merge

    chunks = [values[i : i + capacity] for i in range(0, len(values), capacity)]
    pairs = [(ci, v) for ci, chunk in enumerate(chunks) for v in chunk]
    sorted_chunks = dict(engine.round(pairs, _sort_bucket_reducer))
    return list(_heap_merge(*(sorted_chunks[ci] for ci in range(len(chunks)))))


def _sample_sort(engine: MREngine, values: List, capacity: int, rng) -> List:
    n = len(values)
    if n <= 1:
        return values
    if n <= capacity:
        out = engine.round([(0, v) for v in values], _sort_bucket_reducer)
        return list(out[0][1])
    if min(values) == max(values):
        # Degenerate bucket of identical keys: splitters cannot divide it.
        return _chunk_sort_merge(engine, values, capacity)

    # Oversample so that buckets stay under capacity w.h.p.
    num_buckets = max(2, -(-n // capacity) * 2)
    sample_size = min(n, num_buckets * 8)
    sample = sorted(rng.choice(n, size=sample_size, replace=False))
    sample_values = sorted(values[i] for i in sample)
    step = len(sample_values) / num_buckets
    splitters = [
        sample_values[min(int((i + 1) * step), len(sample_values) - 1)]
        for i in range(num_buckets - 1)
    ]

    from bisect import bisect_right

    pairs = [(bisect_right(splitters, v), v) for v in values]
    buckets: dict = {}
    for b, v in pairs:
        buckets.setdefault(b, []).append(v)

    # One engine round charges the shuffle of all pairs; oversized buckets
    # recurse (their round cost is accounted by the recursive calls).
    small = {b: vals for b, vals in buckets.items() if len(vals) <= capacity}
    if small:
        flat = [(b, v) for b, vals in small.items() for v in vals]
        sorted_small = dict(engine.round(flat, _sort_bucket_reducer))
    else:
        sorted_small = {}

    result: List = []
    for b in sorted(buckets):
        if b in sorted_small:
            result.extend(sorted_small[b])
        elif len(buckets[b]) == n:
            # Sampling made no progress (heavy duplicate skew); fall back
            # to chunked sort-and-merge to guarantee termination.
            result.extend(_chunk_sort_merge(engine, buckets[b], capacity))
        else:
            result.extend(_sample_sort(engine, buckets[b], capacity, rng))
    return result


# --------------------------------------------------------------------- #
# Generic scan tree
# --------------------------------------------------------------------- #


def _block_reduce_reducer(key, values, op=None):
    """Combine one block's (position, item) pairs in positional order."""
    ordered = [item for _, item in sorted(values, key=lambda pv: pv[0])]
    acc = ordered[0]
    for item in ordered[1:]:
        acc = op(acc, item)
    return [(key, acc)]


def _block_scan_reducer(key, values, op=None):
    """Scan one block given its exclusive offset (tagged ``("off", x)``)."""
    offset = None
    elems: List[Tuple[int, object]] = []
    for v in values:
        if isinstance(v, tuple) and len(v) == 2 and v[0] == "off":
            offset = v[1]
        else:
            elems.append(v)
    elems.sort(key=lambda pv: pv[0])
    out = []
    acc = offset
    for pos, item in elems:
        acc = item if acc is None else op(acc, item)
        out.append((key, (pos, acc)))
    return out


def mr_scan(
    engine: MREngine,
    items: Sequence[T],
    op: Callable[[T, T], T],
) -> List[T]:
    """Inclusive scan of ``items`` under associative ``op``.

    Runs the classical two-phase tree scan with fanout ``Θ(M_L)``:
    ``T(n) = T(n / M_L) + O(1)`` rounds, i.e. ``O(log_{M_L} n)``.
    ``op`` must be associative; it need not be commutative.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        return []
    # A block reducer holds `fanout` (position, item) pairs (3 words each
    # under the engine's cost model) plus one offset pair: respect M_L.
    fanout = max((engine.spec.local_memory - 3) // 3, 2)

    if n <= fanout:
        reducer = partial(_block_scan_reducer, op=op)
        out = engine.round([(0, (i, x)) for i, x in enumerate(items)], reducer)
        return [item for _, (pos, item) in sorted(out, key=lambda kv: kv[1][0])]

    # Upward: per-block totals.
    reducer = partial(_block_reduce_reducer, op=op)
    pairs = [(i // fanout, (i % fanout, x)) for i, x in enumerate(items)]
    block_totals_pairs = engine.round(pairs, reducer)
    num_blocks = -(-n // fanout)
    block_totals: List[T] = [None] * num_blocks  # type: ignore[list-item]
    for b, total in block_totals_pairs:
        block_totals[b] = total

    # Recurse on block totals to get inclusive block prefixes.
    block_prefix = mr_scan(engine, block_totals, op)

    # Downward: scan each block seeded with the previous block's prefix.
    reducer = partial(_block_scan_reducer, op=op)
    pairs = [(i // fanout, (i % fanout, x)) for i, x in enumerate(items)]
    pairs += [(b, ("off", block_prefix[b - 1])) for b in range(1, num_blocks)]
    out = engine.round(pairs, reducer)
    result: List[T] = [None] * n  # type: ignore[list-item]
    for b, (pos, item) in out:
        result[b * fanout + pos] = item
    return result


# --------------------------------------------------------------------- #
# Aggregation and joins (single-round building blocks)
# --------------------------------------------------------------------- #


def _reduce_by_key_reducer(key, values, op=None):
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return [(key, acc)]


def mr_reduce_by_key(
    engine: MREngine, pairs, op: Callable, *, combine: bool = False
) -> List:
    """Combine all values sharing a key under associative ``op`` (1 round).

    The workhorse of graph MR programs (e.g. "minimum candidate per
    target node" is ``mr_reduce_by_key(..., min)``).  Keys whose group
    exceeds ``M_L`` raise — pass ``combine=True`` when hot keys are
    possible: any associative ``op`` is its own valid map-side combiner,
    so pre-aggregation shrinks every reducer group to the pairs that
    survive combining (the classic hot-key treatment).
    """
    reducer = partial(_reduce_by_key_reducer, op=op)
    return engine.round(
        list(pairs), reducer, combiner=reducer if combine else None
    )


def _join_reducer(key, values):
    left = [v[1] for v in values if v[0] == 0]
    right = [v[1] for v in values if v[0] == 1]
    return [(key, (a, b)) for a in left for b in right]


def mr_join(engine: MREngine, left, right) -> List:
    """Inner join of two keyed pair lists (1 round).

    Emits ``(key, (l_value, r_value))`` for every cross pair of values
    sharing a key — the standard repartition join, and the mechanism that
    co-locates a node's adjacency with incoming messages in graph MR
    algorithms.
    """
    tagged = [(k, (0, v)) for k, v in left] + [(k, (1, v)) for k, v in right]
    return engine.round(tagged, _join_reducer)


# --------------------------------------------------------------------- #
# Prefix sums (plain and segmented) as scan instances
# --------------------------------------------------------------------- #


def _add(a, b):
    return a + b


def _seg_op(a, b):
    """Associative operator of segmented sum over ``(starts_segment, sum)``."""
    flag_a, sum_a = a
    flag_b, sum_b = b
    if flag_b:
        return (True, sum_b)
    return (flag_a or flag_b, sum_a + sum_b)


def mr_prefix_sum(engine: MREngine, values: Sequence[float]) -> List[float]:
    """Inclusive prefix sums in ``O(log_{M_L} n)`` rounds."""
    return mr_scan(engine, list(values), _add)


def mr_segmented_prefix_sum(
    engine: MREngine,
    values: Sequence[float],
    segments: Sequence[int],
) -> List[float]:
    """Inclusive prefix sums restarting at each segment boundary.

    ``segments`` assigns a segment id to every value; ids must be grouped
    contiguously (the usual post-sort layout).  Implemented as a scan under
    the standard segmented-sum semigroup on ``(starts_segment, sum)`` pairs.
    """
    values = list(values)
    segments = list(segments)
    if len(values) != len(segments):
        raise ValueError("values and segments must have equal length")
    flags = [
        i == 0 or segments[i] != segments[i - 1] for i in range(len(values))
    ]
    tagged = list(zip(flags, values))
    scanned = mr_scan(engine, tagged, _seg_op)
    return [s for _, s in scanned]
