"""Owner-compute sharded execution: persistent workers, boundary exchange.

The pool backends (``parallel``/``mmap``) re-publish every round's whole
grouped batch to stateless workers, so per-round cost scales with total
state even when only a thin frontier changed.  This module inverts that:

* the graph is partitioned once — contiguous node ranges or the
  locality-aware lp assignment (:mod:`repro.graph.partition`) — and
  written as per-shard GraphStore files;
* each **persistent worker** memory-maps its shard's CSR rows *once*
  and keeps its slice of the growing state
  (:class:`~repro.core.state.ClusterState` + a ``changed`` mask)
  resident across rounds, stages, and even the two phases of CLUSTER2;
* a Δ-growing step becomes: every worker merges the candidates that
  arrived for *its* nodes, adopts winners, expands its local frontier
  through its CSR rows, keeps the candidates whose targets it owns, and
  ships the **cross-shard** candidates to their owners.

Three semantics-preserving boundary-traffic reductions keep the
exchange proportional to the *improving live frontier* rather than the
cut size (see the respective docstrings for the argument):

1. **map-side combining** — at most one candidate per (shard, halo
   target) ships per round;
2. **halo filtering** — a candidate that cannot beat the best value this
   shard already shipped for the target is dropped at the source;
3. **frozen-replica ("ghost") state** — a boundary node's state ships
   *once* when Contract freezes it; from then on every neighbouring
   shard recomputes that node's (now immutable) contributions locally
   from its own symmetric arcs, so the per-stage forced broadcast of
   frozen nodes costs zero bytes.

On top of the candidate-volume reductions, three execution tiers:

* **Locality-aware partitioning** (``partitioner="lp"``, the backend
  default): shards are the multilevel label-propagation assignment of
  :func:`repro.mr.partitioner.lp_assignment`, which cuts far fewer
  arcs than contiguous ranges on generator-ordered graphs — smaller
  halos, smaller exchanges.  Node ids are *never* relabeled; the two
  int32 partition sidecars (node→shard, node→local row) supply the
  global↔local maps, so every candidate on the wire still carries
  global ids and results stay bit-identical across partitioners.
* **Compute/exchange overlap** (``exchange="async"``, the default with
  >1 process worker): workers emit their *boundary* frontier first,
  hand the outgoing blocks to per-peer sender threads, then expand the
  interior frontier while the pipes drain.  Arrivals are collected at
  the end of the step and merge next step — exactly when the serial
  driver would have delivered them — so the overlap changes wall-clock
  only, never results (the merge is order-free, see below).
* **Out-of-core residency** (``REPRO_SHARD_RESIDENT_MB``): workers run
  sequentially in-process and their CSR mmaps are opened/released
  under an explicit byte budget, so no two shards need be resident
  together and graphs larger than memory stream through one shard at
  a time.  Per-shard growing state (O(nodes + cut)) stays resident;
  only the O(arcs) CSR pages page in and out.

Bit-identical results are by construction, not luck: workers run the
same :func:`~repro.mrimpl.growing_mr.apply_merged_candidates` /
:func:`~repro.mrimpl.growing_mr.emit_frontier` kernels as the
whole-graph array state, and the merge tie-break is the order-free
equivalent of the engine's stable-first rule: builders deduplicate
edges, so a target receives at most one candidate per source and
"earliest arrival" equals "smallest source id" — the winner is simply
the row minimizing ``(nd, center, source)``.  ``tests/mr/
test_sharded_parity.py`` asserts equality against ``serial``/``vector``
across shard counts, partitioners, and exchange modes.

The exchange transport is pipes (pickled NumPy arrays): driver↔worker
for commands and results, worker↔worker for the async candidate mesh.
On one host this costs one copy each way; the point of the architecture
is that the protocol is already message-passing over explicit byte
streams, so a multi-host transport is a serialization detail, not a
rewrite.
"""

from __future__ import annotations

import os
import queue
import shutil
import tempfile
import threading
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MemoryLimitExceeded, WorkerFailure
from repro.mr import native as _native

__all__ = [
    "ShardedExecutor",
    "ShardedGrowingState",
    "EXCHANGE_ENV",
    "PARTITIONER_ENV",
    "RESIDENT_ENV",
    "WORKER_TIMEOUT_ENV",
]

#: Candidate rows on the wire: ``(nd, center, dacc, source)``.  The
#: source column exists for the order-free merge tie-break; the state
#: kernels consume only the first three columns.
CANDIDATE_WIDTH = 4

#: Exchange mode override: ``async`` (default) overlaps boundary
#: shipping with interior expansion; ``serial`` routes every candidate
#: through the driver (the A/B baseline, and the only mode of the
#: in-process out-of-core pool).
EXCHANGE_ENV = "REPRO_SHARD_EXCHANGE"

#: Partitioner override for the sharded backend: ``lp`` (default) or
#: ``range``.  Library callers of ``ensure_partitioned`` still default
#: to ``range``; only this backend opts into lp.
PARTITIONER_ENV = "REPRO_SHARD_PARTITIONER"

#: Out-of-core residency budget in MiB.  When set, shard workers run
#: sequentially in-process and their CSR mmaps are LRU-released so the
#: mapped shard bytes stay under the budget.
RESIDENT_ENV = "REPRO_SHARD_RESIDENT_MB"

#: Per-command worker deadline in seconds (default 60).  A worker that
#: neither replies nor heartbeats within the window is declared dead
#: and the whole pool is torn down with a
#: :class:`~repro.errors.WorkerFailure` for the recovery loop.
WORKER_TIMEOUT_ENV = "REPRO_WORKER_TIMEOUT_S"

#: Kernel-selection environment, re-applied in every worker on each
#: ``reset`` broadcast: persistent workers outlive driver-side env
#: changes (tests and the runner's ``impl_overrides`` both mutate
#: these between runs), so the driver ships its snapshot along.
_KERNEL_ENV_KEYS = (
    "REPRO_KERNEL_IMPL",
    "REPRO_NATIVE_DISABLE",
    "REPRO_EMIT_THREADS",
    "REPRO_EMIT_MODE",
    "REPRO_GROWING_KERNEL",
)


def _empty_candidates() -> Tuple[np.ndarray, np.ndarray]:
    return (
        np.empty(0, dtype=np.int64),
        np.empty((0, CANDIDATE_WIDTH), dtype=np.float64),
    )


def _candidate_bytes(blocks) -> int:
    """Payload bytes of a list of ``(keys, values, ...)`` array blocks."""
    return sum(sum(a.nbytes for a in block) for block in blocks)


def _min_by_target(keys: np.ndarray, values: np.ndarray):
    """Per distinct target, the row minimizing ``(nd, center, source)``.

    The order-free form of the engine's merge: ``group_min_first`` keeps
    the *earliest* row among those minimizing ``(nd, center)``, and with
    at most one candidate per (source, target) arrival order within a
    target group is ascending source order — so "earliest minimal"
    equals "minimal ``(nd, center, source)``".  Returns ``(group_keys,
    winner_values, max_group, max_group_key)``.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    starts = np.concatenate(
        ([0], np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1)
    ).astype(np.int64)
    counts = np.diff(np.concatenate((starts, [len(sorted_keys)])))
    gid = np.repeat(np.arange(len(starts), dtype=np.int64), counts)
    rank = np.lexsort(
        (sorted_values[:, 3], sorted_values[:, 1], sorted_values[:, 0], gid)
    )
    firsts = rank[starts]
    at = int(np.argmax(counts))
    return (
        sorted_keys[starts],
        sorted_values[firsts],
        int(counts[at]),
        int(sorted_keys[starts][at]),
    )


class _Ownership:
    """One shard's node-id geometry under either partitioner.

    Everything the worker needs to translate between the global id
    space (candidates on the wire, ``indices`` entries) and its local
    row space (state arrays):

    * ``range`` — local row ``r`` is global node ``lo + r``; ownership
      and both maps are arithmetic on the ``starts`` boundaries.
    * ``lp`` — local row ``r`` is global node ``row_gids[r]``; the maps
      come from the partition's two memory-mapped int32 sidecars
      (node→shard ``owners`` and node→local-row ``localidx``), shared
      read-only across all forked workers through the page cache.

    Both layouts keep ``localidx`` order-preserving (ascending global
    id ↔ ascending local row), which the merge relies on: converting
    ascending global group keys to local ids preserves ascending order,
    so the scatter- and sort-merge paths pick identical first-maximum
    groups and ``apply_merged_candidates`` sees its documented ordering.
    """

    __slots__ = (
        "mode",
        "shard_id",
        "num_shards",
        "num_nodes",
        "num_rows",
        "lo",
        "hi",
        "starts",
        "splitters",
        "owners",
        "localidx",
        "row_gids",
    )

    def __init__(self, shard_id: int, spec: dict):
        self.mode = spec["mode"]
        self.shard_id = shard_id
        if self.mode == "range":
            starts = np.asarray(spec["starts"], dtype=np.int64)
            self.starts = starts
            self.splitters = starts[1:-1]
            self.num_shards = len(starts) - 1
            self.num_nodes = int(starts[-1])
            self.lo = int(starts[shard_id])
            self.hi = int(starts[shard_id + 1])
            self.num_rows = self.hi - self.lo
            self.owners = None
            self.localidx = None
            self.row_gids = None
        elif self.mode == "lp":
            self.num_shards = int(spec["num_shards"])
            self.num_nodes = int(spec["num_nodes"])
            shape = (self.num_nodes,)
            self.owners = np.memmap(
                spec["owners_path"], dtype=np.int32, mode="r", shape=shape
            )
            self.localidx = np.memmap(
                spec["localidx_path"], dtype=np.int32, mode="r", shape=shape
            )
            self.row_gids = np.flatnonzero(
                self.owners == np.int32(shard_id)
            ).astype(np.int64)
            self.num_rows = len(self.row_gids)
            self.lo = self.hi = -1
            self.starts = self.splitters = None
        else:  # pragma: no cover - driver validates first
            raise ValueError(f"unknown partition mode {self.mode!r}")

    def is_local(self, gids: np.ndarray) -> np.ndarray:
        if self.mode == "range":
            return (gids >= self.lo) & (gids < self.hi)
        return self.owners[gids] == np.int32(self.shard_id)

    def owner_of(self, gids: np.ndarray) -> np.ndarray:
        if self.mode == "range":
            from repro.mr.partitioner import range_partition_array

            return range_partition_array(gids, self.splitters)
        return self.owners[gids].astype(np.int64)

    def to_local(self, gids):
        if self.mode == "range":
            return gids - self.lo
        return self.localidx[gids].astype(np.int64)

    def to_global(self, lids):
        if self.mode == "range":
            return lids + self.lo
        return self.row_gids[lids]


def _sender_loop(send_queue: "queue.Queue", conn) -> None:
    """Drain one peer's outgoing queue (a worker-side sender thread).

    One thread per destination pipe: with a single shared sender a full
    pipe to a slow peer would stall shipping to every other peer, and a
    cycle of full pipes could deadlock the mesh.  Per-destination
    threads make every send independent, and since each worker receives
    exactly one message per peer per step before the driver's barrier,
    every queued send is eventually drained.  ``None`` is the shutdown
    sentinel; payloads travel wrapped in a 1-tuple so ``(None,)`` — "no
    candidates this step" — stays distinct from it.
    """
    while True:
        item = send_queue.get()
        if item is None:
            break
        try:
            conn.send(item[0])
        except (OSError, ValueError):  # peer gone: shutdown in progress
            break


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


class _ShardWorker:
    """State and step logic of one shard-owning worker.

    Lives in a forked worker process under :class:`_PipePool` (commands
    arrive over a pipe) or directly in the driver process under
    :class:`_InprocPool` (the out-of-core tier).  All node ids crossing
    a pipe are global; state arrays are local rows ``[0, num_rows)``
    mapped to global ids by :class:`_Ownership`.
    """

    def __init__(
        self,
        shard_path,
        shard_id: int,
        spec: dict,
        peer_conns: Optional[dict] = None,
        exchange: str = "serial",
        in_process: bool = False,
    ):
        from repro.graph.serialize import open_store
        from repro.mr.emit import EmitScratch

        self.shard_path = shard_path
        self.shard_id = shard_id
        #: Whether this worker shares the driver's process (_InprocPool):
        #: injected faults then raise instead of ``os._exit`` — exiting
        #: would take the driver down with the "worker".
        self.in_process = in_process
        own = _Ownership(shard_id, spec)
        self.own = own

        shard = open_store(shard_path)  # local rows, global neighbour ids
        self.indptr = shard.indptr
        self.indices = shard.indices
        self.weights = shard.weights
        self._shard = shard  # keeps the mmap alive
        self._rsrc_from_store = shard.rsrc is not None
        self.graph_open = True
        num_rows = len(self.indptr) - 1
        if num_rows != own.num_rows:
            raise ValueError(
                f"shard {shard_id}: store has {num_rows} rows, "
                f"partition assigns {own.num_rows}"
            )
        self.num_rows = num_rows
        self.state = None  # allocated by the reset() below

        # The halo: every external node this shard has an arc to — the
        # only possible sources of incoming (and targets of outgoing)
        # cross-shard contributions, thanks to edge symmetry.
        external = np.flatnonzero(~own.is_local(self.indices))
        degrees = np.diff(self.indptr)
        rows = np.repeat(np.arange(num_rows, dtype=np.int64), degrees)
        self.ext_rows = rows[external]  # local target of the reverse arc
        self.ext_nbrs = self.indices[external]  # external endpoint
        self.ext_w = self.weights[external]
        self.halo = np.unique(self.ext_nbrs)
        self.ext_halo_idx = np.searchsorted(self.halo, self.ext_nbrs)
        #: Rows with at least one external arc — the only rows whose
        #: emission can produce cross-shard candidates; the async
        #: exchange emits them first so the pipes fill while the
        #: interior expands.
        self.is_boundary_row = np.zeros(num_rows, dtype=bool)
        self.is_boundary_row[self.ext_rows] = True

        #: Fused emit pipeline over this shard's rows: scratch-buffered
        #: push/pull expansion.  The reverse-CSR arc→row map memory-maps
        #: from the shard store's ``rsrc`` section when present
        #: (partitions written by this version carry it), and the
        #: boundary slice (outward arcs pull cannot reach target-major)
        #: stays resident as ``ext_rows`` + arc positions.  Under lp the
        #: scratch takes the mapped layout: ``base=0`` plus the sidecar
        #: maps, candidate keys still global.
        scratch_args = dict(
            id_domain=own.num_nodes,
            arc_sources=shard.rsrc,
            boundary_rows=self.ext_rows,
            boundary_aidx=external,
        )
        if own.mode == "range":
            scratch_args["base"] = own.lo
        else:
            scratch_args.update(
                row_gids=own.row_gids,
                localidx=own.localidx,
                owners=own.owners,
                shard_id=shard_id,
            )
        self.emit_scratch = EmitScratch(
            self.indptr, self.indices, self.weights, **scratch_args
        )

        # Boundary incidence: for each local node with external arcs,
        # the distinct shards owning a neighbour — where its state must
        # be replicated when it freezes.
        if len(external):
            owners = own.owner_of(self.ext_nbrs)
            pairs = np.unique(
                np.stack((self.ext_rows, owners), axis=1), axis=0
            )
            self.boundary_nodes = pairs[:, 0]  # local rows
            self.boundary_dests = pairs[:, 1]
        else:
            self.boundary_nodes = np.empty(0, dtype=np.int64)
            self.boundary_dests = np.empty(0, dtype=np.int64)

        # Async exchange plumbing: one duplex pipe and one sender
        # thread per peer (see _sender_loop for the deadlock argument).
        self.peer_conns = dict(peer_conns) if peer_conns else {}
        self.exchange = exchange
        self._async_on = exchange == "async" and bool(self.peer_conns)
        self._send_queues: Dict[int, queue.Queue] = {}
        self._sender_threads: List[threading.Thread] = []
        if self._async_on:
            for dest in sorted(self.peer_conns):
                send_queue: queue.Queue = queue.Queue()
                thread = threading.Thread(
                    target=_sender_loop,
                    args=(send_queue, self.peer_conns[dest]),
                    daemon=True,
                )
                thread.start()
                self._send_queues[dest] = send_queue
                self._sender_threads.append(thread)
        self._shipped_this_step = False
        self.reset()

    # -- graph residency (out-of-core tier) ----------------------------- #

    def release_graph(self) -> None:
        """Drop the CSR mmap and arc-domain scratch of this shard.

        Everything that survives (halo, boundary slices, frozen-emission
        cache, state slice) is O(nodes + cut); the O(arcs) memory —
        the ``indptr``/``indices``/``weights``/``rsrc`` maps *and* the
        emit scratch's candidate banks — is released.  Releasing means
        actually unmapping/freeing — the address space, not just the
        pages, must shrink for a hard ``RLIMIT_AS`` (or a residency
        budget) to be satisfiable.
        """
        if not self.graph_open:
            return
        scratch = self.emit_scratch
        scratch.indptr = scratch.indices = scratch.weights = None
        if self._rsrc_from_store:
            scratch._arc_rows = None
        # Also surrender the arc-domain emit scratch: an evicted shard
        # keeping its candidate banks would pin O(its arcs) of anonymous
        # memory and the out-of-core peak would sum to O(graph) anyway.
        scratch.release_buffers()
        self.indptr = self.indices = self.weights = None
        self._shard = None
        self.graph_open = False

    def acquire_graph(self) -> None:
        """Re-map the shard store released by :meth:`release_graph`."""
        if self.graph_open:
            return
        from repro.graph.serialize import open_store

        shard = open_store(self.shard_path)
        self._shard = shard
        self.indptr = shard.indptr
        self.indices = shard.indices
        self.weights = shard.weights
        scratch = self.emit_scratch
        scratch.indptr = shard.indptr
        scratch.indices = shard.indices
        scratch.weights = shard.weights
        if self._rsrc_from_store:
            scratch._arc_rows = shard.rsrc
        self.graph_open = True

    # -- commands ------------------------------------------------------ #

    def reset(self, env: Optional[dict] = None):
        from repro.core.state import ClusterState
        from repro.mr.kernels import CountScratch, ScatterScratch

        if env is not None:
            # Sync the kernel-selection environment from the driver:
            # this worker may predate the driver's current overrides.
            for key in _KERNEL_ENV_KEYS:
                if key in env:
                    os.environ[key] = env[key]
                else:
                    os.environ.pop(key, None)
        if self.state is None:
            # First reset (from __init__): allocate everything once.
            self.state = ClusterState(self.num_rows)
            self.changed = np.zeros(self.num_rows, dtype=bool)
            #: Dense scatter buffers of the merge kernel, reused across
            #: rounds (sized to this shard's node range).
            self.scratch = ScatterScratch()
            #: Dense histogram buffer of the merge's group accounting.
            self.count_scratch = CountScratch()
            self.halo_best = np.full(len(self.halo), np.inf)
            # Frozen-replica ("ghost") state of halo nodes, filled by
            # freeze updates; immutable once set.
            self.r_frozen = np.zeros(len(self.halo), dtype=bool)
            self.r_center = np.full(len(self.halo), -1, dtype=np.int64)
            self.r_dist = np.full(len(self.halo), np.inf)
            self.r_dacc = np.full(len(self.halo), np.inf)
            self.r_frozen_iter = np.zeros(len(self.halo), dtype=np.int64)
        else:
            # Later resets (CLUSTER2's second phase): refill in place —
            # the state slice, scratch buffers, and candidate banks all
            # survive the phase boundary instead of being reallocated.
            s = self.state
            s.center.fill(-1)
            s.dist.fill(np.inf)
            s.dist_acc.fill(np.inf)
            s.frozen.fill(False)
            s.frozen_iter.fill(0)
            self.changed.fill(False)
            self.halo_best.fill(np.inf)
            self.r_frozen.fill(False)
            self.r_center.fill(-1)
            self.r_dist.fill(np.inf)
            self.r_dacc.fill(np.inf)
            self.r_frozen_iter.fill(0)
            self.emit_scratch.reset()
        #: Last merge's adopted local ids (ascending) — the live
        #: frontier; lets every non-forced round run without an O(n)
        #: mask rescan.
        self.active = np.empty(0, dtype=np.int64)
        self.pending = _empty_candidates()
        # The resolved kernel tier, as seen by the process that will
        # actually run the emit kernels; stamped into Counters.impl.
        return _native.resolved_info()

    def uncovered(self):
        return self.own.to_global(
            np.flatnonzero(~self.state.frozen).astype(np.int64)
        )

    def begin_stage(self, picks):
        s = self.state
        live = ~s.frozen
        s.center[live] = -1
        s.dist[live] = np.inf
        s.dist_acc[live] = np.inf
        self.changed[live] = False
        self.active = np.empty(0, dtype=np.int64)
        s.frozen_iter[live] = 0
        # Remote distances reset with the stage, so shipped-best history
        # no longer implies anything about receiver state.
        self.halo_best[:] = np.inf
        picks = np.asarray(picks, dtype=np.int64)
        local = self.own.to_local(picks)
        s.center[local] = picks
        s.dist[local] = 0.0
        s.dist_acc[local] = 0.0

    def _merge(self, cand_keys, cand_values):
        """Per-target winner over this shard's resident candidate batch.

        Wire keys are global; the returned group keys are **local**
        (``apply_merged_candidates`` runs with ``base=0``) and stay
        ascending because both ownership layouts keep the global→local
        map order-preserving.  The scatter form of
        :func:`_min_by_target`: ``np.minimum.at`` passes over dense
        per-node buffers (``(nd, center, source)`` tie-break, all three
        columns unique per target — see the module docstring), reusing
        the shard-sized scratch across rounds; the per-group counts
        come from one ``np.bincount`` (counting-sort histogram), which
        also yields the memory-model extremes.
        ``REPRO_GROWING_KERNEL=sort`` selects the legacy sort-based
        merge for the A/B benchmark and parity CI.
        """
        from repro.mr.kernels import merge_kernel_name, scatter_min_rows

        if merge_kernel_name() == "sort":
            gkeys, winners, max_group, max_group_key = _min_by_target(
                cand_keys, cand_values
            )
            return self.own.to_local(gkeys), winners, max_group, max_group_key
        local = self.own.to_local(cand_keys)
        ids, rows = scatter_min_rows(
            local,
            (cand_values[:, 0], cand_values[:, 1], cand_values[:, 3]),
            domain=self.num_rows,
            scratch=self.scratch,
        )
        # Group sizes via the reusable dense histogram (O(C + G), zero
        # allocation beyond the G-sized gather; the buffer keeps its
        # all-zero invariant between rounds).  The counts feed nothing
        # but the memory-model extremes; argmax over ascending distinct
        # ids picks the same first-maximum group as the sort path.
        hist = self.count_scratch.hist(self.num_rows)
        if _native.use_native():
            _native.bincount_into(local, hist)
        else:
            np.add.at(hist, local, 1)
        counts = hist[ids]
        hist[ids] = 0
        at = int(np.argmax(counts))
        return (
            ids,
            cand_values[rows],
            int(counts[at]),
            int(self.own.to_global(int(ids[at]))),
        )

    def apply_replicas(self, ids, center, dist, dacc, iteration):
        idx = np.searchsorted(self.halo, ids)
        self.r_frozen[idx] = True
        self.r_center[idx] = center
        self.r_dist[idx] = dist
        self.r_dacc[idx] = dacc
        self.r_frozen_iter[idx] = iteration

    def step(
        self, delta, force, rescale, iteration, incoming, replicas, fault=None
    ):
        from time import perf_counter

        from repro.mr.kernels import merge_kernel_name
        from repro.mrimpl.growing_mr import apply_merged_candidates

        if fault == "kill":
            # REPRO_FAULT_PLAN injection: die exactly like a SIGKILL —
            # no unwinding, no pipe goodbye — so the supervision path
            # under test is the real one.  In-process "workers" raise a
            # simulated failure instead (they share the driver).
            if self.in_process:
                from repro.errors import WorkerFailure

                raise WorkerFailure(
                    "injected fault", shard=self.shard_id, command="step"
                )
            os._exit(1)
        if isinstance(fault, tuple) and fault[0] == "delay":
            # delay: injection — a deterministic stall inside the step,
            # the controlled way to trip REPRO_WORKER_TIMEOUT_S deadline
            # supervision without an actual hang.
            import time as _time

            _time.sleep(float(fault[1]))
        self._shipped_this_step = False
        for block in replicas:
            self.apply_replicas(*block)

        # Merge: this shard's resident candidates plus the delivered
        # cross-shard blocks; order is irrelevant (see _min_by_target).
        reduce_start = perf_counter()
        blocks = [self.pending] + [(k, v) for k, v in incoming]
        self.pending = _empty_candidates()
        cand_keys = np.concatenate([b[0] for b in blocks])
        cand_values = np.concatenate([b[1] for b in blocks])

        merged = len(cand_keys)
        max_group = 0
        max_group_key = -1
        num_groups = 0
        newly = 0
        adopted = np.empty(0, dtype=np.int64)
        keys = values = None
        if merged:
            keys, values, max_group, max_group_key = self._merge(
                cand_keys, cand_values
            )
            num_groups = len(keys)
        apply_start = perf_counter()
        self.changed[self.active] = False  # O(frontier), not O(n)
        if merged:
            newly, adopted = apply_merged_candidates(
                keys,
                values[:, :3],
                center=self.state.center,
                dist=self.state.dist,
                dacc=self.state.dist_acc,
                frozen=self.state.frozen,
                changed=self.changed,
                base=0,
            )
        self.active = adopted
        updated = len(adopted)

        # Emit through the shard's CSR rows, then route by owner.  The
        # adopted frontier drives non-forced rounds directly.  Under
        # the async exchange the boundary frontier goes first and its
        # cross-shard candidates ship immediately (sender threads),
        # overlapping the interior expansion; otherwise the driver
        # routes everything next step.
        emit_start = perf_counter()
        emitted, outgoing, pending_blocks, sent_bytes = self._emit_round(
            delta, force, rescale, iteration
        )
        # Regenerate incoming frozen-external contributions locally: on
        # a forced round every frozen replica contributes over this
        # shard's own (symmetric) boundary arcs, exactly as its owner
        # would have emitted them.  Appended to the resident pending
        # block for the next merge — the same timing as shipped
        # candidates.
        if force and len(self.halo):
            if merge_kernel_name() != "sort" and not rescale:
                # Fused fast path (Contract semantics): a ghost's
                # candidate distance is just the arc weight, and ghost
                # targets are locally owned — so one boolean sweep over
                # the boundary arcs applies every filter, including the
                # winner-preserving improvement pre-filter, *before*
                # any large array is compressed.
                li = self.ext_rows
                ok = self.r_frozen[self.ext_halo_idx]
                np.logical_and(ok, self.ext_w <= delta, out=ok)
                np.logical_and(ok, ~self.state.frozen[li], out=ok)
                np.logical_and(ok, self.ext_w < self.state.dist[li], out=ok)
                if ok.any():
                    hidx = self.ext_halo_idx[ok]
                    w = self.ext_w[ok]
                    ghost_keys = self.own.to_global(self.ext_rows[ok])
                    ghost_values = np.column_stack(
                        (
                            w,  # nd = 0 + w for a frozen replica
                            self.r_center[hidx].astype(np.float64),
                            self.r_dacc[hidx] + w,
                            self.halo[hidx].astype(np.float64),
                        )
                    )
                    # Not added to ``emitted``: each ghost contribution
                    # is the regeneration of a candidate its owner
                    # already counted (and dropped from shipping).
                    pending_blocks.append((ghost_keys, ghost_values))
            else:
                if rescale:
                    r_eff = self.r_dist - rescale * (
                        iteration - self.r_frozen_iter
                    )
                else:
                    r_eff = np.zeros(len(self.halo))
                emits = self.r_frozen & (r_eff < delta)
                arc = emits[self.ext_halo_idx]
                if arc.any():
                    hidx = self.ext_halo_idx[arc]
                    w = self.ext_w[arc]
                    nd = r_eff[hidx] + w
                    ok = (w <= delta) & (nd <= delta)
                    hidx, w, nd = hidx[ok], w[ok], nd[ok]
                    ghost_rows = self.ext_rows[arc][ok]
                    if merge_kernel_name() != "sort":
                        # Rescaled (Contract2) fused path: improvement
                        # pre-filter after the effective distances.
                        imp = ~self.state.frozen[ghost_rows] & (
                            nd < self.state.dist[ghost_rows]
                        )
                        hidx, w, nd = hidx[imp], w[imp], nd[imp]
                        ghost_rows = ghost_rows[imp]
                    if len(ghost_rows):
                        ghost_values = np.column_stack(
                            (
                                nd,
                                self.r_center[hidx].astype(np.float64),
                                self.r_dacc[hidx] + w,
                                self.halo[hidx].astype(np.float64),
                            )
                        )
                        pending_blocks.append(
                            (self.own.to_global(ghost_rows), ghost_values)
                        )
        emit_end = perf_counter()
        if self._async_on:
            # Every peer sends exactly one (possibly empty) message per
            # step; a round that emitted nothing still must not leave
            # peers blocked on their end-of-step receive.
            if not self._shipped_this_step:
                sent_bytes += self._ship_outgoing([])
            # What peers shipped *during this step* joins the resident
            # pending block and merges next step — the same delivery
            # timing as the serial driver's routing.  Timed after the
            # emit phase closes: the wait is exchange, not compute.
            pending_blocks.extend(self._recv_arrivals())
        if pending_blocks:
            self.pending = (
                np.concatenate([b[0] for b in pending_blocks]),
                np.concatenate([b[1] for b in pending_blocks]),
            )
        times = {
            "reduce": apply_start - reduce_start,
            "apply": emit_start - apply_start,
            "emit": emit_end - emit_start,
        }
        return {
            "updated": updated,
            "newly": newly,
            "merged": merged,
            "emitted": emitted,
            "groups": num_groups,
            "max_group": max_group,
            "max_group_key": max_group_key,
            "outgoing": outgoing,
            "sent_bytes": sent_bytes,
            "times": times,
        }

    # -- emission ------------------------------------------------------- #

    def _emit_round(self, delta, force, rescale, iteration):
        """One round's emission, split for the async exchange.

        Serial mode: a single pass, cross-shard blocks returned to the
        driver.  Async mode: the cross-shard blocks never reach the
        driver — forced rounds emit once and ship, non-forced rounds
        emit the boundary frontier first (every cross-shard candidate
        comes from a boundary row, by definition of ``is_boundary_row``)
        and ship while the interior frontier expands.  Splitting the
        frontier cannot change results: emission is per-source, the two
        halves partition the active set, and the merge is order-free.
        Returns ``(emitted, outgoing, pending_blocks, sent_bytes)``.
        """
        from repro.mr.kernels import merge_kernel_name

        emit_fn = (
            self._emit_legacy
            if merge_kernel_name() == "sort"
            else self._emit_fused
        )
        if not self._async_on:
            sources = None if force else self.active
            emitted, outgoing, pending = emit_fn(
                delta, force, rescale, iteration, sources
            )
            return emitted, outgoing, pending, 0
        if force:
            emitted, outgoing, pending = emit_fn(
                delta, force, rescale, iteration, None
            )
            sent = self._ship_outgoing(outgoing)
            return emitted, [], pending, sent
        boundary = self.is_boundary_row[self.active]
        e1, out1, pend1 = emit_fn(
            delta, force, rescale, iteration, self.active[boundary]
        )
        sent = self._ship_outgoing(out1)
        e2, out2, pend2 = emit_fn(
            delta, force, rescale, iteration, self.active[~boundary]
        )
        if out2:
            raise AssertionError(
                "interior frontier rows produced cross-shard candidates"
            )
        return e1 + e2, [], pend1 + pend2, sent

    def _emit_legacy(self, delta, force, rescale, iteration, sources):
        """The sort-oracle emission: emit_frontier + owner routing."""
        from repro.mrimpl.growing_mr import emit_frontier

        out_keys, out_values3, out_srcs = emit_frontier(
            self.indptr,
            self.indices,
            self.weights,
            center=self.state.center,
            dist=self.state.dist,
            dacc=self.state.dist_acc,
            frozen=self.state.frozen,
            changed=self.changed,
            frozen_iter=self.state.frozen_iter,
            delta=delta,
            force=force,
            rescale=rescale,
            iteration=iteration,
            with_sources=True,
            sources=sources,
        )
        emitted = len(out_keys)
        outgoing = []
        pending_blocks = []
        if emitted:
            out_values = np.column_stack(
                (
                    out_values3,
                    self.own.to_global(out_srcs).astype(np.float64),
                )
            )
            owners = self.own.owner_of(out_keys)
            local = owners == self.shard_id
            pending_blocks.append((out_keys[local], out_values[local]))
            # Cross-shard candidates from frozen sources are dropped at
            # the source: every neighbouring shard regenerates them from
            # its frozen replicas (the ghost pass), for free.
            live_remote = ~local & ~self.state.frozen[out_srcs]
            for dest in np.unique(owners[live_remote]):
                mask = live_remote & (owners == dest)
                keys, values = self._combine_outgoing(
                    out_keys[mask], out_values[mask]
                )
                if len(keys):
                    outgoing.append((int(dest), keys, values))
        return emitted, outgoing, pending_blocks

    def _emit_fused(self, delta, force, rescale, iteration, sources):
        """Scratch-buffered fused emission (scatter kernels).

        Runs the direction-optimized expansion of
        :class:`~repro.mr.emit.EmitScratch` over the shard's rows, then
        routes: locally-owned targets pass the improvement pre-filter
        (their ``dist``/``frozen`` state is resident, so unadoptable
        rows are dropped before their value columns exist — winner-
        preserving, see :mod:`repro.mr.emit`); cross-shard rows cannot
        be tested and ship exactly as before, through the same combine
        and halo filters.  ``emitted`` still counts the full emission,
        so the ``messages`` counter stays bit-identical to every other
        backend.
        """
        s = self.state
        keys, nd, src_local, aidx, emitted = self.emit_scratch.emit_raw(
            center=s.center,
            dist=s.dist,
            frozen=s.frozen,
            frozen_iter=s.frozen_iter,
            delta=delta,
            force=force,
            rescale=rescale,
            iteration=iteration,
            sources=sources,
        )
        outgoing = []
        pending_blocks = []
        if not emitted:
            return 0, outgoing, pending_blocks
        local = self.own.is_local(keys)

        # Locally-owned targets: improvement pre-filter, then one
        # resident block with the value columns built per survivor.
        lk = keys[local]
        li = self.own.to_local(lk)
        lnd = nd[local]
        imp = ~s.frozen[li] & (lnd < s.dist[li])
        if imp.any():
            lk = lk[imp]
            lnd = lnd[imp]
            lsrc = src_local[local][imp]
            lw = np.take(self.weights, aidx[local][imp])
            block = np.empty((len(lk), CANDIDATE_WIDTH), dtype=np.float64)
            block[:, 0] = lnd
            block[:, 1] = s.center[lsrc]
            block[:, 2] = s.dist_acc[lsrc]
            block[:, 2] += lw
            block[:, 3] = self.own.to_global(lsrc)
            pending_blocks.append((lk.copy(), block))

        # Cross-shard candidates: receiver state is unknown, ship the
        # live-source rows through the usual combine/halo filters.
        remote = ~local
        remote &= ~s.frozen[src_local]
        if remote.any():
            rk = keys[remote]
            rnd = nd[remote]
            rsrc = src_local[remote]
            rw = np.take(self.weights, aidx[remote])
            rvals = np.empty((len(rk), CANDIDATE_WIDTH), dtype=np.float64)
            rvals[:, 0] = rnd
            rvals[:, 1] = s.center[rsrc]
            rvals[:, 2] = s.dist_acc[rsrc]
            rvals[:, 2] += rw
            rvals[:, 3] = self.own.to_global(rsrc)
            owners = self.own.owner_of(rk)
            for dest in np.unique(owners):
                mask = owners == dest
                okeys, ovalues = self._combine_outgoing(rk[mask], rvals[mask])
                if len(okeys):
                    outgoing.append((int(dest), okeys, ovalues))
        return emitted, outgoing, pending_blocks

    def _combine_outgoing(self, keys, values):
        """Shrink one outgoing block to its improving per-target winners.

        Two semantics-preserving reductions before anything crosses the
        boundary:

        1. **Map-side combine** — keep one candidate per target, the
           ``(nd, center, source)``-minimal row.  The receiving merge
           computes a min over all blocks, and a min of per-block mins
           is the same min.
        2. **Halo filter** — drop candidates whose ``nd`` cannot beat
           the best this shard already shipped for the target this
           stage: the receiver merged that earlier candidate in a prior
           round, so its ``dist`` is already <= the earlier ``nd`` and
           a non-improving candidate can never be adopted (nor leave
           any other trace — non-adopted winners are discarded whole).

        Both change only the shipped-bytes accounting (like any
        map-side combiner), never the resulting state.
        """
        keys, values, _max_group, _key = _min_by_target(keys, values)
        idx = np.searchsorted(self.halo, keys)
        nd = values[:, 0]
        keep = nd < self.halo_best[idx]
        self.halo_best[idx[keep]] = nd[keep]
        return keys[keep], values[keep]

    # -- async exchange ------------------------------------------------- #

    def _ship_outgoing(self, outgoing) -> int:
        """Queue one message per peer (async exchange, once per step)."""
        by_dest = {dest: (keys, values) for dest, keys, values in outgoing}
        sent = 0
        for dest, send_queue in self._send_queues.items():
            block = by_dest.pop(dest, None)
            if block is not None:
                sent += block[0].nbytes + block[1].nbytes
            send_queue.put((block,))
        if by_dest:  # pragma: no cover - owners are always peers
            raise ValueError(f"no pipe to shards {sorted(by_dest)}")
        self._shipped_this_step = True
        return sent

    def _recv_arrivals(self):
        """Collect this step's one message from every peer (sorted)."""
        arrivals = []
        for peer in sorted(self.peer_conns):
            block = self.peer_conns[peer].recv()
            if block is not None:
                arrivals.append(block)
        return arrivals

    def abort_step(self) -> None:
        """Keep peers unblocked when this worker's step failed.

        Peers block on their end-of-step receive; send them the empty
        message this step still owes (if unshipped), then drain their
        messages so nobody's sender thread wedges on a full pipe.  The
        driver surfaces the original traceback either way.
        """
        if not self._async_on:
            return
        if not self._shipped_this_step:
            try:
                self._ship_outgoing([])
            except Exception:  # pragma: no cover - best-effort unblock
                pass
        for peer in sorted(self.peer_conns):
            conn = self.peer_conns[peer]
            try:
                if conn.poll(5):
                    conn.recv()
            except (EOFError, OSError):  # pragma: no cover - peer gone
                pass

    def close_exchange(self) -> None:
        for send_queue in self._send_queues.values():
            send_queue.put(None)
        for thread in self._sender_threads:
            thread.join(timeout=5)
        for conn in self.peer_conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._send_queues = {}
        self._sender_threads = []
        self.peer_conns = {}
        self._async_on = False

    # -- stage control -------------------------------------------------- #

    def freeze_assigned(self, iteration):
        s = self.state
        sel = (s.center != -1) & ~s.frozen
        s.frozen[sel] = True
        self.changed[sel] = False
        s.frozen_iter[sel] = iteration
        # Ship the newly frozen boundary nodes' (now immutable) state to
        # every shard holding them in its halo — once, ever.
        outgoing = []
        if sel.any() and len(self.boundary_nodes):
            newly = sel[self.boundary_nodes]
            nodes = self.boundary_nodes[newly]
            dests = self.boundary_dests[newly]
            for dest in np.unique(dests):
                mask = dests == dest
                picked = nodes[mask]
                outgoing.append(
                    (
                        int(dest),
                        (
                            self.own.to_global(picked),
                            s.center[picked].copy(),
                            s.dist[picked].copy(),
                            s.dist_acc[picked].copy(),
                            iteration,
                        ),
                    )
                )
        return int(np.count_nonzero(sel)), outgoing

    def make_singletons(self, iteration):
        s = self.state
        leftover = np.flatnonzero(~s.frozen)
        s.center[leftover] = self.own.to_global(leftover)
        s.dist[leftover] = 0.0
        s.dist_acc[leftover] = 0.0
        s.frozen[leftover] = True
        self.changed[leftover] = False
        s.frozen_iter[leftover] = iteration
        # No replica shipping: the drivers only make singletons after
        # the final growing step, so the replicas can never be read.
        return len(leftover)

    def discard_candidates(self):
        self.pending = _empty_candidates()
        # Some shipped candidates may now never be merged, so the
        # shipped-best history no longer proves anything about receiver
        # state; forget it (costs only redundant traffic later).
        self.halo_best[:] = np.inf

    def result(self):
        return self.state

    # -- checkpoint support --------------------------------------------- #

    def snapshot_state(self):
        """This shard's slice of the global state (read-only command).

        Valid at safe points only (no resident pending candidates); the
        driver stitches the slices into the global checkpoint arrays.
        """
        s = self.state
        return (
            s.center.copy(),
            s.dist.copy(),
            s.dist_acc.copy(),
            s.frozen.copy(),
            s.frozen_iter.copy(),
            self.changed.copy(),
        )

    def restore_state(self, center, dist, dacc, frozen, frozen_iter, changed):
        """Rehydrate this shard from the *global* checkpoint arrays.

        The worker slices its own rows and rebuilds the frozen-replica
        ghosts for every frozen halo node eagerly.  Eager install is
        equivalent to the pending freeze-block delivery an uninterrupted
        run would perform: replicas are immutable once set and nothing
        reads ``r_*`` before the next step's replica-application point,
        by which time the blocks would have arrived anyway.  The
        shipped-best history and emit scratch are reset — both are pure
        traffic/caching state, never results.
        """
        gids = self.own.to_global(np.arange(self.num_rows, dtype=np.int64))
        s = self.state
        s.center[:] = center[gids]
        s.dist[:] = dist[gids]
        s.dist_acc[:] = dacc[gids]
        s.frozen[:] = frozen[gids]
        s.frozen_iter[:] = frozen_iter[gids]
        self.changed[:] = changed[gids]
        h = self.halo
        hf = frozen[h]
        self.r_frozen[:] = hf
        self.r_center.fill(-1)
        self.r_dist.fill(np.inf)
        self.r_dacc.fill(np.inf)
        self.r_frozen_iter.fill(0)
        idx = np.flatnonzero(hf)
        if len(idx):
            hg = h[idx]
            self.r_center[idx] = center[hg]
            self.r_dist[idx] = dist[hg]
            self.r_dacc[idx] = dacc[hg]
            self.r_frozen_iter[idx] = frozen_iter[hg]
        self.halo_best[:] = np.inf
        self.pending = _empty_candidates()
        self.active = np.flatnonzero(self.changed).astype(np.int64)
        self.emit_scratch.reset()


def _dispatch(worker: _ShardWorker, command: str, args):
    """Run one driver command — shared by the pipe loop and _InprocPool."""
    if command == "step":
        return worker.step(*args)
    if command == "uncovered":
        return worker.uncovered()
    if command == "begin_stage":
        return worker.begin_stage(*args)
    if command == "freeze_assigned":
        return worker.freeze_assigned(*args)
    if command == "make_singletons":
        return worker.make_singletons(*args)
    if command == "discard":
        return worker.discard_candidates()
    if command == "reset":
        return worker.reset(*args)
    if command == "result":
        return worker.result()
    if command == "snapshot":
        return worker.snapshot_state()
    if command == "restore":
        return worker.restore_state(*args)
    raise ValueError(f"unknown worker command {command!r}")


def _worker_timeout() -> float:
    """Per-command deadline in seconds (``REPRO_WORKER_TIMEOUT_S``)."""
    try:
        timeout = float(os.environ.get(WORKER_TIMEOUT_ENV, "60"))
    except ValueError:
        return 60.0
    return timeout if timeout > 0 else 60.0


def _hb_interval(timeout: float) -> float:
    """Heartbeat period: several beats fit inside one deadline window."""
    return min(5.0, timeout / 4.0)


def _hb_loop(conn, lock, busy, stop, interval) -> None:
    """Worker-side heartbeat: ``("hb",)`` frames while a command runs.

    Beats are sent **only while a command is executing** (the ``busy``
    window): an idle worker writing unacknowledged frames would
    eventually fill the pipe buffer and deadlock against the driver —
    serve keeps workers warm between queries for hours.  During a
    command the driver drains the pipe continuously, so in-window beats
    are always consumed; each one pushes the driver's deadline out, so
    a *slow* round is distinguished from a *dead* worker no matter how
    long the round runs.  The send lock is shared with the reply path —
    a beat interleaved into a reply frame would corrupt the stream.
    """
    while not stop.is_set():
        if not busy.wait(timeout=0.25):
            continue
        while busy.is_set() and not stop.is_set():
            if stop.wait(interval):
                return
            if not busy.is_set():
                break
            with lock:
                if not busy.is_set():
                    break
                try:
                    conn.send(("hb",))
                except (OSError, ValueError):  # driver gone
                    return


def _orphan_watchdog(stop, ppid) -> None:
    """Exit when the driver process disappears.

    A driver killed with SIGKILL (or ``os._exit``, as the fault plan's
    ``shard=driver`` injection does) never runs the pool's close path,
    and EOF alone cannot unwind the pool: each forked worker inherits
    copies of the earlier workers' driver-pipe ends, so the orphans
    keep each other's pipes open in a ring.  Reparenting is the one
    signal that survives any driver death, so every worker polls its
    parent pid and exits once it changes.
    """
    while not stop.wait(1.0):
        if os.getppid() != ppid:
            os._exit(2)


def _shard_worker_main(conn, shard_path, shard_id, spec, peers, exchange):
    """Entry point of a shard-owning worker process."""
    watchdog_stop = threading.Event()
    threading.Thread(
        target=_orphan_watchdog,
        args=(watchdog_stop, os.getppid()),
        daemon=True,
    ).start()
    try:
        worker = _ShardWorker(
            shard_path, shard_id, spec, peer_conns=peers, exchange=exchange
        )
    except BaseException as exc:  # noqa: BLE001 - reported to the driver
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    send_lock = threading.Lock()
    busy = threading.Event()
    stop = threading.Event()
    timeout = _worker_timeout()
    hb_thread = threading.Thread(
        target=_hb_loop,
        args=(conn, send_lock, busy, stop, _hb_interval(timeout)),
        daemon=True,
    )
    hb_thread.start()
    with send_lock:
        conn.send(("ok", None))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        command = message[0]
        if command == "close":
            worker.close_exchange()
            stop.set()
            with send_lock:
                conn.send(("ok", None))
            break
        busy.set()
        try:
            reply = _dispatch(worker, command, message[1:])
            busy.clear()
            with send_lock:
                conn.send(("ok", reply))
        except BaseException:  # noqa: BLE001 - reported to the driver
            import traceback

            busy.clear()
            if command == "step":
                worker.abort_step()
            with send_lock:
                conn.send(("error", traceback.format_exc()))
    stop.set()
    conn.close()


# --------------------------------------------------------------------- #
# Worker pools
# --------------------------------------------------------------------- #


class _PipePool:
    """Forked worker processes driven over per-worker command pipes.

    The default pool: one persistent process per shard, commands and
    replies over a dedicated driver↔worker pipe.  Under the async
    exchange the pool additionally wires a full duplex pipe mesh
    between the workers *before* forking, so candidate blocks travel
    peer-to-peer without a driver hop.
    """

    kind = "pipe"

    def __init__(self, shard_paths, spec, exchange: str):
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        num = len(shard_paths)
        self.num_shards = num
        self.exchange_active = exchange == "async" and num > 1
        mesh = [dict() for _ in range(num)]
        mesh_ends = []
        if self.exchange_active:
            for i in range(num):
                for j in range(i + 1, num):
                    end_i, end_j = ctx.Pipe(duplex=True)
                    mesh[i][j] = end_i
                    mesh[j][i] = end_j
                    mesh_ends.extend((end_i, end_j))
        self._procs: List = []
        self._conns: List = []
        self._early: Dict[int, tuple] = {}
        try:
            for k, path in enumerate(shard_paths):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(
                        child,
                        str(path),
                        k,
                        spec,
                        mesh[k],
                        "async" if self.exchange_active else "serial",
                    ),
                    daemon=True,
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
        finally:
            # The children hold their mesh ends (inherited or shipped
            # at spawn); the parent's copies would otherwise keep every
            # pipe open forever.
            for end in mesh_ends:
                end.close()
        for k, conn in enumerate(self._conns):
            try:
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                self.terminate()
                raise WorkerFailure(
                    f"shard worker {k} died during startup: {exc!r}",
                    shard=k,
                ) from exc
            if status != "ok":
                self.close()
                raise RuntimeError(
                    f"shard worker {k} failed to start: {payload}"
                )

    def broadcast(self, command: str, per_worker=None):
        """Send one command to every worker and gather the replies.

        ``per_worker`` supplies each worker's argument (a tuple is
        splatted into the command message).  All sends complete before
        any receive, so workers proceed in lockstep without deadlock.

        Supervision: any send or receive failure — broken pipe, EOF, a
        dead process, or a deadline miss with no heartbeat — terminates
        the **whole pool** and raises :class:`WorkerFailure`.  Never
        heal the mesh in place: under the async exchange the surviving
        peers block on pipes to the dead worker, and a single-worker
        respawn could not restore cross-shard consistency anyway.  The
        recovery loop respawns everything from the last checkpoint.
        Worker-side Python exceptions (shipped back as tracebacks) stay
        ``RuntimeError`` — the worker is alive and consistent, that is
        an application error, not a fault.
        """
        if not self._conns:
            raise RuntimeError("sharded workers are not running")
        #: replies recovered out of order from a worker that finished a
        #: command and *then* died — consumed by index in _recv_reply.
        self._early: Dict[int, tuple] = {}
        for k, conn in enumerate(self._conns):
            try:
                if per_worker is None:
                    conn.send((command,))
                else:
                    args = per_worker[k]
                    if not isinstance(args, tuple):
                        args = (args,)
                    conn.send((command,) + args)
            except (OSError, ValueError, InterruptedError) as exc:
                self.terminate()
                raise WorkerFailure(
                    f"lost pipe to shard worker {k}: {exc!r}",
                    shard=k,
                    command=command,
                ) from exc
        timeout = _worker_timeout()
        replies = []
        errors = []
        try:
            for k in range(len(self._conns)):
                status, payload = self._recv_reply(k, timeout)
                if status == "ok":
                    replies.append(payload)
                else:
                    errors.append(f"shard worker {k}: {payload}")
        except WorkerFailure as exc:
            if exc.command is None:
                exc.command = command
            self.terminate()
            raise
        if errors:
            raise RuntimeError(
                "sharded execution failed:\n" + "\n".join(errors)
            )
        return replies

    def _recv_reply(self, k: int, timeout: float):
        """One worker's reply, with heartbeat-extended deadline.

        Polls in short slices so a *different* worker's death is
        noticed promptly even while this one's (possibly long) round is
        still running.  This cross-check must not wait for worker *k*'s
        reply or deadline: under the async exchange the survivors block
        on the dead peer's mesh pipes **while still heart-beating**, so
        a kill that only watched the in-order worker would extend its
        deadline forever.  ``poll(0)`` alone cannot distinguish a dead
        worker (EOF *is* readable) from one with a buffered reply, so
        the scan drains the dead worker's pipe: a complete non-heartbeat
        frame means it finished the command before dying (stashed for
        its in-order turn); EOF or heartbeats-only means it died
        mid-command — whole-pool failure.
        """
        from time import monotonic

        conn = self._conns[k]
        deadline = monotonic() + timeout
        while True:
            early = self._early.pop(k, None)
            if early is not None:
                return early
            try:
                if conn.poll(0.05):
                    message = conn.recv()
                    if message[0] == "hb":
                        deadline = monotonic() + timeout
                        continue
                    return message
            except (EOFError, OSError, InterruptedError) as exc:
                raise WorkerFailure(
                    f"shard worker {k} died mid-command: {exc!r}", shard=k
                ) from exc
            for j, proc in enumerate(self._procs):
                if proc.is_alive() or j in self._early or j == k:
                    continue
                reply = None
                try:
                    while self._conns[j].poll(0):
                        frame = self._conns[j].recv()
                        if frame[0] != "hb":
                            reply = frame
                            break
                except (EOFError, OSError):
                    reply = None
                if reply is None:
                    raise WorkerFailure(
                        f"shard worker {j} died "
                        f"(exit code {proc.exitcode})",
                        shard=j,
                    )
                self._early[j] = reply
            if monotonic() > deadline:
                raise WorkerFailure(
                    f"shard worker {k} missed its deadline "
                    f"({timeout:.0f}s without reply or heartbeat)",
                    shard=k,
                )

    def terminate(self) -> None:
        """Kill the pool without the polite close handshake.

        Used when a worker is already dead or wedged: sending
        ``("close",)`` and joining would block on broken pipes.
        """
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - unkillable
                    proc.kill()
                    proc.join(timeout=5)
        self._procs = []
        self._conns = []

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (OSError, ValueError):
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        self._procs = []
        self._conns = []


class _InprocPool:
    """Sequential in-process shard workers under a residency budget.

    The out-of-core tier: every :class:`_ShardWorker` lives in the
    driver process and commands dispatch directly (no pipes, no pickle,
    serial exchange).  The pool holds shard CSR mmaps open LRU-style
    under ``resident_bytes``: a worker's graph is (re)opened only for
    its ``step`` — the only command that reads CSR arrays; merge, ghost
    regeneration, and stage control run on resident O(nodes + cut)
    copies — and the coldest open shards are fully unmapped first.  At
    most one shard *needs* to be mapped at a time, so the peak mapped
    footprint is ``max(budget, largest shard)`` no matter how big the
    graph is.  Results are bit-identical to the process pool's serial
    exchange: same workers, same command order, same delivery timing.
    """

    kind = "inproc"
    exchange_active = False

    def __init__(self, shard_paths, spec, resident_bytes: int):
        self.num_shards = len(shard_paths)
        self.resident_bytes = int(resident_bytes)
        self._sizes = [os.path.getsize(p) for p in shard_paths]
        self._open: List[int] = []  # open shard ids, coldest first
        self._open_bytes = 0
        #: High-water marks, surfaced in benchmarks to prove the budget
        #: held (max_open_shards == 1 under a tight budget).
        self.max_resident_bytes = 0
        self.max_open_shards = 0
        self.workers: List[_ShardWorker] = []
        for k, path in enumerate(shard_paths):
            # Construction itself reads the CSR (halo/boundary scans):
            # make room *before* the worker opens its store, so even
            # the build phase respects the budget.
            self._make_room(self._sizes[k])
            self.workers.append(
                _ShardWorker(str(path), k, spec, in_process=True)
            )
            self._note_open(k)

    def _make_room(self, need: int) -> None:
        while self._open and self._open_bytes + need > self.resident_bytes:
            victim = self._open.pop(0)
            self.workers[victim].release_graph()
            self._open_bytes -= self._sizes[victim]

    def _note_open(self, shard: int) -> None:
        self._open.append(shard)
        self._open_bytes += self._sizes[shard]
        self.max_resident_bytes = max(
            self.max_resident_bytes, self._open_bytes
        )
        self.max_open_shards = max(self.max_open_shards, len(self._open))

    def _acquire(self, shard: int) -> None:
        if self.workers[shard].graph_open:
            self._open.remove(shard)
            self._open.append(shard)  # refresh LRU position
            return
        self._make_room(self._sizes[shard])
        self.workers[shard].acquire_graph()
        self._note_open(shard)

    def broadcast(self, command: str, per_worker=None):
        if not self.workers:
            raise RuntimeError("sharded workers are not running")
        replies = []
        for k, worker in enumerate(self.workers):
            if command == "step":
                self._acquire(k)
            if per_worker is None:
                args = ()
            else:
                args = per_worker[k]
                if not isinstance(args, tuple):
                    args = (args,)
            replies.append(_dispatch(worker, command, args))
        return replies

    def close(self) -> None:
        for worker in self.workers:
            worker.release_graph()
        self.workers = []
        self._open = []
        self._open_bytes = 0


# --------------------------------------------------------------------- #
# Driver side
# --------------------------------------------------------------------- #


class ShardedGrowingState:
    """Driver half of the sharded growing state.

    Implements the same interface as
    :class:`~repro.mrimpl.growing_mr.ArrayGrowingState` (the CLUSTER /
    CLUSTER2 drivers are agnostic), but every array lives in the shard
    workers; the driver holds only the in-flight cross-shard candidate
    blocks and pending replica updates.  Counter accounting mirrors the
    batch path exactly — one engine round per step, ``messages`` = the
    candidates the previous step emitted — so round/step/update/message
    counts match the other backends bit for bit.  ``simulated_time``
    accumulates the owner-compute critical path: the busiest shard's
    merged + produced candidates per step.

    The memory-model checks and ``simulated_time`` are measured against
    the **resident merge the workers actually perform** — under the
    default fused pipeline that batch excludes locally-filtered
    unadoptable candidates, so these two quantities are smaller than
    under ``REPRO_GROWING_KERNEL=sort`` (which merges the unfiltered
    batch) and are not comparable across kernel modes or to the
    engine-managed backends.  This extends the existing convention
    (this backend's critical path was already the owner-compute model,
    reported but never cross-compared — see ``docs/mr_model.md`` §3);
    results and the rounds/messages/updates counters remain
    bit-identical everywhere.
    """

    def __init__(self, graph, engine, executor: "ShardedExecutor"):
        self.num_nodes = graph.num_nodes
        self.engine = engine
        self.executor = executor
        executor._ensure_workers(graph)
        self.plan = executor.plan
        # Reset every worker, shipping the driver's kernel-selection
        # environment (persistent workers may predate it), and stamp
        # the workers' *own* resolved tier into the run's impl info —
        # the workers do the emitting, so their resolution is the one
        # benchmarks must report.
        env = {
            key: os.environ[key]
            for key in _KERNEL_ENV_KEYS
            if key in os.environ
        }
        replies = executor._broadcast(
            "reset", per_worker=[(env,)] * executor.num_shards
        )
        if replies and isinstance(replies[0], dict):
            info = dict(replies[0])
            info["partitioner"] = self.plan.mode
            info["exchange"] = (
                "async" if executor.exchange_active else "serial"
            )
            engine.counters.impl.update(info)
        # remote[dest] -> list of (keys, values) awaiting delivery.
        self._remote: Dict[int, List] = {}
        # replica_updates[dest] -> list of freeze blocks to deliver.
        self._replica_updates: Dict[int, List] = {}
        self._emitted_last = 0
        # Bytes the workers shipped peer-to-peer during the previous
        # step (async exchange): delivered — merged — this step.
        self._sent_prev = 0

    # -- growing-state interface --------------------------------------- #

    def uncovered(self) -> np.ndarray:
        parts = self.executor._broadcast("uncovered")
        if not parts:
            return np.empty(0, np.int64)
        out = np.concatenate(parts)
        if self.plan.mode != "range":
            # Each shard's block is ascending, but only the contiguous
            # range layout makes the concatenation globally sorted —
            # and the drivers' seeded sampling depends on the order.
            out = np.sort(out, kind="stable")
        return out

    def begin_stage(self, picks: np.ndarray) -> None:
        picks = np.asarray(picks, dtype=np.int64)
        owners = self.plan.owner_of(picks)
        self.executor._broadcast(
            "begin_stage",
            per_worker=[
                picks[owners == k] for k in range(self.executor.num_shards)
            ],
        )

    def step(
        self,
        engine,
        delta: float,
        *,
        force: bool = False,
        rescale: float = 0.0,
        iteration: int = 0,
    ) -> Tuple[int, int]:
        from repro.mr.faults import get_fault_plan

        num_shards = self.executor.num_shards
        ordinal = engine.counters.growing_steps + 1
        plan = get_fault_plan()
        fault_shards = set(plan.shard_kills(ordinal)) if plan else ()
        fault_delays = plan.shard_delays(ordinal) if plan else {}
        deliver, self._remote = self._remote, {}
        replicas, self._replica_updates = self._replica_updates, {}
        per_worker = []
        shipped = 0
        for k in range(num_shards):
            incoming = deliver.get(k, [])
            ghosts = replicas.get(k, [])
            shipped += _candidate_bytes(incoming)
            shipped += sum(
                sum(np.asarray(a).nbytes for a in block[:4])
                for block in ghosts
            )
            per_worker.append(
                (
                    delta,
                    force,
                    rescale,
                    iteration,
                    incoming,
                    ghosts,
                    "kill"
                    if k in fault_shards
                    else ("delay", fault_delays[k])
                    if k in fault_delays
                    else None,
                )
            )
        # Async exchange: candidates shipped worker-to-worker during
        # the previous step are delivered (merged) this step.
        shipped += self._sent_prev
        self._sent_prev = 0
        # Fixed per-worker command overhead (params + framing), so the
        # accounting never reads zero on an idle round.
        shipped += 64 * num_shards
        from time import perf_counter

        step_start = perf_counter()
        try:
            replies = self.executor._broadcast("step", per_worker=per_worker)
        except WorkerFailure as exc:
            if exc.round is None:
                exc.round = ordinal
            raise
        step_wall = perf_counter() - step_start
        # Per-phase timers: the critical path (slowest shard) of each
        # worker-reported phase; everything else — pickling, pipe
        # transport, scheduling, the async arrival wait — is the
        # exchange, booked as shuffle.
        compute = 0.0
        for phase in ("emit", "reduce", "apply"):
            worst = max((r["times"][phase] for r in replies), default=0.0)
            engine.counters.add_time(phase, worst)
            compute += worst
        engine.counters.add_time("shuffle", max(0.0, step_wall - compute))

        merged = sum(r["merged"] for r in replies)
        updated = sum(r["updated"] for r in replies)
        newly = sum(r["newly"] for r in replies)
        sent_now = sum(r.get("sent_bytes", 0) for r in replies)
        for k, reply in enumerate(replies):
            for dest, keys, values in reply["outgoing"]:
                self._remote.setdefault(dest, []).append((keys, values))

        # Memory-model enforcement, mirroring MREngine.round_batch for a
        # width-3 candidate batch (1 key word + 3 payload words per pair;
        # the wire-format source column is bookkeeping, not payload).
        words_per_pair = 4
        if engine.enforce_memory:
            if merged * words_per_pair > engine.spec.total_memory:
                raise MemoryLimitExceeded(
                    merged * words_per_pair, engine.spec.total_memory
                )
            worst = max((r["max_group"] for r in replies), default=0)
            if worst * words_per_pair > engine.spec.local_memory:
                bad = max(replies, key=lambda r: r["max_group"])
                raise MemoryLimitExceeded(
                    worst * words_per_pair,
                    engine.spec.local_memory,
                    bad["max_group_key"],
                )

        # ``messages`` is the round's shuffled-candidate count exactly as
        # the unsharded engine counts it: what the previous step emitted.
        engine.counters.record_round(messages=self._emitted_last, updates=0)
        self._emitted_last = sum(r["emitted"] for r in replies)
        if merged:
            engine.simulated_time += max(
                r["merged"] + r["groups"] for r in replies
            )
        engine.counters.updates += updated
        engine.counters.growing_steps += 1
        self.executor.bytes_shipped_per_round.append(shipped)
        self.executor.bytes_exchanged_per_round.append(
            shipped
            + sent_now
            + sum(
                _candidate_bytes(
                    [(k2, v2) for _, k2, v2 in r["outgoing"]]
                )
                for r in replies
            )
        )
        self._sent_prev = sent_now
        return updated, newly

    def in_flight(self) -> bool:
        return self._emitted_last > 0

    def discard_candidates(self) -> None:
        self._remote = {}
        self._emitted_last = 0
        self._sent_prev = 0
        self.executor._broadcast("discard")

    def freeze_assigned(self, iteration: int = 0) -> int:
        replies = self.executor._broadcast(
            "freeze_assigned",
            per_worker=[iteration] * self.executor.num_shards,
        )
        total = 0
        for count, outgoing in replies:
            total += count
            for dest, block in outgoing:
                self._replica_updates.setdefault(dest, []).append(block)
        return total

    def make_singletons(self, iteration: int = 0) -> int:
        return sum(
            self.executor._broadcast(
                "make_singletons",
                per_worker=[iteration] * self.executor.num_shards,
            )
        )

    def result(self) -> Tuple[np.ndarray, np.ndarray]:
        from repro.core.state import ClusterState

        slices = self.executor._broadcast("result")
        if self.plan.mode == "range":
            full = ClusterState.concat(slices)
            return full.center.copy(), full.dist_acc.copy()
        # lp shards hold arbitrary row sets: scatter-stitch each
        # shard's slice back to its global rows.
        center = np.full(self.num_nodes, -1, dtype=np.int64)
        dacc = np.full(self.num_nodes, np.inf)
        for k, state in enumerate(slices):
            rows = self.plan.shard_rows(k)
            center[rows] = state.center
            dacc[rows] = state.dist_acc
        return center, dacc

    # -- checkpoint support --------------------------------------------- #

    def snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """Stitch the workers' state slices into the global checkpoint arrays.

        Safe points only (the drivers guarantee no in-flight candidates
        and empty replica queues) — the snapshot is then portable to
        any backend, including resuming a sharded run under ``vector``.
        """
        n = self.num_nodes
        arrays = {
            "center": np.full(n, -1, dtype=np.int64),
            "dist": np.full(n, np.inf),
            "dist_acc": np.full(n, np.inf),
            "frozen": np.zeros(n, dtype=bool),
            "frozen_iter": np.zeros(n, dtype=np.int64),
            "changed": np.zeros(n, dtype=bool),
        }
        parts = self.executor._broadcast("snapshot")
        names = ("center", "dist", "dist_acc", "frozen", "frozen_iter", "changed")
        for k, part in enumerate(parts):
            rows = (
                slice(self.plan.starts[k], self.plan.starts[k + 1])
                if self.plan.mode == "range"
                else self.plan.shard_rows(k)
            )
            for name, column in zip(names, part):
                arrays[name][rows] = column
        return arrays

    def restore_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Rehydrate every worker from the global checkpoint arrays.

        Each worker slices its own rows and rebuilds its frozen-replica
        ghosts; the driver's in-flight routing state is cleared — at a
        safe point an uninterrupted run holds none either.
        """
        args = (
            arrays["center"],
            arrays["dist"],
            arrays["dist_acc"],
            arrays["frozen"],
            arrays["frozen_iter"],
            arrays["changed"],
        )
        self.executor._broadcast(
            "restore", per_worker=[args] * self.executor.num_shards
        )
        self._remote = {}
        self._replica_updates = {}
        self._emitted_last = 0
        self._sent_prev = 0


class ShardedExecutor:
    """Owner-compute backend: persistent shard workers, boundary exchange.

    Construction is cheap; workers spawn lazily on first use (when a
    driver asks for a growing state) and persist until :meth:`close` —
    across stages, Δ doublings, and both phases of CLUSTER2.  Each
    worker memory-maps one ``part-k.rcsr`` of the graph's partitioned
    store (created on demand via
    :func:`repro.graph.partition.ensure_partitioned`; in-memory graphs
    are spilled to a private temp store first).

    Engine integration: per-key rounds fall back to the serial loop and
    batch rounds (e.g. the quotient construction) run vectorized
    in-process, so a ``sharded`` engine executes every round kind; only
    growing steps use the owner-compute protocol.

    Parameters
    ----------
    num_shards:
        Worker/shard count (default: CPU count).
    partitioner:
        ``"lp"`` (default; env ``REPRO_SHARD_PARTITIONER``) or
        ``"range"``.  The backend defaults to the locality-aware
        assignment; library callers of ``ensure_partitioned`` keep the
        ``range`` default.
    exchange:
        ``"async"`` (default; env ``REPRO_SHARD_EXCHANGE``) overlaps
        boundary shipping with interior expansion over a worker pipe
        mesh; ``"serial"`` routes all candidates through the driver.
        Single-shard and in-process pools are always effectively
        serial.
    resident_mb:
        Out-of-core residency budget in MiB (env
        ``REPRO_SHARD_RESIDENT_MB``).  When set, workers run
        sequentially in-process and shard CSR mmaps are LRU-released
        to keep the mapped bytes under the budget — the big-graph
        tier; implies the serial exchange.

    Attributes
    ----------
    plan:
        The :class:`~repro.graph.partition.PartitionPlan` in effect
        (after workers spawn).
    bytes_shipped_per_round:
        Bytes delivered to workers each growing step: cross-shard
        candidate blocks (driver-routed or peer-shipped last step)
        plus one-time frozen-replica updates — the boundary exchange
        the sharded architecture exists to shrink.
    bytes_exchanged_per_round:
        Same plus the boundary candidates produced that step (both
        directions of the exchange).
    """

    #: Marks this executor as building its own growing state
    #: (see :func:`repro.mrimpl.growing_mr.make_growing_state`).
    owns_growing_state = True

    #: Non-growing batch rounds (e.g. the quotient construction) reduce
    #: in the driver process, so scatter-capable reducers may take the
    #: engine's ungrouped fast path.
    in_process_batch = True

    def __init__(
        self,
        num_shards: Optional[int] = None,
        *,
        partitioner: Optional[str] = None,
        exchange: Optional[str] = None,
        resident_mb: Optional[float] = None,
    ):
        if num_shards is not None and num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards or os.cpu_count() or 1
        if partitioner is None:
            partitioner = os.environ.get(PARTITIONER_ENV) or "lp"
        if partitioner not in ("range", "lp"):
            raise ValueError(
                f"unknown partitioner {partitioner!r} (use 'range' or 'lp')"
            )
        self.partitioner = partitioner
        if exchange is None:
            exchange = os.environ.get(EXCHANGE_ENV) or "async"
        if exchange not in ("serial", "async"):
            raise ValueError(
                f"unknown exchange {exchange!r} (use 'serial' or 'async')"
            )
        if resident_mb is None:
            raw = os.environ.get(RESIDENT_ENV)
            if raw:
                resident_mb = float(raw)
        if resident_mb is not None and resident_mb <= 0:
            raise ValueError("resident_mb must be > 0")
        self.resident_bytes = (
            int(resident_mb * 1024 * 1024) if resident_mb is not None else None
        )
        if self.resident_bytes is not None:
            # The out-of-core pool runs shards sequentially in-process;
            # a peer mesh cannot overlap anything there.
            exchange = "serial"
        self.exchange = exchange
        self.plan = None
        self.partitioned = None
        self.bytes_shipped_per_round: List[int] = []
        self.bytes_exchanged_per_round: List[int] = []
        self._graph = None
        self._pool = None
        self._tmpdir: Optional[str] = None
        self._finalizer = None
        self.spawn_count = 0

    @property
    def bytes_shipped(self) -> int:
        return sum(self.bytes_shipped_per_round)

    @property
    def exchange_active(self) -> bool:
        """Whether the peer-to-peer async exchange is actually running."""
        return bool(self._pool is not None and self._pool.exchange_active)

    @property
    def max_resident_bytes(self) -> Optional[int]:
        """Out-of-core pool's peak mapped shard bytes (else ``None``)."""
        return getattr(self._pool, "max_resident_bytes", None)

    @property
    def max_open_shards(self) -> Optional[int]:
        """Out-of-core pool's peak concurrently-mapped shard count."""
        return getattr(self._pool, "max_open_shards", None)

    # -- engine executor protocol (non-growing rounds) ------------------ #

    def run(self, groups, reducer, num_workers):
        from repro.mr.executor import SerialExecutor

        return SerialExecutor().run(groups, reducer, num_workers)

    def run_batch(self, keys, offsets, values, reducer, num_workers):
        return reducer(keys, offsets, values)

    # -- growing-state factory ----------------------------------------- #

    def growing_state(self, graph, engine) -> ShardedGrowingState:
        return ShardedGrowingState(graph, engine, self)

    # -- worker lifecycle ----------------------------------------------- #

    def _ensure_workers(self, graph) -> None:
        if self._pool is not None and self._graph is graph:
            return
        self.close()
        from repro.graph.partition import (
            ASSIGNMENT_NAME,
            LOCALIDX_NAME,
            ensure_partitioned,
        )
        from repro.graph.serialize import write_store

        if graph.is_mmap and graph.store_path is not None:
            store_path = Path(graph.store_path)
        else:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-sharded-")
            store_path = Path(self._tmpdir) / "graph.rcsr"
            write_store(graph, store_path)
        try:
            self.partitioned = ensure_partitioned(
                store_path,
                self.num_shards,
                graph=graph,
                partitioner=self.partitioner,
            )
        except OSError:
            # Store directory not writable (read-only datasets): fall
            # back to a private temp partition.
            if self._tmpdir is None:
                self._tmpdir = tempfile.mkdtemp(prefix="repro-sharded-")
            self.partitioned = ensure_partitioned(
                store_path,
                self.num_shards,
                graph=graph,
                directory=Path(self._tmpdir) / "shards",
                partitioner=self.partitioner,
            )
        self.plan = self.partitioned.plan
        if self.plan.mode == "range":
            spec = {
                "mode": "range",
                "starts": np.asarray(self.plan.starts, dtype=np.int64),
            }
        else:
            directory = Path(self.partitioned.directory)
            spec = {
                "mode": "lp",
                "num_shards": self.num_shards,
                "num_nodes": int(graph.num_nodes),
                "owners_path": str(directory / ASSIGNMENT_NAME),
                "localidx_path": str(directory / LOCALIDX_NAME),
            }
        shard_paths = [str(p) for p in self.partitioned.shard_paths]
        if self.resident_bytes is not None:
            self._pool = _InprocPool(shard_paths, spec, self.resident_bytes)
        else:
            self._pool = _PipePool(shard_paths, spec, self.exchange)
        self.spawn_count += 1
        self._graph = graph
        self._finalizer = weakref.finalize(
            self, self._cleanup, self._pool, self._tmpdir
        )

    def _broadcast(self, command: str, per_worker=None):
        if self._pool is None:
            raise RuntimeError("sharded workers are not running")
        return self._pool.broadcast(command, per_worker)

    @staticmethod
    def _cleanup(pool, tmpdir) -> None:
        if pool is not None:
            pool.close()
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)

    def close(self) -> None:
        """Shut down the workers and remove any private temp store."""
        if self._finalizer is not None:
            self._finalizer()  # runs _cleanup once, then detaches
            self._finalizer = None
        elif self._pool is not None:
            self._cleanup(self._pool, self._tmpdir)
        self._pool = None
        self._tmpdir = None
        self._graph = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
