"""Owner-compute sharded execution: persistent workers, boundary exchange.

The pool backends (``parallel``/``mmap``) re-publish every round's whole
grouped batch to stateless workers, so per-round cost scales with total
state even when only a thin frontier changed.  This module inverts that:

* the graph is partitioned once into contiguous node ranges
  (:mod:`repro.graph.partition`) and written as per-shard GraphStore
  files;
* each **persistent worker process** memory-maps its shard's CSR rows
  *once* at spawn and keeps its slice of the growing state
  (:class:`~repro.core.state.ClusterState` + a ``changed`` mask)
  resident across rounds, stages, and even the two phases of CLUSTER2;
* a Δ-growing step becomes: every worker merges the candidates that
  arrived for *its* nodes, adopts winners, expands its local frontier
  through its CSR rows, keeps the candidates whose targets it owns, and
  returns only the **cross-shard** candidates;
* the driver routes those boundary candidates to their owning shards for
  the next step.

Three boundary-traffic reductions keep the exchange proportional to the
*improving live frontier* rather than the cut size (all three are
semantics-preserving — see the respective docstrings for the argument):

1. **map-side combining** — at most one candidate per (shard, halo
   target) ships per round;
2. **halo filtering** — a candidate that cannot beat the best value this
   shard already shipped for the target is dropped at the source;
3. **frozen-replica ("ghost") state** — a boundary node's state ships
   *once* when Contract freezes it; from then on every neighbouring
   shard recomputes that node's (now immutable) contributions locally
   from its own symmetric arcs, so the per-stage forced broadcast of
   frozen nodes costs zero bytes.

Bit-identical results are by construction, not luck: workers run the
same :func:`~repro.mrimpl.growing_mr.apply_merged_candidates` /
:func:`~repro.mrimpl.growing_mr.emit_frontier` kernels as the
whole-graph array state, and the merge tie-break is the order-free
equivalent of the engine's stable-first rule: builders deduplicate
edges, so a target receives at most one candidate per source and
"earliest arrival" equals "smallest source id" — the winner is simply
the row minimizing ``(nd, center, source)``.  ``tests/mr/
test_sharded_parity.py`` asserts equality against ``serial``/``vector``
across shard counts.

The exchange transport is the worker pipes (pickled NumPy arrays).  On
one host this costs one copy each way; the point of the architecture is
that the driver↔worker protocol is already message-passing over
explicit byte streams, so a multi-host transport is a serialization
detail, not a rewrite.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MemoryLimitExceeded
from repro.mr import native as _native

__all__ = ["ShardedExecutor", "ShardedGrowingState"]

#: Candidate rows on the wire: ``(nd, center, dacc, source)``.  The
#: source column exists for the order-free merge tie-break; the state
#: kernels consume only the first three columns.
CANDIDATE_WIDTH = 4


def _empty_candidates() -> Tuple[np.ndarray, np.ndarray]:
    return (
        np.empty(0, dtype=np.int64),
        np.empty((0, CANDIDATE_WIDTH), dtype=np.float64),
    )


def _candidate_bytes(blocks) -> int:
    """Payload bytes of a list of ``(keys, values, ...)`` array blocks."""
    return sum(sum(a.nbytes for a in block) for block in blocks)


def _min_by_target(keys: np.ndarray, values: np.ndarray):
    """Per distinct target, the row minimizing ``(nd, center, source)``.

    The order-free form of the engine's merge: ``group_min_first`` keeps
    the *earliest* row among those minimizing ``(nd, center)``, and with
    at most one candidate per (source, target) arrival order within a
    target group is ascending source order — so "earliest minimal"
    equals "minimal ``(nd, center, source)``".  Returns ``(group_keys,
    winner_values, max_group, max_group_key)``.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    starts = np.concatenate(
        ([0], np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1)
    ).astype(np.int64)
    counts = np.diff(np.concatenate((starts, [len(sorted_keys)])))
    gid = np.repeat(np.arange(len(starts), dtype=np.int64), counts)
    rank = np.lexsort(
        (sorted_values[:, 3], sorted_values[:, 1], sorted_values[:, 0], gid)
    )
    firsts = rank[starts]
    at = int(np.argmax(counts))
    return (
        sorted_keys[starts],
        sorted_values[firsts],
        int(counts[at]),
        int(sorted_keys[starts][at]),
    )


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


class _ShardWorker:
    """State and step logic of one shard-owning worker process.

    Lives in the child process; the parent only ever sees the command /
    reply tuples.  All node ids crossing the pipe are global; state
    arrays are local to the shard's range ``[lo, hi)``.
    """

    def __init__(self, shard_path, lo: int, hi: int, shard_id: int, starts):
        from repro.graph.serialize import open_store
        from repro.mr.emit import EmitScratch
        from repro.mr.partitioner import range_partition_array

        shard = open_store(shard_path)  # local rows, global neighbour ids
        self.indptr = shard.indptr
        self.indices = shard.indices
        self.weights = shard.weights
        self._shard = shard  # keeps the mmap alive
        self.lo = lo
        self.hi = hi
        self.shard_id = shard_id
        self.starts = np.asarray(starts, dtype=np.int64)
        self.splitters = self.starts[1:-1]
        self.state = None  # allocated by the reset() below

        # The halo: every external node this shard has an arc to — the
        # only possible sources of incoming (and targets of outgoing)
        # cross-shard contributions, thanks to edge symmetry.
        external = np.flatnonzero(
            (self.indices < lo) | (self.indices >= hi)
        )
        degrees = np.diff(self.indptr)
        rows = np.repeat(
            np.arange(hi - lo, dtype=np.int64), degrees
        )
        self.ext_rows = rows[external]  # local target of the reverse arc
        self.ext_nbrs = self.indices[external]  # external endpoint
        self.ext_w = self.weights[external]
        self.halo = np.unique(self.ext_nbrs)
        self.ext_halo_idx = np.searchsorted(self.halo, self.ext_nbrs)

        #: Fused emit pipeline over this shard's rows: scratch-buffered
        #: push/pull expansion.  The reverse-CSR arc→row map memory-maps
        #: from the shard store's ``rsrc`` section when present
        #: (partitions written by this version carry it), and the
        #: boundary slice (outward arcs pull cannot reach target-major)
        #: stays resident as ``ext_rows`` + arc positions.
        self.emit_scratch = EmitScratch(
            self.indptr,
            self.indices,
            self.weights,
            base=lo,
            id_domain=int(self.starts[-1]),
            arc_sources=shard.rsrc,
            boundary_rows=self.ext_rows,
            boundary_aidx=external,
        )

        # Boundary incidence: for each local node with external arcs,
        # the distinct shards owning a neighbour — where its state must
        # be replicated when it freezes.
        if len(external):
            owners = range_partition_array(self.ext_nbrs, self.splitters)
            pairs = np.unique(
                np.stack((self.ext_rows, owners), axis=1), axis=0
            )
            self.boundary_nodes = pairs[:, 0]
            self.boundary_dests = pairs[:, 1]
        else:
            self.boundary_nodes = np.empty(0, dtype=np.int64)
            self.boundary_dests = np.empty(0, dtype=np.int64)
        self.reset()

    def reset(self):
        from repro.core.state import ClusterState
        from repro.mr.kernels import CountScratch, ScatterScratch

        if self.state is None:
            # First reset (from __init__): allocate everything once.
            self.state = ClusterState(self.hi - self.lo)
            self.changed = np.zeros(self.hi - self.lo, dtype=bool)
            #: Dense scatter buffers of the merge kernel, reused across
            #: rounds (sized to this shard's node range).
            self.scratch = ScatterScratch()
            #: Dense histogram buffer of the merge's group accounting.
            self.count_scratch = CountScratch()
            self.halo_best = np.full(len(self.halo), np.inf)
            # Frozen-replica ("ghost") state of halo nodes, filled by
            # freeze updates; immutable once set.
            self.r_frozen = np.zeros(len(self.halo), dtype=bool)
            self.r_center = np.full(len(self.halo), -1, dtype=np.int64)
            self.r_dist = np.full(len(self.halo), np.inf)
            self.r_dacc = np.full(len(self.halo), np.inf)
            self.r_frozen_iter = np.zeros(len(self.halo), dtype=np.int64)
        else:
            # Later resets (CLUSTER2's second phase): refill in place —
            # the state slice, scratch buffers, and candidate banks all
            # survive the phase boundary instead of being reallocated.
            s = self.state
            s.center.fill(-1)
            s.dist.fill(np.inf)
            s.dist_acc.fill(np.inf)
            s.frozen.fill(False)
            s.frozen_iter.fill(0)
            self.changed.fill(False)
            self.halo_best.fill(np.inf)
            self.r_frozen.fill(False)
            self.r_center.fill(-1)
            self.r_dist.fill(np.inf)
            self.r_dacc.fill(np.inf)
            self.r_frozen_iter.fill(0)
            self.emit_scratch.reset()
        #: Last merge's adopted local ids (ascending) — the live
        #: frontier; lets every non-forced round run without an O(n)
        #: mask rescan.
        self.active = np.empty(0, dtype=np.int64)
        self.pending = _empty_candidates()

    # -- commands ------------------------------------------------------ #

    def uncovered(self):
        return np.flatnonzero(~self.state.frozen).astype(np.int64) + self.lo

    def begin_stage(self, picks):
        s = self.state
        live = ~s.frozen
        s.center[live] = -1
        s.dist[live] = np.inf
        s.dist_acc[live] = np.inf
        self.changed[live] = False
        self.active = np.empty(0, dtype=np.int64)
        s.frozen_iter[live] = 0
        # Remote distances reset with the stage, so shipped-best history
        # no longer implies anything about receiver state.
        self.halo_best[:] = np.inf
        picks = np.asarray(picks, dtype=np.int64) - self.lo
        s.center[picks] = picks + self.lo
        s.dist[picks] = 0.0
        s.dist_acc[picks] = 0.0

    def _merge(self, cand_keys, cand_values):
        """Per-target winner over this shard's resident candidate batch.

        The scatter form of :func:`_min_by_target`: ``np.minimum.at``
        passes over dense per-node buffers (``(nd, center, source)``
        tie-break, all three columns unique per target — see the module
        docstring), reusing the shard-sized scratch across rounds; the
        per-group counts come from one ``np.bincount`` (counting-sort
        histogram), which also yields the memory-model extremes.
        ``REPRO_GROWING_KERNEL=sort`` selects the legacy sort-based
        merge for the A/B benchmark and parity CI.
        """
        from repro.mr.kernels import merge_kernel_name, scatter_min_rows

        if merge_kernel_name() == "sort":
            return _min_by_target(cand_keys, cand_values)
        local = cand_keys - self.lo
        ids, rows = scatter_min_rows(
            local,
            (cand_values[:, 0], cand_values[:, 1], cand_values[:, 3]),
            domain=self.hi - self.lo,
            scratch=self.scratch,
        )
        # Group sizes via the reusable dense histogram (O(C + G), zero
        # allocation beyond the G-sized gather; the buffer keeps its
        # all-zero invariant between rounds).  The counts feed nothing
        # but the memory-model extremes; argmax over ascending distinct
        # ids picks the same first-maximum group as the sort path.
        hist = self.count_scratch.hist(self.hi - self.lo)
        if _native.use_native():
            _native.bincount_into(local, hist)
        else:
            np.add.at(hist, local, 1)
        counts = hist[ids]
        hist[ids] = 0
        at = int(np.argmax(counts))
        return (
            ids + self.lo,
            cand_values[rows],
            int(counts[at]),
            int(ids[at]) + self.lo,
        )

    def apply_replicas(self, ids, center, dist, dacc, iteration):
        idx = np.searchsorted(self.halo, ids)
        self.r_frozen[idx] = True
        self.r_center[idx] = center
        self.r_dist[idx] = dist
        self.r_dacc[idx] = dacc
        self.r_frozen_iter[idx] = iteration

    def step(self, delta, force, rescale, iteration, incoming, replicas):
        from time import perf_counter

        from repro.mr.kernels import merge_kernel_name
        from repro.mrimpl.growing_mr import (
            apply_merged_candidates,
            emit_frontier,
        )

        for block in replicas:
            self.apply_replicas(*block)

        # Merge: this shard's resident candidates plus the delivered
        # cross-shard blocks; order is irrelevant (see _min_by_target).
        reduce_start = perf_counter()
        blocks = [self.pending] + [(k, v) for k, v in incoming]
        self.pending = _empty_candidates()
        cand_keys = np.concatenate([b[0] for b in blocks])
        cand_values = np.concatenate([b[1] for b in blocks])

        merged = len(cand_keys)
        max_group = 0
        max_group_key = -1
        num_groups = 0
        newly = 0
        adopted = np.empty(0, dtype=np.int64)
        keys = values = None
        if merged:
            keys, values, max_group, max_group_key = self._merge(
                cand_keys, cand_values
            )
            num_groups = len(keys)
        apply_start = perf_counter()
        self.changed[self.active] = False  # O(frontier), not O(n)
        if merged:
            newly, adopted = apply_merged_candidates(
                keys,
                values[:, :3],
                center=self.state.center,
                dist=self.state.dist,
                dacc=self.state.dist_acc,
                frozen=self.state.frozen,
                changed=self.changed,
                base=self.lo,
            )
        self.active = adopted
        updated = len(adopted)

        # Emit through the shard's CSR rows, then route by owner.  The
        # adopted frontier drives non-forced rounds directly.  The
        # scatter kernels take the fused scratch pipeline (direction-
        # optimized expansion, improvement filter on locally-owned
        # targets); the sort oracle keeps the legacy emit verbatim.
        emit_start = perf_counter()
        if merge_kernel_name() == "sort":
            emitted, outgoing, pending_blocks = self._emit_legacy(
                emit_frontier, delta, force, rescale, iteration
            )
        else:
            emitted, outgoing, pending_blocks = self._emit_fused(
                delta, force, rescale, iteration
            )
        # Regenerate incoming frozen-external contributions locally: on
        # a forced round every frozen replica contributes over this
        # shard's own (symmetric) boundary arcs, exactly as its owner
        # would have emitted them.  Appended to the resident pending
        # block for the next merge — the same timing as shipped
        # candidates.
        if force and len(self.halo):
            if merge_kernel_name() != "sort" and not rescale:
                # Fused fast path (Contract semantics): a ghost's
                # candidate distance is just the arc weight, and ghost
                # targets are locally owned — so one boolean sweep over
                # the boundary arcs applies every filter, including the
                # winner-preserving improvement pre-filter, *before*
                # any large array is compressed.
                li = self.ext_rows
                ok = self.r_frozen[self.ext_halo_idx]
                np.logical_and(ok, self.ext_w <= delta, out=ok)
                np.logical_and(ok, ~self.state.frozen[li], out=ok)
                np.logical_and(ok, self.ext_w < self.state.dist[li], out=ok)
                if ok.any():
                    hidx = self.ext_halo_idx[ok]
                    w = self.ext_w[ok]
                    ghost_keys = self.ext_rows[ok] + self.lo
                    ghost_values = np.column_stack(
                        (
                            w,  # nd = 0 + w for a frozen replica
                            self.r_center[hidx].astype(np.float64),
                            self.r_dacc[hidx] + w,
                            self.halo[hidx].astype(np.float64),
                        )
                    )
                    # Not added to ``emitted``: each ghost contribution
                    # is the regeneration of a candidate its owner
                    # already counted (and dropped from shipping).
                    pending_blocks.append((ghost_keys, ghost_values))
            else:
                if rescale:
                    r_eff = self.r_dist - rescale * (
                        iteration - self.r_frozen_iter
                    )
                else:
                    r_eff = np.zeros(len(self.halo))
                emits = self.r_frozen & (r_eff < delta)
                arc = emits[self.ext_halo_idx]
                if arc.any():
                    hidx = self.ext_halo_idx[arc]
                    w = self.ext_w[arc]
                    nd = r_eff[hidx] + w
                    ok = (w <= delta) & (nd <= delta)
                    hidx, w, nd = hidx[ok], w[ok], nd[ok]
                    ghost_keys = self.ext_rows[arc][ok] + self.lo
                    if merge_kernel_name() != "sort":
                        # Rescaled (Contract2) fused path: improvement
                        # pre-filter after the effective distances.
                        li2 = ghost_keys - self.lo
                        imp = ~self.state.frozen[li2] & (
                            nd < self.state.dist[li2]
                        )
                        hidx, w, nd = hidx[imp], w[imp], nd[imp]
                        ghost_keys = ghost_keys[imp]
                    if len(ghost_keys):
                        ghost_values = np.column_stack(
                            (
                                nd,
                                self.r_center[hidx].astype(np.float64),
                                self.r_dacc[hidx] + w,
                                self.halo[hidx].astype(np.float64),
                            )
                        )
                        pending_blocks.append((ghost_keys, ghost_values))
        if pending_blocks:
            self.pending = (
                np.concatenate([b[0] for b in pending_blocks]),
                np.concatenate([b[1] for b in pending_blocks]),
            )
        times = {
            "reduce": apply_start - reduce_start,
            "apply": emit_start - apply_start,
            "emit": perf_counter() - emit_start,
        }
        return {
            "updated": updated,
            "newly": newly,
            "merged": merged,
            "emitted": emitted,
            "groups": num_groups,
            "max_group": max_group,
            "max_group_key": max_group_key,
            "outgoing": outgoing,
            "times": times,
        }

    def _emit_legacy(self, emit_frontier, delta, force, rescale, iteration):
        """The sort-oracle emission: emit_frontier + owner routing."""
        out_keys, out_values3, out_srcs = emit_frontier(
            self.indptr,
            self.indices,
            self.weights,
            center=self.state.center,
            dist=self.state.dist,
            dacc=self.state.dist_acc,
            frozen=self.state.frozen,
            changed=self.changed,
            frozen_iter=self.state.frozen_iter,
            delta=delta,
            force=force,
            rescale=rescale,
            iteration=iteration,
            with_sources=True,
            sources=None if force else self.active,
        )
        emitted = len(out_keys)
        outgoing = []
        pending_blocks = []
        if emitted:
            from repro.mr.partitioner import range_partition_array

            out_values = np.column_stack(
                (out_values3, (out_srcs + self.lo).astype(np.float64))
            )
            owners = range_partition_array(out_keys, self.splitters)
            local = owners == self.shard_id
            pending_blocks.append((out_keys[local], out_values[local]))
            # Cross-shard candidates from frozen sources are dropped at
            # the source: every neighbouring shard regenerates them from
            # its frozen replicas (the ghost pass), for free.
            live_remote = ~local & ~self.state.frozen[out_srcs]
            for dest in np.unique(owners[live_remote]):
                mask = live_remote & (owners == dest)
                keys, values = self._combine_outgoing(
                    out_keys[mask], out_values[mask]
                )
                if len(keys):
                    outgoing.append((int(dest), keys, values))
        return emitted, outgoing, pending_blocks

    def _emit_fused(self, delta, force, rescale, iteration):
        """Scratch-buffered fused emission (scatter kernels).

        Runs the direction-optimized expansion of
        :class:`~repro.mr.emit.EmitScratch` over the shard's rows, then
        routes: locally-owned targets pass the improvement pre-filter
        (their ``dist``/``frozen`` state is resident, so unadoptable
        rows are dropped before their value columns exist — winner-
        preserving, see :mod:`repro.mr.emit`); cross-shard rows cannot
        be tested and ship exactly as before, through the same combine
        and halo filters.  ``emitted`` still counts the full emission,
        so the ``messages`` counter stays bit-identical to every other
        backend.
        """
        s = self.state
        keys, nd, src_local, aidx, emitted = self.emit_scratch.emit_raw(
            center=s.center,
            dist=s.dist,
            frozen=s.frozen,
            frozen_iter=s.frozen_iter,
            delta=delta,
            force=force,
            rescale=rescale,
            iteration=iteration,
            sources=None if force else self.active,
        )
        outgoing = []
        pending_blocks = []
        if not emitted:
            return 0, outgoing, pending_blocks
        local = (keys >= self.lo) & (keys < self.hi)

        # Locally-owned targets: improvement pre-filter, then one
        # resident block with the value columns built per survivor.
        lk = keys[local]
        li = lk - self.lo
        lnd = nd[local]
        imp = ~s.frozen[li] & (lnd < s.dist[li])
        if imp.any():
            lk = lk[imp]
            lnd = lnd[imp]
            lsrc = src_local[local][imp]
            lw = np.take(self.weights, aidx[local][imp])
            block = np.empty((len(lk), CANDIDATE_WIDTH), dtype=np.float64)
            block[:, 0] = lnd
            block[:, 1] = s.center[lsrc]
            block[:, 2] = s.dist_acc[lsrc]
            block[:, 2] += lw
            block[:, 3] = lsrc
            block[:, 3] += self.lo
            pending_blocks.append((lk.copy(), block))

        # Cross-shard candidates: receiver state is unknown, ship the
        # live-source rows through the usual combine/halo filters.
        remote = ~local
        remote &= ~s.frozen[src_local]
        if remote.any():
            from repro.mr.partitioner import range_partition_array

            rk = keys[remote]
            rnd = nd[remote]
            rsrc = src_local[remote]
            rw = np.take(self.weights, aidx[remote])
            rvals = np.empty((len(rk), CANDIDATE_WIDTH), dtype=np.float64)
            rvals[:, 0] = rnd
            rvals[:, 1] = s.center[rsrc]
            rvals[:, 2] = s.dist_acc[rsrc]
            rvals[:, 2] += rw
            rvals[:, 3] = rsrc
            rvals[:, 3] += self.lo
            owners = range_partition_array(rk, self.splitters)
            for dest in np.unique(owners):
                mask = owners == dest
                okeys, ovalues = self._combine_outgoing(rk[mask], rvals[mask])
                if len(okeys):
                    outgoing.append((int(dest), okeys, ovalues))
        return emitted, outgoing, pending_blocks

    def _combine_outgoing(self, keys, values):
        """Shrink one outgoing block to its improving per-target winners.

        Two semantics-preserving reductions before anything crosses the
        boundary:

        1. **Map-side combine** — keep one candidate per target, the
           ``(nd, center, source)``-minimal row.  The receiving merge
           computes a min over all blocks, and a min of per-block mins
           is the same min.
        2. **Halo filter** — drop candidates whose ``nd`` cannot beat
           the best this shard already shipped for the target this
           stage: the receiver merged that earlier candidate in a prior
           round, so its ``dist`` is already <= the earlier ``nd`` and
           a non-improving candidate can never be adopted (nor leave
           any other trace — non-adopted winners are discarded whole).

        Both change only the shipped-bytes accounting (like any
        map-side combiner), never the resulting state.
        """
        keys, values, _max_group, _key = _min_by_target(keys, values)
        idx = np.searchsorted(self.halo, keys)
        nd = values[:, 0]
        keep = nd < self.halo_best[idx]
        self.halo_best[idx[keep]] = nd[keep]
        return keys[keep], values[keep]

    def freeze_assigned(self, iteration):
        s = self.state
        sel = (s.center != -1) & ~s.frozen
        s.frozen[sel] = True
        self.changed[sel] = False
        s.frozen_iter[sel] = iteration
        # Ship the newly frozen boundary nodes' (now immutable) state to
        # every shard holding them in its halo — once, ever.
        outgoing = []
        if sel.any() and len(self.boundary_nodes):
            newly = sel[self.boundary_nodes]
            nodes = self.boundary_nodes[newly]
            dests = self.boundary_dests[newly]
            for dest in np.unique(dests):
                mask = dests == dest
                picked = nodes[mask]
                outgoing.append(
                    (
                        int(dest),
                        (
                            picked + self.lo,
                            s.center[picked].copy(),
                            s.dist[picked].copy(),
                            s.dist_acc[picked].copy(),
                            iteration,
                        ),
                    )
                )
        return int(np.count_nonzero(sel)), outgoing

    def make_singletons(self, iteration):
        s = self.state
        leftover = np.flatnonzero(~s.frozen)
        s.center[leftover] = leftover + self.lo
        s.dist[leftover] = 0.0
        s.dist_acc[leftover] = 0.0
        s.frozen[leftover] = True
        self.changed[leftover] = False
        s.frozen_iter[leftover] = iteration
        # No replica shipping: the drivers only make singletons after
        # the final growing step, so the replicas can never be read.
        return len(leftover)

    def discard_candidates(self):
        self.pending = _empty_candidates()
        # Some shipped candidates may now never be merged, so the
        # shipped-best history no longer proves anything about receiver
        # state; forget it (costs only redundant traffic later).
        self.halo_best[:] = np.inf

    def result(self):
        return self.state


def _shard_worker_main(conn, shard_path, lo, hi, shard_id, starts):
    """Entry point of a shard-owning worker process."""
    try:
        worker = _ShardWorker(shard_path, lo, hi, shard_id, starts)
    except BaseException as exc:  # noqa: BLE001 - reported to the driver
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    conn.send(("ok", None))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        command = message[0]
        if command == "close":
            conn.send(("ok", None))
            break
        try:
            if command == "step":
                reply = worker.step(*message[1:])
            elif command == "uncovered":
                reply = worker.uncovered()
            elif command == "begin_stage":
                reply = worker.begin_stage(message[1])
            elif command == "freeze_assigned":
                reply = worker.freeze_assigned(message[1])
            elif command == "make_singletons":
                reply = worker.make_singletons(message[1])
            elif command == "discard":
                reply = worker.discard_candidates()
            elif command == "reset":
                reply = worker.reset()
            elif command == "result":
                reply = worker.result()
            else:
                raise ValueError(f"unknown worker command {command!r}")
            conn.send(("ok", reply))
        except BaseException as exc:  # noqa: BLE001 - reported to the driver
            import traceback

            conn.send(("error", traceback.format_exc() or str(exc)))
    conn.close()


# --------------------------------------------------------------------- #
# Driver side
# --------------------------------------------------------------------- #


class ShardedGrowingState:
    """Driver half of the sharded growing state.

    Implements the same interface as
    :class:`~repro.mrimpl.growing_mr.ArrayGrowingState` (the CLUSTER /
    CLUSTER2 drivers are agnostic), but every array lives in the shard
    workers; the driver holds only the in-flight cross-shard candidate
    blocks and pending replica updates.  Counter accounting mirrors the
    batch path exactly — one engine round per step, ``messages`` = the
    candidates the previous step emitted — so round/step/update/message
    counts match the other backends bit for bit.  ``simulated_time``
    accumulates the owner-compute critical path: the busiest shard's
    merged + produced candidates per step.

    The memory-model checks and ``simulated_time`` are measured against
    the **resident merge the workers actually perform** — under the
    default fused pipeline that batch excludes locally-filtered
    unadoptable candidates, so these two quantities are smaller than
    under ``REPRO_GROWING_KERNEL=sort`` (which merges the unfiltered
    batch) and are not comparable across kernel modes or to the
    engine-managed backends.  This extends the existing convention
    (this backend's critical path was already the owner-compute model,
    reported but never cross-compared — see ``docs/mr_model.md`` §3);
    results and the rounds/messages/updates counters remain
    bit-identical everywhere.
    """

    def __init__(self, graph, engine, executor: "ShardedExecutor"):
        self.num_nodes = graph.num_nodes
        self.engine = engine
        self.executor = executor
        executor._ensure_workers(graph)
        self.plan = executor.plan
        executor._broadcast("reset")
        # remote[dest] -> list of (keys, values) awaiting delivery.
        self._remote: Dict[int, List] = {}
        # replica_updates[dest] -> list of freeze blocks to deliver.
        self._replica_updates: Dict[int, List] = {}
        self._emitted_last = 0

    # -- growing-state interface --------------------------------------- #

    def uncovered(self) -> np.ndarray:
        parts = self.executor._broadcast("uncovered")
        return np.concatenate(parts) if parts else np.empty(0, np.int64)

    def begin_stage(self, picks: np.ndarray) -> None:
        picks = np.asarray(picks, dtype=np.int64)
        owners = self.plan.owner_of(picks)
        self.executor._broadcast(
            "begin_stage",
            per_worker=[picks[owners == k] for k in range(self.executor.num_shards)],
        )

    def step(
        self,
        engine,
        delta: float,
        *,
        force: bool = False,
        rescale: float = 0.0,
        iteration: int = 0,
    ) -> Tuple[int, int]:
        num_shards = self.executor.num_shards
        deliver, self._remote = self._remote, {}
        replicas, self._replica_updates = self._replica_updates, {}
        per_worker = []
        shipped = 0
        for k in range(num_shards):
            incoming = deliver.get(k, [])
            ghosts = replicas.get(k, [])
            shipped += _candidate_bytes(incoming)
            shipped += sum(
                sum(np.asarray(a).nbytes for a in block[:4])
                for block in ghosts
            )
            per_worker.append(
                (delta, force, rescale, iteration, incoming, ghosts)
            )
        # Fixed per-worker command overhead (params + framing), so the
        # accounting never reads zero on an idle round.
        shipped += 64 * num_shards
        from time import perf_counter

        step_start = perf_counter()
        replies = self.executor._broadcast("step", per_worker=per_worker)
        step_wall = perf_counter() - step_start
        # Per-phase timers: the critical path (slowest shard) of each
        # worker-reported phase; everything else — pickling, pipe
        # transport, scheduling — is the exchange, booked as shuffle.
        compute = 0.0
        for phase in ("emit", "reduce", "apply"):
            worst = max((r["times"][phase] for r in replies), default=0.0)
            engine.counters.add_time(phase, worst)
            compute += worst
        engine.counters.add_time("shuffle", max(0.0, step_wall - compute))

        merged = sum(r["merged"] for r in replies)
        updated = sum(r["updated"] for r in replies)
        newly = sum(r["newly"] for r in replies)
        for k, reply in enumerate(replies):
            for dest, keys, values in reply["outgoing"]:
                self._remote.setdefault(dest, []).append((keys, values))

        # Memory-model enforcement, mirroring MREngine.round_batch for a
        # width-3 candidate batch (1 key word + 3 payload words per pair;
        # the wire-format source column is bookkeeping, not payload).
        words_per_pair = 4
        if engine.enforce_memory:
            if merged * words_per_pair > engine.spec.total_memory:
                raise MemoryLimitExceeded(
                    merged * words_per_pair, engine.spec.total_memory
                )
            worst = max((r["max_group"] for r in replies), default=0)
            if worst * words_per_pair > engine.spec.local_memory:
                bad = max(replies, key=lambda r: r["max_group"])
                raise MemoryLimitExceeded(
                    worst * words_per_pair,
                    engine.spec.local_memory,
                    bad["max_group_key"],
                )

        # ``messages`` is the round's shuffled-candidate count exactly as
        # the unsharded engine counts it: what the previous step emitted.
        engine.counters.record_round(messages=self._emitted_last, updates=0)
        self._emitted_last = sum(r["emitted"] for r in replies)
        if merged:
            engine.simulated_time += max(
                r["merged"] + r["groups"] for r in replies
            )
        engine.counters.updates += updated
        engine.counters.growing_steps += 1
        self.executor.bytes_shipped_per_round.append(shipped)
        self.executor.bytes_exchanged_per_round.append(
            shipped
            + sum(
                _candidate_bytes(
                    [(k2, v2) for _, k2, v2 in r["outgoing"]]
                )
                for r in replies
            )
        )
        return updated, newly

    def in_flight(self) -> bool:
        return self._emitted_last > 0

    def discard_candidates(self) -> None:
        self._remote = {}
        self._emitted_last = 0
        self.executor._broadcast("discard")

    def freeze_assigned(self, iteration: int = 0) -> int:
        replies = self.executor._broadcast(
            "freeze_assigned",
            per_worker=[iteration] * self.executor.num_shards,
        )
        total = 0
        for count, outgoing in replies:
            total += count
            for dest, block in outgoing:
                self._replica_updates.setdefault(dest, []).append(block)
        return total

    def make_singletons(self, iteration: int = 0) -> int:
        return sum(
            self.executor._broadcast(
                "make_singletons", per_worker=[iteration] * self.executor.num_shards
            )
        )

    def result(self) -> Tuple[np.ndarray, np.ndarray]:
        from repro.core.state import ClusterState

        slices = self.executor._broadcast("result")
        full = ClusterState.concat(slices)
        return full.center.copy(), full.dist_acc.copy()


class ShardedExecutor:
    """Owner-compute backend: persistent shard workers, boundary exchange.

    Construction is cheap; workers spawn lazily on first use (when a
    driver asks for a growing state) and persist until :meth:`close` —
    across stages, Δ doublings, and both phases of CLUSTER2.  Each
    worker memory-maps one ``part-k.rcsr`` of the graph's partitioned
    store (created on demand via
    :func:`repro.graph.partition.ensure_partitioned`; in-memory graphs
    are spilled to a private temp store first).

    Engine integration: per-key rounds fall back to the serial loop and
    batch rounds (e.g. the quotient construction) run vectorized
    in-process, so a ``sharded`` engine executes every round kind; only
    growing steps use the owner-compute protocol.

    Attributes
    ----------
    num_shards:
        Worker/shard count (default: CPU count).
    plan:
        The :class:`~repro.graph.partition.PartitionPlan` in effect
        (after workers spawn).
    bytes_shipped_per_round:
        Driver→worker bytes delivered each growing step: cross-shard
        candidate blocks plus one-time frozen-replica updates — the
        boundary exchange the sharded architecture exists to shrink.
    bytes_exchanged_per_round:
        Same plus the worker→driver boundary candidates collected that
        step (both directions of the exchange).
    """

    #: Marks this executor as building its own growing state
    #: (see :func:`repro.mrimpl.growing_mr.make_growing_state`).
    owns_growing_state = True

    #: Non-growing batch rounds (e.g. the quotient construction) reduce
    #: in the driver process, so scatter-capable reducers may take the
    #: engine's ungrouped fast path.
    in_process_batch = True

    def __init__(self, num_shards: Optional[int] = None):
        if num_shards is not None and num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards or os.cpu_count() or 1
        self.plan = None
        self.partitioned = None
        self.bytes_shipped_per_round: List[int] = []
        self.bytes_exchanged_per_round: List[int] = []
        self._graph = None
        self._procs: List = []
        self._conns: List = []
        self._tmpdir: Optional[str] = None
        self._finalizer = None
        self.spawn_count = 0

    @property
    def bytes_shipped(self) -> int:
        return sum(self.bytes_shipped_per_round)

    # -- engine executor protocol (non-growing rounds) ------------------ #

    def run(self, groups, reducer, num_workers):
        from repro.mr.executor import SerialExecutor

        return SerialExecutor().run(groups, reducer, num_workers)

    def run_batch(self, keys, offsets, values, reducer, num_workers):
        return reducer(keys, offsets, values)

    # -- growing-state factory ----------------------------------------- #

    def growing_state(self, graph, engine) -> ShardedGrowingState:
        return ShardedGrowingState(graph, engine, self)

    # -- worker lifecycle ----------------------------------------------- #

    def _ensure_workers(self, graph) -> None:
        if self._procs and self._graph is graph:
            return
        self.close()
        from repro.graph.partition import ensure_partitioned
        from repro.graph.serialize import write_store

        if graph.is_mmap and graph.store_path is not None:
            store_path = Path(graph.store_path)
        else:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-sharded-")
            store_path = Path(self._tmpdir) / "graph.rcsr"
            write_store(graph, store_path)
        try:
            self.partitioned = ensure_partitioned(
                store_path, self.num_shards, graph=graph
            )
        except OSError:
            # Store directory not writable (read-only datasets): fall
            # back to a private temp partition.
            if self._tmpdir is None:
                self._tmpdir = tempfile.mkdtemp(prefix="repro-sharded-")
            self.partitioned = ensure_partitioned(
                store_path,
                self.num_shards,
                graph=graph,
                directory=Path(self._tmpdir) / "shards",
            )
        self.plan = self.partitioned.plan

        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        starts = self.plan.starts
        for k in range(self.num_shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(
                    child,
                    str(self.partitioned.shard_paths[k]),
                    int(starts[k]),
                    int(starts[k + 1]),
                    k,
                    np.asarray(starts),
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
        self.spawn_count += 1
        self._graph = graph
        for k, conn in enumerate(self._conns):
            status, payload = conn.recv()
            if status != "ok":
                self.close()
                raise RuntimeError(f"shard worker {k} failed to start: {payload}")
        self._finalizer = weakref.finalize(
            self, self._cleanup, list(self._procs), list(self._conns),
            self._tmpdir,
        )

    def _broadcast(self, command: str, per_worker=None):
        """Send one command to every worker and gather the replies.

        ``per_worker`` supplies each worker's argument (a tuple is
        splatted into the command message).  All sends complete before
        any receive, so workers proceed in lockstep without deadlock.
        """
        if not self._conns:
            raise RuntimeError("sharded workers are not running")
        for k, conn in enumerate(self._conns):
            if per_worker is None:
                conn.send((command,))
            else:
                args = per_worker[k]
                if not isinstance(args, tuple):
                    args = (args,)
                conn.send((command,) + args)
        replies = []
        errors = []
        for k, conn in enumerate(self._conns):
            try:
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                errors.append(f"shard worker {k} died: {exc!r}")
                continue
            if status == "ok":
                replies.append(payload)
            else:
                errors.append(f"shard worker {k}: {payload}")
        if errors:
            raise RuntimeError(
                "sharded execution failed:\n" + "\n".join(errors)
            )
        return replies

    @staticmethod
    def _cleanup(procs, conns, tmpdir) -> None:
        for conn in conns:
            try:
                conn.send(("close",))
            except (OSError, ValueError):
                pass
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)

    def close(self) -> None:
        """Shut down the workers and remove any private temp store."""
        if self._finalizer is not None:
            self._finalizer()  # runs _cleanup once, then detaches
            self._finalizer = None
        elif self._procs:
            self._cleanup(self._procs, self._conns, self._tmpdir)
        self._procs = []
        self._conns = []
        self._tmpdir = None
        self._graph = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
