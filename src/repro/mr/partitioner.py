"""Partitioners: assign reducer keys to simulated workers.

In the MR model the assignment of keys to physical machines is abstracted
away; it matters here only for the executor's critical-path time model
(a round costs as much as its most loaded worker) and for exercising the
multiprocessing backend.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Hashable, List, Sequence

import numpy as np

__all__ = [
    "hash_partition",
    "hash_partition_array",
    "range_partition",
    "range_partition_array",
]


def hash_partition(key: Hashable, num_workers: int) -> int:
    """Stable hash partitioner.

    Uses a Fibonacci-style multiplicative mix of the builtin hash so that
    consecutive integer keys (the common case: node ids) spread across
    workers instead of landing in residue-class stripes.
    """
    h = hash(key)
    h ^= h >> 16
    return (h * 2654435761) % (2**32) % num_workers


def hash_partition_array(keys: np.ndarray, num_workers: int) -> np.ndarray:
    """Vectorized :func:`hash_partition` for non-negative int64 key arrays.

    Agrees element-wise with the scalar partitioner (``hash(k) == k`` for
    non-negative machine integers, and ``(a·b mod 2^64) mod 2^32`` equals
    ``(a·b) mod 2^32``), so per-key and batch rounds route every key to
    the same simulated worker — a precondition for identical critical-path
    accounting across backends.
    """
    h = np.asarray(keys, dtype=np.uint64)
    h = h ^ (h >> np.uint64(16))
    with np.errstate(over="ignore"):
        h = h * np.uint64(2654435761)
    return ((h & np.uint64(0xFFFFFFFF)) % np.uint64(num_workers)).astype(np.int64)


def range_partition(
    key, splitters: Sequence, num_workers: int
) -> int:
    """Range partitioner against sorted ``splitters``.

    ``splitters`` must be a sorted sequence of ``num_workers - 1`` boundary
    keys, as produced by sample-sort pivots; keys below ``splitters[0]`` go
    to worker 0, and so on.  This is the partitioner the O(log_{M_L} n)
    sorting primitive uses.
    """
    if len(splitters) != num_workers - 1:
        raise ValueError("need exactly num_workers - 1 splitters")
    return bisect_right(list(splitters), key)


def range_partition_array(
    keys: np.ndarray, splitters: Sequence, num_workers: int = None
) -> np.ndarray:
    """Vectorized :func:`range_partition` for int64 key arrays.

    ``np.searchsorted(..., side="right")`` computes ``bisect_right`` for
    every key at once, so the scalar and array partitioners agree
    element-wise (tests assert it).  ``num_workers`` is optional; when
    given it is validated against the splitter count exactly like the
    scalar version.  This is the assignment primitive of the
    owner-compute partition planner (:mod:`repro.graph.partition`):
    with splitters equal to the interior shard starts, key ``u`` maps to
    the shard whose contiguous range contains it.
    """
    if num_workers is not None and len(splitters) != num_workers - 1:
        raise ValueError("need exactly num_workers - 1 splitters")
    keys = np.asarray(keys, dtype=np.int64)
    splitters = np.asarray(splitters, dtype=np.int64)
    return np.searchsorted(splitters, keys, side="right").astype(np.int64)


def make_splitters(sorted_sample: Sequence, num_workers: int) -> List:
    """Pick ``num_workers - 1`` evenly spaced pivots from a sorted sample."""
    if num_workers <= 1 or not sorted_sample:
        return []
    step = len(sorted_sample) / num_workers
    return [sorted_sample[min(int((i + 1) * step), len(sorted_sample) - 1)]
            for i in range(num_workers - 1)]
