"""Partitioners: assign reducer keys to simulated workers.

In the MR model the assignment of keys to physical machines is abstracted
away; it matters here only for the executor's critical-path time model
(a round costs as much as its most loaded worker) and for exercising the
multiprocessing backend.

Beyond the classic hash/range key partitioners, this module houses the
**locality-aware graph partitioner** used by the owner-compute sharded
backend (:func:`lp_assignment`): a multilevel size-constrained label
propagation pipeline that assigns whole CSR rows to shards so that far
fewer arcs cross shard boundaries than under the contiguous-range
planner, while keeping per-shard arc loads within a configurable slack
of perfect balance.  The output is an explicit node→shard assignment
array — node ids are *never* relabeled, which is what keeps sharded
results bit-identical to the serial engine (the merge tie-break
``(nd, center, source)`` is over global ids).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Hashable, List, Optional, Sequence

import numpy as np

__all__ = [
    "hash_partition",
    "hash_partition_array",
    "range_partition",
    "range_partition_array",
    "lp_assignment",
    "assignment_cut_fraction",
]


def hash_partition(key: Hashable, num_workers: int) -> int:
    """Stable hash partitioner.

    Uses a Fibonacci-style multiplicative mix of the builtin hash so that
    consecutive integer keys (the common case: node ids) spread across
    workers instead of landing in residue-class stripes.
    """
    h = hash(key)
    h ^= h >> 16
    return (h * 2654435761) % (2**32) % num_workers


def hash_partition_array(keys: np.ndarray, num_workers: int) -> np.ndarray:
    """Vectorized :func:`hash_partition` for non-negative int64 key arrays.

    Agrees element-wise with the scalar partitioner (``hash(k) == k`` for
    non-negative machine integers, and ``(a·b mod 2^64) mod 2^32`` equals
    ``(a·b) mod 2^32``), so per-key and batch rounds route every key to
    the same simulated worker — a precondition for identical critical-path
    accounting across backends.
    """
    h = np.asarray(keys, dtype=np.uint64)
    h = h ^ (h >> np.uint64(16))
    with np.errstate(over="ignore"):
        h = h * np.uint64(2654435761)
    return ((h & np.uint64(0xFFFFFFFF)) % np.uint64(num_workers)).astype(np.int64)


def range_partition(
    key, splitters: Sequence, num_workers: int
) -> int:
    """Range partitioner against sorted ``splitters``.

    ``splitters`` must be a sorted sequence of ``num_workers - 1`` boundary
    keys, as produced by sample-sort pivots; keys below ``splitters[0]`` go
    to worker 0, and so on.  This is the partitioner the O(log_{M_L} n)
    sorting primitive uses.
    """
    if len(splitters) != num_workers - 1:
        raise ValueError("need exactly num_workers - 1 splitters")
    return bisect_right(list(splitters), key)


def range_partition_array(
    keys: np.ndarray, splitters: Sequence, num_workers: int = None
) -> np.ndarray:
    """Vectorized :func:`range_partition` for int64 key arrays.

    ``np.searchsorted(..., side="right")`` computes ``bisect_right`` for
    every key at once, so the scalar and array partitioners agree
    element-wise (tests assert it).  ``num_workers`` is optional; when
    given it is validated against the splitter count exactly like the
    scalar version.  This is the assignment primitive of the
    owner-compute partition planner (:mod:`repro.graph.partition`):
    with splitters equal to the interior shard starts, key ``u`` maps to
    the shard whose contiguous range contains it.
    """
    if num_workers is not None and len(splitters) != num_workers - 1:
        raise ValueError("need exactly num_workers - 1 splitters")
    keys = np.asarray(keys, dtype=np.int64)
    splitters = np.asarray(splitters, dtype=np.int64)
    return np.searchsorted(splitters, keys, side="right").astype(np.int64)


def make_splitters(sorted_sample: Sequence, num_workers: int) -> List:
    """Pick ``num_workers - 1`` evenly spaced pivots from a sorted sample."""
    if num_workers <= 1 or not sorted_sample:
        return []
    step = len(sorted_sample) / num_workers
    return [sorted_sample[min(int((i + 1) * step), len(sorted_sample) - 1)]
            for i in range(num_workers - 1)]


# --------------------------------------------------------------------- #
# Locality-aware graph partitioning (multilevel label propagation)
# --------------------------------------------------------------------- #
#
# The pipeline is the social-network variant of multilevel partitioning:
#
# 1. **Coarsen** by size-constrained label propagation clustering: each
#    node adopts the label with the largest incident arc weight among
#    its neighbours, moves ordered by gain and admitted against a
#    per-cluster weight cap (so the dense core cannot collapse into one
#    unsplittable cluster).  Clusters contract into super-nodes whose
#    arc weights are the inter-cluster arc counts; repeat until small.
# 2. **Seed** the coarsest graph with a longest-processing-time greedy
#    assignment of cluster weights to shards (near-perfect balance by
#    construction).
# 3. **Refine** while uncoarsening: balanced label propagation over the
#    partition — each node prefers the shard with the largest incident
#    arc weight, positive-gain moves are admitted best-first against a
#    per-shard inflow budget ``(1 + slack) * arcs / K``.
#
# The same refinement applied to the contiguous range plan gives a
# second candidate; :func:`lp_assignment` returns whichever of
# {range, refined range, multilevel} cuts the fewest arcs, so the
# locality-aware mode can never lose to the planner it replaces (on
# lattice-like graphs where contiguous ranges are already near-optimal,
# the range candidate simply wins).

#: Per-cluster weight cap during coarsening, as a fraction of the ideal
#: shard load ``arcs / K``.  Clusters must stay well below one shard so
#: the LPT seed can balance them.
_CLUSTER_CAP_FRACTION = 0.05

#: Stop coarsening below this many super-nodes (times ``K``).
_COARSEST_NODES = 200


def _budget_filter(
    group: np.ndarray, weights: np.ndarray, budget: np.ndarray
) -> np.ndarray:
    """Admit a prefix of each group (rows in priority order) under budget.

    Rows are grouped by ``group`` (arbitrary non-negative ints indexing
    ``budget``); within each group, rows are admitted in their incoming
    order while the running weight sum stays ``<= budget[g]``.  Returns
    the admission mask aligned with the input order.
    """
    order = np.argsort(group, kind="stable")
    gs = group[order]
    cs = np.cumsum(weights[order])
    new = np.ones(len(gs), dtype=bool)
    if len(gs):
        new[1:] = gs[1:] != gs[:-1]
    # Running sum within each group: subtract the cumsum just before
    # the group's first row (propagated by a running maximum).
    start_base = np.where(new, cs - weights[order], 0.0)
    base = cs - np.maximum.accumulate(np.where(new, start_base, -np.inf))
    keep = np.zeros(len(group), dtype=bool)
    keep[order] = base <= budget[gs]
    return keep


def _best_neighbor_label(
    arc_src: np.ndarray,
    arc_lab: np.ndarray,
    arc_w: Optional[np.ndarray],
    num_nodes: int,
):
    """Per source node, the neighbour label with the largest weight sum.

    Labels are arbitrary ints in ``[0, num_nodes)``.  One combined-key
    argsort groups ``(src, label)`` pairs (ids fit ``src * n + lab`` in
    int64 for any graph this library handles); a second, much smaller
    sort ranks each source's segments by weight.  Returns ``(best_label,
    best_weight)`` with label ``-1`` for arc-less nodes.
    """
    n = num_nodes
    code = arc_src * n + arc_lab
    order = np.argsort(code, kind="stable")
    code_s = code[order]
    new = np.ones(len(code_s), dtype=bool)
    if len(code_s):
        new[1:] = code_s[1:] != code_s[:-1]
    seg_id = np.cumsum(new) - 1
    nseg = int(seg_id[-1]) + 1 if len(code_s) else 0
    if arc_w is None:
        seg_w = np.bincount(seg_id, minlength=nseg).astype(np.float64)
    else:
        seg_w = np.bincount(seg_id, weights=arc_w[order], minlength=nseg)
    seg_src = arc_src[order][new]
    seg_lab = arc_lab[order][new]
    best_lab = np.full(n, -1, dtype=np.int64)
    best_w = np.zeros(n, dtype=np.float64)
    rank = np.lexsort((seg_w, seg_src))
    ss = seg_src[rank]
    last = np.ones(len(ss), dtype=bool)
    if len(ss):
        last[:-1] = ss[:-1] != ss[1:]
    pick = rank[last]
    best_lab[seg_src[pick]] = seg_lab[pick]
    best_w[seg_src[pick]] = seg_w[pick]
    return best_lab, best_w


def _lp_cluster(
    indptr: np.ndarray,
    indices: np.ndarray,
    arc_w: Optional[np.ndarray],
    node_w: np.ndarray,
    cap: float,
    rounds: int,
) -> np.ndarray:
    """Size-constrained label propagation clustering (coarsening step)."""
    n = len(indptr) - 1
    label = np.arange(n, dtype=np.int64)
    arc_src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    for _ in range(rounds):
        best_lab, best_w = _best_neighbor_label(
            arc_src, label[indices], arc_w, n
        )
        own = label[arc_src] == label[indices]
        if arc_w is None:
            cur_w = np.bincount(arc_src[own], minlength=n).astype(np.float64)
        else:
            cur_w = np.bincount(arc_src[own], weights=arc_w[own], minlength=n)
        movers = np.flatnonzero(
            (best_lab >= 0) & (best_lab != label) & (best_w > cur_w)
        )
        if not len(movers):
            break
        gain = best_w[movers] - cur_w[movers]
        order = movers[np.argsort(-gain, kind="stable")]
        loads = np.bincount(label, weights=node_w, minlength=n)
        room = np.maximum(cap - loads, 0.0)
        keep = _budget_filter(
            best_lab[order], node_w[order].astype(np.float64), room
        )
        moved = order[keep]
        if not len(moved):
            break
        label[moved] = best_lab[moved]
    return label


def _contract(indptr, indices, arc_w, node_w, label):
    """Contract clusters into super-nodes; arc weights sum per pair."""
    uniq, cid = np.unique(label, return_inverse=True)
    nc = len(uniq)
    cw = np.bincount(cid, weights=node_w.astype(np.float64), minlength=nc)
    n = len(indptr) - 1
    src = cid[np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))]
    dst = cid[indices]
    keep = src != dst
    pairs = src[keep] * nc + dst[keep]
    up, inv = np.unique(pairs, return_inverse=True)
    if arc_w is None:
        uw = np.bincount(inv, minlength=len(up)).astype(np.float64)
    else:
        uw = np.bincount(inv, weights=arc_w[keep], minlength=len(up))
    cs = (up // nc).astype(np.int64)
    cd = (up % nc).astype(np.int64)
    cindptr = np.zeros(nc + 1, dtype=np.int64)
    np.add.at(cindptr, cs + 1, 1)
    np.cumsum(cindptr, out=cindptr)
    return cindptr, cd, uw, cw, cid


def _lpt_seed(node_w: np.ndarray, num_shards: int) -> np.ndarray:
    """Longest-processing-time greedy: heaviest cluster → lightest shard."""
    order = np.argsort(-node_w, kind="stable")
    owner = np.zeros(len(node_w), dtype=np.int64)
    loads = np.zeros(num_shards)
    for i in order:
        k = int(np.argmin(loads))
        owner[i] = k
        loads[k] += node_w[i]
    return owner


def _lp_refine(
    indptr: np.ndarray,
    indices: np.ndarray,
    arc_w: Optional[np.ndarray],
    node_w: np.ndarray,
    owner: np.ndarray,
    num_shards: int,
    total_w: float,
    rounds: int,
    slack: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Balanced label propagation refinement of a K-way assignment.

    Positive-gain moves only, admitted best-first against the per-shard
    inflow budget ``(1 + slack) * total_w / K``; a random subsample of
    movers per round damps the two-colouring oscillation of synchronous
    label propagation.
    """
    n = len(indptr) - 1
    K = num_shards
    arc_src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    cap_hi = (1.0 + slack) * total_w / K
    idx = np.arange(n)
    node_wf = node_w.astype(np.float64)
    for _ in range(rounds):
        code = arc_src * K + owner[indices]
        if arc_w is None:
            aff = np.bincount(code, minlength=n * K).astype(np.float64)
        else:
            aff = np.bincount(code, weights=arc_w, minlength=n * K)
        aff = aff.reshape(n, K)
        cur = aff[idx, owner]
        pref = np.argmax(aff, axis=1)
        gain = aff[idx, pref] - cur
        movers = np.flatnonzero((pref != owner) & (gain > 0))
        if len(movers):
            movers = movers[rng.random(len(movers)) < 0.7]
        if not len(movers):
            continue
        order = movers[np.argsort(-gain[movers], kind="stable")]
        loads = np.bincount(owner, weights=node_wf, minlength=K)
        room = np.maximum(cap_hi - loads, 0.0)
        keep = _budget_filter(pref[order], node_wf[order], room)
        moved = order[keep]
        if not len(moved):
            break
        owner[moved] = pref[moved]
    return owner


def assignment_cut_fraction(graph, owner: np.ndarray) -> float:
    """Fraction of arcs whose endpoints live on different shards."""
    if not graph.num_arcs:
        return 0.0
    arc_src_owner = np.repeat(owner, np.diff(graph.indptr))
    cut = np.count_nonzero(arc_src_owner != owner[graph.indices])
    return cut / graph.num_arcs


def _range_owner(graph, num_shards: int) -> np.ndarray:
    """The contiguous arc-balanced range assignment (the legacy plan)."""
    n = graph.num_nodes
    arcs = graph.num_arcs
    targets = (arcs * np.arange(1, num_shards, dtype=np.int64)) // num_shards
    cuts = np.searchsorted(graph.indptr, targets, side="left")
    starts = np.concatenate(([0], np.clip(cuts, 0, n), [n])).astype(np.int64)
    starts = np.maximum.accumulate(starts)
    return np.repeat(np.arange(num_shards, dtype=np.int64), np.diff(starts))


def lp_assignment(
    graph,
    num_shards: int,
    *,
    slack: float = 0.5,
    seed: int = 0,
    refine_rounds: int = 20,
    cluster_rounds: int = 3,
) -> np.ndarray:
    """Locality-aware node→shard assignment (multilevel label propagation).

    Returns an int32 array mapping every node id to its owning shard.
    Node ids are untouched; only ownership changes.  ``slack`` bounds
    the arc-load imbalance the refinement may introduce (the heaviest
    shard stays under ``(1 + slack) * arcs / K`` arcs); looser slack
    buys a lower cut — on power-law graphs the balanced-cut frontier is
    steep, which is why the default trades 1.5x worst-case load for a
    roughly halved cut.  Deterministic for a fixed ``seed``.

    The returned assignment never cuts more arcs than the contiguous
    range plan: the range candidate competes in the final selection.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    n = graph.num_nodes
    if num_shards == 1 or n == 0:
        return np.zeros(n, dtype=np.int32)
    range_owner = _range_owner(graph, num_shards)
    if not graph.num_arcs or n <= 2 * num_shards:
        return range_owner.astype(np.int32)
    rng = np.random.default_rng(seed)
    K = num_shards
    degs = np.diff(graph.indptr).astype(np.float64)
    total_w = float(graph.num_arcs)

    # Coarsening: size-constrained LP clustering, contracted per level.
    cap_cluster = total_w / K * _CLUSTER_CAP_FRACTION
    ip = np.asarray(graph.indptr, dtype=np.int64)
    ix = np.asarray(graph.indices, dtype=np.int64)
    aw: Optional[np.ndarray] = None  # unit weights at the finest level
    nw = degs
    projections = []
    while len(ip) - 1 > max(4 * K, _COARSEST_NODES):
        label = _lp_cluster(ip, ix, aw, nw, cap_cluster, cluster_rounds)
        cip, cix, cuw, cnw, cid = _contract(ip, ix, aw, nw, label)
        if len(cip) - 1 >= len(ip) - 1:
            break  # no contraction progress: coarsest level reached
        projections.append(cid)
        ip, ix, aw, nw = cip, cix, cuw, cnw

    # Initial partition at the coarsest level, then refine + project.
    owner = _lpt_seed(nw, K)
    owner = _lp_refine(
        ip, ix, aw, nw, owner, K, total_w, refine_rounds, slack, rng
    )
    for cid in reversed(projections):
        owner = owner[cid]
    multilevel_owner = _lp_refine(
        np.asarray(graph.indptr, dtype=np.int64),
        np.asarray(graph.indices, dtype=np.int64),
        None,
        degs,
        owner.copy(),
        K,
        total_w,
        max(4, refine_rounds // 2),
        slack,
        rng,
    )

    # Second candidate: the range plan refined in place (wins on
    # lattice-like graphs where contiguity is already near-optimal).
    refined_range = _lp_refine(
        np.asarray(graph.indptr, dtype=np.int64),
        np.asarray(graph.indices, dtype=np.int64),
        None,
        degs,
        range_owner.copy(),
        K,
        total_w,
        max(4, refine_rounds // 2),
        slack,
        rng,
    )

    candidates = [range_owner, refined_range, multilevel_owner]
    cuts = [assignment_cut_fraction(graph, c) for c in candidates]
    best = candidates[int(np.argmin(cuts))]
    return best.astype(np.int32)
