"""Parameters of the MR(M_T, M_L) computational model.

The model (Pietracaprina et al., "Space-round tradeoffs for MapReduce
computations") is parameterized by the total memory ``M_T`` available to the
computation and the local memory ``M_L`` available to each reducer.  A
"practical" algorithm in the big-data regime uses ``M_T`` linear in the
input and ``M_L`` polynomially sublinear (``M_L = Θ(n^ε)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["MRSpec"]


@dataclass(frozen=True)
class MRSpec:
    """Memory parameters of an MR(M_T, M_L) instance.

    Attributes
    ----------
    total_memory:
        ``M_T`` — aggregate memory in words across the platform.
    local_memory:
        ``M_L`` — memory words available to a single reducer.
    num_workers:
        Number of physical machines simulated.  Only affects the
        critical-path time model of the executor (a round's simulated time
        is the maximum work assigned to one worker), never correctness.
    """

    total_memory: int
    local_memory: int
    num_workers: int = 1

    def __post_init__(self):
        if self.local_memory <= 0:
            raise ConfigurationError("local_memory (M_L) must be positive")
        if self.total_memory < self.local_memory:
            raise ConfigurationError("total_memory (M_T) must be >= local_memory (M_L)")
        if self.num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")

    @classmethod
    def for_input_size(
        cls, n: int, *, epsilon: float = 0.5, num_workers: int = 1, slack: float = 4.0
    ) -> "MRSpec":
        """Spec with ``M_L = Θ(n^ε)`` and linear total memory.

        ``slack`` multiplies both budgets so that constant-factor overheads
        of the simulated reducers (headers, duplicated keys) do not trip the
        limit checker on tiny inputs.
        """
        if not 0 < epsilon <= 1:
            raise ConfigurationError("epsilon must lie in (0, 1]")
        n = max(int(n), 2)
        ml = max(int(slack * n**epsilon), 2)
        mt = max(int(slack * n), ml)
        return cls(total_memory=mt, local_memory=ml, num_workers=num_workers)

    def sort_rounds(self, n: int) -> int:
        """Round budget ``O(log_{M_L} n)`` of Fact 1 for input size ``n``.

        Returned as ``ceil(log n / log M_L)`` with a floor of 1; used by
        tests to check that the primitive implementations meet the bound.
        """
        n = max(int(n), 2)
        if self.local_memory >= n:
            return 1
        return max(1, math.ceil(math.log(n) / math.log(self.local_memory)))
