"""Batch (array-valued) reducers for the vectorized MR execution path.

The legacy engine round materializes every ``(key, value)`` pair as a
Python object and groups them through a dict-of-lists — faithful to the
model, but the interpreter becomes the bottleneck long before the
algorithm does.  The batch protocol replaces the multiset with two
parallel arrays:

* ``keys`` — ``int64`` reducer keys, one per pair;
* ``values`` — a ``float64`` matrix with one row per pair (``d`` columns
  of payload).

:meth:`repro.mr.engine.MREngine.round_batch` performs the shuffle with a
bounded-key counting sort (``np.bincount`` + prefix sum) or a stable
``np.argsort`` fallback — the vectorized equivalent of the
dict-of-lists grouping.  A **batch reducer** then processes *all*
groups in one call::

    reduce_batch(keys, offsets, values) -> (out_keys, out_values, out_counts)

where ``keys`` holds the ``g`` distinct group keys in ascending order,
``offsets`` is a ``g + 1`` prefix array such that group ``i`` owns rows
``values[offsets[i]:offsets[i + 1]]`` (rows within a group preserve input
order — the shuffle is stable, exactly like the legacy path), and the
result is a new pair batch plus ``out_counts[i]`` = number of output rows
produced by group ``i``.  The counts let the engine attribute output
traffic to the worker that hosts the producing group, keeping the
critical-path time model identical to the per-key path.

Reducers here are module-level functions (or ``functools.partial`` of
them) so the shared-memory process-pool backend can ship them to workers
by reference instead of pickling closures.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["PairBatch", "group_min_first", "group_sum", "group_count"]

#: The value a batch round trades in: ``(keys, values, counts)`` arrays.
PairBatch = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _group_ids(num_groups: int, offsets: np.ndarray) -> np.ndarray:
    return np.repeat(np.arange(num_groups, dtype=np.int64), np.diff(offsets))


def group_min_first(
    keys: np.ndarray,
    offsets: np.ndarray,
    values: np.ndarray,
    sort_cols: int = None,
) -> PairBatch:
    """Keep, per group, the first row among those minimizing ``sort_cols``.

    Rows compare lexicographically on their leading ``sort_cols`` columns
    (all columns when ``None``); among fully tied rows the earliest in
    input order wins, because ``np.lexsort`` is stable.  With
    ``sort_cols=2`` over ``(distance, center, ...)`` rows this is exactly
    the paper's relaxation tie-break — smallest distance, then smallest
    center index, then arrival order — as implemented by both the
    vectorized core path and the per-key ``_growing_reducer``.

    This is the **reference oracle**: the O(rows) scatter-min kernels of
    :mod:`repro.mr.kernels` implement the identical tie-break without
    sorting and are property-tested against this function.
    """
    num_groups = len(keys)
    if num_groups == 0:
        return keys, values, np.zeros(0, dtype=np.int64)
    d = values.shape[1] if sort_cols is None else int(sort_cols)
    gid = _group_ids(num_groups, offsets)
    order = np.lexsort(
        tuple(values[:, c] for c in range(d - 1, -1, -1)) + (gid,)
    )
    firsts = order[offsets[:-1]]
    return keys, values[firsts], np.ones(num_groups, dtype=np.int64)


def group_sum(keys: np.ndarray, offsets: np.ndarray, values: np.ndarray) -> PairBatch:
    """Column-wise sum per group (one output row per group)."""
    num_groups = len(keys)
    if num_groups == 0:
        return keys, values, np.zeros(0, dtype=np.int64)
    sums = np.add.reduceat(values, offsets[:-1], axis=0)
    return keys, sums, np.ones(num_groups, dtype=np.int64)


def group_count(keys: np.ndarray, offsets: np.ndarray, values: np.ndarray) -> PairBatch:
    """Group sizes (the word-count reducer of the batch world)."""
    num_groups = len(keys)
    counts = np.diff(offsets).astype(np.float64).reshape(-1, 1)
    return keys, counts, np.ones(num_groups, dtype=np.int64)
