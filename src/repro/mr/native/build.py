"""Compile-on-demand for the native kernel library.

The native tier ships as one dependency-free C file (``_kernels.c``)
compiled into a shared library with whatever C compiler the host has
(``$CC``, else ``cc``, else ``gcc``) — no numba, no Cython, no
setuptools, so the tier costs nothing when it cannot be built: every
failure path returns ``None`` and the callers fall back to the pure
NumPy kernels.

The library is cached outside the source tree (``$REPRO_NATIVE_DIR``,
else ``~/.cache/repro-native``, else the system temp dir) under a name
derived from the source hash, so upgrades rebuild automatically and
concurrent builders (pool workers, parallel test runs) race benignly:
each compiles to a private temp file and ``os.replace``\\ s it into
place atomically.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path
from typing import Optional

__all__ = [
    "NATIVE_DIR_ENV",
    "BUILD_TIMEOUT_ENV",
    "build_library",
    "library_path",
]

#: Override for the build cache directory.
NATIVE_DIR_ENV = "REPRO_NATIVE_DIR"
#: Wall-clock limit (seconds) on one compiler invocation; a hung
#: toolchain degrades to the pure tier instead of wedging the run.
BUILD_TIMEOUT_ENV = "REPRO_NATIVE_BUILD_TIMEOUT_S"

_SOURCE = Path(__file__).with_name("_kernels.c")
_CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c11", "-fno-math-errno")


def _build_timeout() -> float:
    try:
        timeout = float(os.environ.get(BUILD_TIMEOUT_ENV, "120"))
    except ValueError:
        return 120.0
    return timeout if timeout > 0 else 120.0


def _cache_dir() -> Path:
    override = os.environ.get(NATIVE_DIR_ENV)
    if override:
        return Path(override)
    home = Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-native"
    return Path(tempfile.gettempdir()) / "repro-native"


def _compiler() -> Optional[str]:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def library_path() -> Path:
    """Deterministic cache path for the current source + platform."""
    digest = hashlib.sha256(
        _SOURCE.read_bytes() + repr((_CFLAGS, sys.platform)).encode()
    ).hexdigest()[:16]
    return _cache_dir() / f"repro_kernels_{digest}.so"


def build_library() -> Optional[Path]:
    """Return the compiled library path, building it if needed.

    ``None`` (with a one-line warning on the first failure) when no
    compiler is available or compilation fails — the caller degrades to
    the pure tier.
    """
    try:
        target = library_path()
        if target.exists():
            return target
        cc = _compiler()
        if cc is None:
            warnings.warn(
                "repro native kernels: no C compiler found; "
                "using the pure NumPy tier",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        # Host tuning first (the cache is per-machine); a compiler that
        # rejects -march=native gets a second, portable attempt.
        proc = None
        timeout = _build_timeout()
        for extra in (("-march=native",), ()):
            cmd = [cc, *_CFLAGS, *extra, "-o", str(tmp), str(_SOURCE)]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=timeout
                )
            except subprocess.TimeoutExpired:
                warnings.warn(
                    f"repro native kernels: {cc} exceeded the "
                    f"{timeout:.0f}s build deadline "
                    f"({BUILD_TIMEOUT_ENV} to change); "
                    "using the pure NumPy tier",
                    RuntimeWarning,
                    stacklevel=2,
                )
                tmp.unlink(missing_ok=True)
                return None
            if proc.returncode == 0:
                break
        if proc is None or proc.returncode != 0:
            warnings.warn(
                "repro native kernels: compilation failed "
                f"({proc.stderr.strip().splitlines()[-1] if proc.stderr else cmd}); "
                "using the pure NumPy tier",
                RuntimeWarning,
                stacklevel=2,
            )
            tmp.unlink(missing_ok=True)
            return None
        os.replace(tmp, target)  # atomic: concurrent builders race benignly
        return target
    except Exception as exc:  # pragma: no cover - defensive
        warnings.warn(
            f"repro native kernels: build unavailable ({exc}); "
            "using the pure NumPy tier",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
