"""Native kernel tier: compiled hot kernels + threaded emit, behind a seam.

``REPRO_KERNEL_IMPL=py|native|auto`` selects the implementation tier for
the Δ-growing hot kernels (push/pull emit with the improvement
pre-filter, ``scatter_min_rows``, ``merge_candidates``'s grouped
min-first, ``counting_group_keys``, and the frozen-replay histogram).
``auto`` (the default) uses the native tier whenever the shared library
can be built and loaded (see :mod:`repro.mr.native.build`), degrading
silently to the pure NumPy tier otherwise — the pure implementations
always remain and stay the parity oracle.  ``REPRO_NATIVE_DISABLE=1``
force-disables the native tier even when a compiler exists (the
no-toolchain CI job uses it to prove the fallback).

Like ``REPRO_GROWING_KERNEL`` and ``REPRO_EMIT_MODE``, the switches are
read from the environment **per call**, so benchmarks and the parity
suites flip tiers between runs in one process, and forked pool workers
inherit the active tier through their environment snapshot.
:func:`impl_overrides` is the config-plumbing entry (used by
``repro.runtime.runner``): it applies :class:`ClusterConfig` overrides
by setting the environment for the run's duration, which is what makes
them visible to executors forked during the run.

Threaded emit
-------------
``ClusterConfig.emit_threads`` / ``REPRO_EMIT_THREADS`` (default
``os.cpu_count()``) set how many threads the native emit expansion may
use.  The model is deterministic by construction: the frontier (push)
or arc range (pull) is split into contiguous chunks, each chunk's
kernel writes into a **disjoint region** of the shared output banks
(regions sized by the chunk's degree-sum upper bound), and a final
order-preserving compaction (``rk_compact``) packs the regions — so the
candidate columns are bit-identical to the single-threaded pass for
*any* thread count.  ctypes releases the GIL around every kernel call,
which is what lets the chunks run concurrently.

Dispatch seam (GPU-ready)
-------------------------
:func:`kernel_table` is the dispatch point, keyed by **array namespace
× implementation tier**: ``("numpy", "py")`` and ``("numpy", "native")``
are registered today, and a future CuPy backend plugs in as
``("cupy", "native")`` without touching the call sites — they resolve
through the same table.  Unknown namespaces fall back to the pure NumPy
tier so partial backends stay correct while they grow.
"""

from __future__ import annotations

import ctypes
import os
from contextlib import contextmanager
from threading import Lock
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.mr.native.build import NATIVE_DIR_ENV, build_library

__all__ = [
    "KERNEL_IMPL_ENV",
    "NATIVE_DISABLE_ENV",
    "EMIT_THREADS_ENV",
    "NATIVE_DIR_ENV",
    "KERNEL_IMPLS",
    "THREAD_MIN_ARCS",
    "requested_impl",
    "kernel_impl",
    "use_native",
    "native_available",
    "emit_threads",
    "impl_overrides",
    "resolved_info",
    "kernel_table",
]

#: Implementation-tier switch: ``py`` | ``native`` | ``auto`` (default).
KERNEL_IMPL_ENV = "REPRO_KERNEL_IMPL"

#: Any non-empty value force-disables the native tier (no-toolchain CI).
NATIVE_DISABLE_ENV = "REPRO_NATIVE_DISABLE"

#: Thread count for the chunked emit expansion (default: CPU count).
EMIT_THREADS_ENV = "REPRO_EMIT_THREADS"

KERNEL_IMPLS = ("py", "native", "auto")

#: Below this many expanded arcs a round is emitted single-threaded —
#: chunk dispatch overhead would dominate skinny frontiers.
THREAD_MIN_ARCS = 4096

_lib: Optional[ctypes.CDLL] = None
_lib_failed = False
_lib_lock = Lock()

_P = ctypes.c_void_p
_I = ctypes.c_int64
_D = ctypes.c_double

_SIGNATURES = {
    # ids, n, c0, s0, c1, s1, c2, s2, ncols, b0, b1, b2, brow, stamp,
    # gen, out_ids, out_rows -> distinct
    "rk_scatter_min_rows": (
        [_P, _I, _P, _I, _P, _I, _P, _I, _I, _P, _P, _P, _P, _P, _I, _P, _P],
        _I,
    ),
    "rk_count_keys": ([_P, _I, _P, _P, _P], _I),
    "rk_bincount": ([_P, _I, _P], None),
    "rk_group_min_first": ([_P, _I, _I, _P, _I, _P], None),
    "rk_emit_push": ([_P, _P, _P, _P, _P, _I, _D, _P, _P, _P, _P], _I),
    "rk_emit_pull": ([_P, _P, _P, _I, _I, _P, _P, _D, _I, _P, _P, _P, _P], _I),
    "rk_compact": ([_P, _P, _P, _P, _P, _P, _I], _I),
    "rk_filter_improve": (
        [_P, _P, _P, _P, _I, _P, _P, _P, _P, _P, _P, _P, _P, _P, _P],
        _I,
    ),
    # keys, nd, src, aidx, n, dist, frozen, weights, center,
    # hist, gk, gc, do_acct, ngroups, f_* banks -> kept
    "rk_finish_batch": (
        [_P, _P, _P, _P, _I, _P, _P, _P, _P, _P, _P, _P, _I, _P,
         _P, _P, _P, _P, _P, _P],
        _I,
    ),
    "rk_begin_stage": ([_P, _I, _P, _P, _P, _P, _P], None),
    "rk_freeze_assigned": ([_P, _I, _I, _P, _P, _P], _I),
    "rk_forced_sets": ([_P, _P, _P, _P, _I, _D, _P, _P], _I),
    "rk_cache_append": ([_P, _P, _P, _I, _I, _I, _P, _P, _P, _P, _I], _I),
    "rk_cache_emit": (
        [_P, _P, _P, _P, _I, _D, _I, _I, _P, _P, _P, _P, _I, _P],
        _I,
    ),
    "rk_cache_retire": ([_P, _P, _P, _I, _P, _I], _I),
    "rk_partition_loads": ([_P, _I, _P, _I, _P], _I),
    "rk_cache_replay": ([_P, _P, _P, _I, _P, _P, _P, _P, _P, _P], _I),
    "rk_materialize": ([_P, _P, _I, _P, _P, _P, _P, _P], None),
    "rk_core_emit_push": (
        [_P, _P, _P, _P, _P, _I, _D, _P, _P, _P, _P, _P, _P, _P],
        _I,
    ),
    "rk_core_emit_pull": (
        [_P, _P, _P, _I, _P, _P, _D, _P, _P, _P, _P, _P, _P, _P],
        _I,
    ),
}


def _load() -> Optional[ctypes.CDLL]:
    """The bound shared library, building it on first use; ``None`` on failure."""
    global _lib, _lib_failed
    if os.environ.get(NATIVE_DISABLE_ENV):
        return None
    if _lib is not None:
        return _lib
    if _lib_failed:
        return None
    with _lib_lock:
        if _lib is not None or _lib_failed:
            return _lib
        path = build_library()
        if path is None:
            _lib_failed = True
            return None
        try:
            lib = ctypes.CDLL(str(path))
            for name, (argtypes, restype) in _SIGNATURES.items():
                fn = getattr(lib, name)
                fn.argtypes = argtypes
                fn.restype = restype
        except (OSError, AttributeError):
            _lib_failed = True
            return None
        _lib = lib
        return _lib


# -- resolution --------------------------------------------------------- #


def requested_impl() -> str:
    """The requested tier from :data:`KERNEL_IMPL_ENV` (``auto`` default)."""
    value = os.environ.get(KERNEL_IMPL_ENV, "auto")
    return value if value in ("py", "native") else "auto"


def native_available() -> bool:
    """Whether the native library is built, loadable, and not disabled."""
    return _load() is not None


def use_native() -> bool:
    """Resolve the tier for this call: ``True`` = dispatch native."""
    req = requested_impl()
    if req == "py":
        return False
    # "native" and "auto" both degrade gracefully when the library is
    # unavailable — the pure tier is always correct, just slower.
    return _load() is not None


def kernel_impl() -> str:
    """The resolved implementation tier: ``"native"`` or ``"py"``."""
    return "native" if use_native() else "py"


def emit_threads() -> int:
    """Resolved emit thread count (env override, else CPU count, min 1)."""
    raw = os.environ.get(EMIT_THREADS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return os.cpu_count() or 1


@contextmanager
def impl_overrides(
    impl: Optional[str] = None, threads: Optional[int] = None
) -> Iterator[None]:
    """Apply :class:`ClusterConfig` kernel overrides for a run's duration.

    Overrides are applied through the environment (and restored on
    exit) because that is the one channel every consumer shares: the
    in-process kernels read it per call, and pool/sharded workers
    forked *during* the run inherit it in their environment snapshot.
    ``impl="auto"``/``None`` and ``threads=None`` defer to whatever the
    caller's environment already says.
    """
    updates = {}
    if impl is not None and impl != "auto":
        updates[KERNEL_IMPL_ENV] = impl
    if threads is not None:
        updates[EMIT_THREADS_ENV] = str(int(threads))
    saved = {key: os.environ.get(key) for key in updates}
    os.environ.update(updates)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def resolved_info() -> Dict[str, object]:
    """The resolved tier, attached to counters/results/bench records."""
    return {
        "kernel_impl": kernel_impl(),
        "emit_threads": emit_threads(),
        "native_available": native_available(),
    }


# -- low-level helpers -------------------------------------------------- #


def _ptr(arr: Optional[np.ndarray]) -> int:
    return 0 if arr is None else arr.ctypes.data


def _col(arr: np.ndarray) -> Tuple[int, int]:
    """(pointer, element stride) of a float64 column, views included."""
    return arr.ctypes.data, arr.strides[0] // 8


def _contig_i8(arr: np.ndarray) -> np.ndarray:
    if arr.dtype != np.int64 or not arr.flags.c_contiguous:
        return np.ascontiguousarray(arr, dtype=np.int64)
    return arr


# -- kernel wrappers (native tier only; callers gate on use_native()) --- #


def scatter_min_rows(ids, cols, *, domain, scratch):
    """Native :func:`repro.mr.kernels.scatter_min_rows` (same contract)."""
    lib = _load()
    n = len(ids)
    ids = _contig_i8(ids)
    col_bufs, row_buf, stamp, gen, out_ids, out_rows = scratch.ensure_native(
        domain, len(cols)
    )
    ncols = len(cols)
    c = [(0, 0)] * 3
    b = [None] * 3
    for i in range(ncols):
        c[i] = _col(cols[i])
        b[i] = col_bufs[i]
    t = lib.rk_scatter_min_rows(
        _ptr(ids), n,
        c[0][0], c[0][1], c[1][0], c[1][1], c[2][0], c[2][1], ncols,
        _ptr(b[0]), _ptr(b[1]), _ptr(b[2]),
        _ptr(row_buf), _ptr(stamp), gen,
        _ptr(out_ids), _ptr(out_rows),
    )
    return out_ids[:t].copy(), out_rows[:t].copy()


def count_keys(keys, hist, out_keys, out_counts):
    """Distinct ascending keys + counts; ``hist`` all-zero in and out."""
    lib = _load()
    keys = _contig_i8(keys)
    return lib.rk_count_keys(
        _ptr(keys), len(keys), _ptr(hist), _ptr(out_keys), _ptr(out_counts)
    )


def bincount_into(keys, hist) -> None:
    """``np.add.at(hist, keys, 1)`` without the buffered-ufunc overhead."""
    lib = _load()
    keys = _contig_i8(keys)
    lib.rk_bincount(_ptr(keys), len(keys), _ptr(hist))


def group_min_first_rows(values, sort_cols, offsets) -> Optional[np.ndarray]:
    """Winner row per offsets-delimited group; ``None`` when the matrix
    layout is not native-friendly (caller falls back to the pure tier)."""
    if (
        values.dtype != np.float64
        or values.ndim != 2
        or not values.flags.c_contiguous
    ):
        return None
    lib = _load()
    ngroups = len(offsets) - 1
    offsets = _contig_i8(offsets)
    out = np.empty(ngroups, dtype=np.int64)
    lib.rk_group_min_first(
        _ptr(values), values.shape[1], sort_cols, _ptr(offsets), ngroups,
        _ptr(out),
    )
    return out


def filter_improve(
    keys, nd, src, aidx, dist, frozen, weights, center,
    f_keys, f_nd, f_src, f_w, f_ctr, f_srcf,
) -> int:
    """Fused improvement filter + column materialization (_finish tail)."""
    lib = _load()
    return lib.rk_filter_improve(
        _ptr(keys), _ptr(nd), _ptr(src), _ptr(aidx), len(keys),
        _ptr(dist), _ptr(frozen), _ptr(weights), _ptr(center),
        _ptr(f_keys), _ptr(f_nd), _ptr(f_src),
        _ptr(f_w), _ptr(f_ctr), _ptr(f_srcf),
    )


def finish_batch(
    keys, nd, src, aidx, dist, frozen, weights, center,
    hist, gk, gc, do_acct,
    f_keys, f_nd, f_src, f_w, f_ctr, f_srcf,
):
    """One fused stream over the unfiltered candidate columns: stamped
    accounting histogram (ascending distinct keys + counts, hist left
    all-zero) plus the improvement filter + materialization of
    :func:`filter_improve`.  Returns ``(kept, ngroups)``; ``ngroups``
    is 0 when ``do_acct`` is false.
    """
    lib = _load()
    ngroups = np.zeros(1, dtype=np.int64)
    kept = lib.rk_finish_batch(
        _ptr(keys), _ptr(nd), _ptr(src), _ptr(aidx), len(keys),
        _ptr(dist), _ptr(frozen), _ptr(weights), _ptr(center),
        _ptr(hist), _ptr(gk), _ptr(gc), 1 if do_acct else 0,
        _ptr(ngroups),
        _ptr(f_keys), _ptr(f_nd), _ptr(f_src),
        _ptr(f_w), _ptr(f_ctr), _ptr(f_srcf),
    )
    return kept, int(ngroups[0])


def begin_stage(frozen, center, dist, dacc, changed, frozen_iter) -> None:
    """Reset all five state columns of the live rows in one pass."""
    lib = _load()
    lib.rk_begin_stage(
        _ptr(frozen), len(frozen), _ptr(center), _ptr(dist), _ptr(dacc),
        _ptr(changed), _ptr(frozen_iter),
    )


def freeze_assigned(center, iteration, frozen, changed, frozen_iter) -> int:
    """Freeze every assigned live row; returns the freshly-frozen count."""
    lib = _load()
    return lib.rk_freeze_assigned(
        _ptr(center), len(center), iteration,
        _ptr(frozen), _ptr(changed), _ptr(frozen_iter),
    )


def forced_sets(center, dist, frozen, degs, delta, mask, eff) -> int:
    """Forced-round mask/eff build (rescale == 0); returns degree sum."""
    lib = _load()
    return lib.rk_forced_sets(
        _ptr(center), _ptr(dist), _ptr(frozen), _ptr(degs),
        len(center), delta, _ptr(mask), _ptr(eff),
    )


def cache_append(k, s, a, lo, hi, hist, ck, cs, ca, pos) -> int:
    """Append locally-owned rows to the cache columns; returns appended."""
    lib = _load()
    return lib.rk_cache_append(
        _ptr(k), _ptr(s), _ptr(a), len(k), lo, hi, _ptr(hist),
        _ptr(ck), _ptr(cs), _ptr(ca), pos,
    )


def cache_emit(
    indptr, indices, weights, src_ids, delta, lo, hi, hist, ck, cs, ca, pos
):
    """Expand frozen sources straight into the cache columns.

    Returns ``(appended, total_emitted)`` — the light-arc multiset size
    minus the appended count is the externally-targeted (inert) mass.
    """
    lib = _load()
    total = np.zeros(1, dtype=np.int64)
    appended = lib.rk_cache_emit(
        _ptr(indptr), _ptr(indices), _ptr(weights),
        _ptr(src_ids), len(src_ids), delta, lo, hi,
        _ptr(hist), _ptr(ck), _ptr(cs), _ptr(ca), pos, _ptr(total),
    )
    return appended, int(total[0])


def partition_loads(keys, weights, nworkers, loads) -> int:
    """Max simulated-worker load for one batch round.

    ``loads`` is an all-zero ``nworkers`` int64 scratch (restored to
    zero); the hash mix matches ``hash_partition_array`` bit for bit.
    """
    lib = _load()
    return lib.rk_partition_loads(
        _ptr(keys), len(keys), _ptr(weights), nworkers, _ptr(loads)
    )


def cache_retire(ck, cs, ca, length, frozen, lo) -> int:
    """In-place compaction dropping frozen targets; returns new length."""
    lib = _load()
    return lib.rk_cache_retire(
        _ptr(ck), _ptr(cs), _ptr(ca), length, _ptr(frozen), lo
    )


def cache_replay(ck, cs, ca, length, weights, dist, fk, fnd, fs, fa) -> int:
    """Improvement-filtered cache replay; returns the surviving count."""
    lib = _load()
    return lib.rk_cache_replay(
        _ptr(ck), _ptr(cs), _ptr(ca), length, _ptr(weights), _ptr(dist),
        _ptr(fk), _ptr(fnd), _ptr(fs), _ptr(fa),
    )


def materialize(src, aidx, weights, center, w, ctr, srcf) -> None:
    """Gather w/center/float-source columns for filtered rows."""
    lib = _load()
    lib.rk_materialize(
        _ptr(src), _ptr(aidx), len(src), _ptr(weights), _ptr(center),
        _ptr(w), _ptr(ctr), _ptr(srcf),
    )


# -- threaded emit ------------------------------------------------------ #

_pool = None
_pool_size = 0
_pool_lock = Lock()


def _get_pool(workers: int):
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < workers:
            from concurrent.futures import ThreadPoolExecutor

            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-emit"
            )
            _pool_size = workers
        return _pool


def _compact(lib, out_keys, out_nd, out_src, out_aidx, bases, counts) -> int:
    bases = np.asarray(bases, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    return lib.rk_compact(
        _ptr(out_keys), _ptr(out_nd), _ptr(out_src), _ptr(out_aidx),
        _ptr(bases), _ptr(counts), len(counts),
    )


def emit_push_into(
    indptr, indices, weights, src_ids, eff, delta, counts,
    out_keys, out_nd, out_src, out_aidx, threads,
) -> int:
    """Fused push expansion into the given banks; returns the row count.

    ``counts`` is the per-source degree array (the caller already has it
    for bank sizing).  With ``threads > 1`` and enough arcs, the source
    list is split into contiguous chunks balanced by degree-sum; each
    chunk writes its own disjoint region (based at the chunk's
    cumulative degree offset — an exact upper bound on its output), and
    ``rk_compact`` packs the regions in chunk order, so the result is
    bit-identical to the single-threaded pass.
    """
    lib = _load()
    nsrc = len(src_ids)

    def chunk(lo: int, hi: int, base: int) -> int:
        return lib.rk_emit_push(
            _ptr(indptr), _ptr(indices), _ptr(weights),
            _ptr(src_ids[lo:hi]), _ptr(eff[lo:hi]), hi - lo, delta,
            _ptr(out_keys[base:]), _ptr(out_nd[base:]),
            _ptr(out_src[base:]), _ptr(out_aidx[base:]),
        )

    cum = np.cumsum(counts)
    total = int(cum[-1]) if nsrc else 0
    if threads <= 1 or nsrc < 2 or total < THREAD_MIN_ARCS:
        return chunk(0, nsrc, 0)
    nchunks = min(threads, nsrc)
    targets = np.arange(1, nchunks) * (total // nchunks)
    bounds = np.unique(
        np.concatenate(([0], np.searchsorted(cum, targets, side="left") + 1,
                        [nsrc]))
    )
    bounds = bounds[bounds <= nsrc]
    bases = [0 if lo == 0 else int(cum[lo - 1]) for lo in bounds[:-1]]
    pool = _get_pool(len(bounds) - 1)
    futures = [
        pool.submit(chunk, int(lo), int(hi), base)
        for lo, hi, base in zip(bounds[:-1], bounds[1:], bases)
    ]
    chunk_counts = [f.result() for f in futures]
    return _compact(
        lib, out_keys, out_nd, out_src, out_aidx, bases, chunk_counts
    )


def emit_pull_into(
    arc_rows, indices, weights, mask, eff, delta, base,
    out_keys, out_nd, out_src, out_aidx, threads,
) -> int:
    """Fused pull expansion over all arcs into the given banks.

    Threading splits the arc range into contiguous chunks; chunk c's
    region is based at its arc offset (a trivially exact upper bound),
    then ``rk_compact`` packs the regions — bit-identical for any
    thread count.
    """
    lib = _load()
    narcs = len(indices)

    def chunk(lo: int, hi: int, out_base: int) -> int:
        return lib.rk_emit_pull(
            _ptr(arc_rows), _ptr(indices), _ptr(weights), lo, hi,
            _ptr(mask), _ptr(eff), delta, base,
            _ptr(out_keys[out_base:]), _ptr(out_nd[out_base:]),
            _ptr(out_src[out_base:]), _ptr(out_aidx[out_base:]),
        )

    if threads <= 1 or narcs < THREAD_MIN_ARCS:
        return chunk(0, narcs, 0)
    nchunks = min(threads, narcs)
    bounds = np.linspace(0, narcs, nchunks + 1).astype(np.int64)
    pool = _get_pool(nchunks)
    futures = [
        pool.submit(chunk, int(lo), int(hi), int(lo))
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]
    chunk_counts = [f.result() for f in futures]
    return _compact(
        lib, out_keys, out_nd, out_src, out_aidx, bounds[:-1], chunk_counts
    )


def core_emit_push(
    indptr, indices, weights, srcs, eff, delta, frozen, dist, total,
):
    """Serial-core push candidates: ``(cand_t, cand_d, cand_s, cand_w, messages)``."""
    lib = _load()
    cand_t = np.empty(total, dtype=np.int64)
    cand_d = np.empty(total)
    cand_s = np.empty(total, dtype=np.int64)
    cand_w = np.empty(total)
    messages = np.zeros(1, dtype=np.int64)
    t = lib.rk_core_emit_push(
        _ptr(indptr), _ptr(indices), _ptr(weights),
        _ptr(srcs), _ptr(eff), len(srcs), delta,
        _ptr(frozen), _ptr(dist), _ptr(messages),
        _ptr(cand_t), _ptr(cand_d), _ptr(cand_s), _ptr(cand_w),
    )
    return (
        cand_t[:t], cand_d[:t], cand_s[:t], cand_w[:t], int(messages[0])
    )


def core_emit_pull(
    arc_rows, indices, weights, emitting, effd, delta, frozen, dist,
):
    """Serial-core pull candidates: ``(cand_t, cand_d, cand_s, cand_w, messages)``."""
    lib = _load()
    narcs = len(indices)
    cand_t = np.empty(narcs, dtype=np.int64)
    cand_d = np.empty(narcs)
    cand_s = np.empty(narcs, dtype=np.int64)
    cand_w = np.empty(narcs)
    messages = np.zeros(1, dtype=np.int64)
    t = lib.rk_core_emit_pull(
        _ptr(arc_rows), _ptr(indices), _ptr(weights), narcs,
        _ptr(emitting), _ptr(effd), delta,
        _ptr(frozen), _ptr(dist), _ptr(messages),
        _ptr(cand_t), _ptr(cand_d), _ptr(cand_s), _ptr(cand_w),
    )
    return (
        cand_t[:t], cand_d[:t], cand_s[:t], cand_w[:t], int(messages[0])
    )


# -- dispatch seam ------------------------------------------------------ #

#: Kernel tables keyed by (array namespace, implementation tier).  The
#: hot call sites in ``mr/kernels.py`` / ``mr/emit.py`` /
#: ``core/growing.py`` branch on :func:`use_native` directly (a dict
#: lookup per candidate row would be measurable); this table is the
#: *extension* seam those branches implement: a GPU backend registers
#: ``("cupy", "native")`` entries here and :func:`kernel_table` routes
#: to them when the caller's arrays live in that namespace.  Tested in
#: ``tests/mr/test_native_kernels.py``.
KERNEL_TABLES: Dict[Tuple[str, str], Dict[str, object]] = {}


def _register_tables() -> None:
    from repro.mr import kernels as _k

    KERNEL_TABLES[("numpy", "py")] = {
        "scatter_min_rows": _k.scatter_min_rows,
        "counting_group_keys": _k.counting_group_keys,
        "group_min_first": _k.scatter_group_min_first,
    }
    KERNEL_TABLES[("numpy", "native")] = {
        "scatter_min_rows": scatter_min_rows,
        "count_keys": count_keys,
        "group_min_first_rows": group_min_first_rows,
        "emit_push_into": emit_push_into,
        "emit_pull_into": emit_pull_into,
        "filter_improve": filter_improve,
        "core_emit_push": core_emit_push,
        "core_emit_pull": core_emit_pull,
    }


def kernel_table(namespace: str = "numpy") -> Dict[str, object]:
    """The kernel table for an array namespace under the resolved tier.

    Unknown namespaces (and the native tier when unavailable) resolve
    to ``("numpy", "py")`` — the always-correct pure implementations.
    """
    if not KERNEL_TABLES:
        _register_tables()
    key = (namespace, kernel_impl())
    if key in KERNEL_TABLES:
        return KERNEL_TABLES[key]
    return KERNEL_TABLES[("numpy", "py")]
