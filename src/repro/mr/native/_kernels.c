/* Native kernel tier for the Δ-growing hot paths.
 *
 * Compiled on demand by repro.mr.native.build (cc -O3 -fPIC -shared) and
 * loaded through ctypes; every entry point is a plain C function over
 * int64 / float64 / uint8 buffers so the Python wrappers can hand numpy
 * array pointers straight through (ctypes releases the GIL for the
 * duration of each call, which is what lets the threaded emit path run
 * chunks concurrently from a ThreadPoolExecutor).
 *
 * Parity contract: each kernel computes bit-for-bit what its NumPy
 * counterpart computes — same IEEE double arithmetic (one add per
 * candidate), same strict-less lexicographic tie-breaks, same output
 * ordering (ascending ids from a qsort over the touched list; push
 * candidates in source-major CSR order; pull candidates in arc order).
 * The pure tier stays the oracle: tests/mr/test_native_kernels.py pits
 * every function here against it.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;
typedef uint8_t u8;

/* The pull kernels stream arcs sequentially but gather per-source
 * state through indices[a] — a dependent random access that stalls the
 * whole loop.  indices itself streams, so the gather address is known
 * well ahead: prefetching it ~64 arcs out overlaps the misses. */
#if defined(__GNUC__) || defined(__clang__)
#define RK_PREFETCH(p) __builtin_prefetch((p), 0, 1)
#define RK_PREFETCH_W(p) __builtin_prefetch((p), 1, 1)
#else
#define RK_PREFETCH(p) ((void)0)
#define RK_PREFETCH_W(p) ((void)0)
#endif
#define RK_PF_DIST 64

static int cmp_i64(const void *pa, const void *pb)
{
    i64 a = *(const i64 *)pa, b = *(const i64 *)pb;
    return (a > b) - (a < b);
}

/* Winner row per distinct id under the (c0, c1, c2, arrival) tie-break.
 *
 * Single pass with generation-stamped dense buffers: `stamp[id] == gen`
 * marks ids seen this call, so the domain-sized scratch never needs a
 * reset.  Columns are strided (element strides s0/s1/s2) so 2-D column
 * views pass through without a copy.  Writes the distinct ids
 * (ascending) into out_ids and their winner rows into out_rows; returns
 * the distinct count.  Matches kernels.scatter_min_rows: the strict
 * "less" comparison keeps the earliest row among full ties.
 */
i64 rk_scatter_min_rows(
    const i64 *ids, i64 n,
    const double *c0, i64 s0,
    const double *c1, i64 s1,
    const double *c2, i64 s2,
    i64 ncols,
    double *b0, double *b1, double *b2,
    i64 *brow, i64 *stamp, i64 gen,
    i64 *out_ids, i64 *out_rows)
{
    i64 t = 0;
    for (i64 i = 0; i < n; ++i) {
        if (i + RK_PF_DIST < n)
            RK_PREFETCH_W(&stamp[ids[i + RK_PF_DIST]]);
        i64 id = ids[i];
        if (stamp[id] != gen) {
            stamp[id] = gen;
            out_ids[t++] = id;
            if (ncols > 0) b0[id] = c0[i * s0];
            if (ncols > 1) b1[id] = c1[i * s1];
            if (ncols > 2) b2[id] = c2[i * s2];
            brow[id] = i;
            continue;
        }
        if (ncols > 0) {
            double v = c0[i * s0];
            if (v > b0[id]) continue;
            if (v < b0[id]) goto take;
        }
        if (ncols > 1) {
            double v = c1[i * s1];
            if (v > b1[id]) continue;
            if (v < b1[id]) goto take;
        }
        if (ncols > 2) {
            double v = c2[i * s2];
            if (v > b2[id]) continue;
            if (v < b2[id]) goto take;
        }
        continue; /* full tie: the earlier arrival stays */
    take:
        if (ncols > 0) b0[id] = c0[i * s0];
        if (ncols > 1) b1[id] = c1[i * s1];
        if (ncols > 2) b2[id] = c2[i * s2];
        brow[id] = i;
    }
    qsort(out_ids, (size_t)t, sizeof(i64), cmp_i64);
    for (i64 j = 0; j < t; ++j)
        out_rows[j] = brow[out_ids[j]];
    return t;
}

/* Counting shuffle: histogram bounded keys into `hist` (all-zero on
 * entry, restored to all-zero on exit), emitting the distinct keys
 * ascending plus their counts.  Returns the distinct count. */
i64 rk_count_keys(
    const i64 *keys, i64 n, i64 *hist, i64 *out_keys, i64 *out_counts)
{
    i64 t = 0;
    for (i64 i = 0; i < n; ++i) {
        if (i + RK_PF_DIST < n)
            RK_PREFETCH_W(&hist[keys[i + RK_PF_DIST]]);
        i64 k = keys[i];
        if (hist[k]++ == 0)
            out_keys[t++] = k;
    }
    qsort(out_keys, (size_t)t, sizeof(i64), cmp_i64);
    for (i64 j = 0; j < t; ++j) {
        out_counts[j] = hist[out_keys[j]];
        hist[out_keys[j]] = 0;
    }
    return t;
}

/* Plain bincount accumulation (hist is NOT reset). */
void rk_bincount(const i64 *keys, i64 n, i64 *hist)
{
    for (i64 i = 0; i < n; ++i) {
        if (i + RK_PF_DIST < n)
            RK_PREFETCH_W(&hist[keys[i + RK_PF_DIST]]);
        hist[keys[i]] += 1;
    }
}

/* Grouped min-first: per offsets-delimited group, the first row in
 * input order minimizing the leading sort_cols columns of the
 * C-contiguous (nrows, stride) values matrix. */
void rk_group_min_first(
    const double *values, i64 stride, i64 sort_cols,
    const i64 *offsets, i64 ngroups, i64 *out_rows)
{
    for (i64 g = 0; g < ngroups; ++g) {
        i64 lo = offsets[g], hi = offsets[g + 1];
        i64 best = lo;
        const double *bv = values + lo * stride;
        for (i64 r = lo + 1; r < hi; ++r) {
            const double *rv = values + r * stride;
            for (i64 c = 0; c < sort_cols; ++c) {
                if (rv[c] < bv[c]) {
                    best = r;
                    bv = rv;
                    break;
                }
                if (rv[c] > bv[c])
                    break;
            }
        }
        out_rows[g] = best;
    }
}

/* Fused push expansion + light/Δ filter (EmitScratch._emit_push).
 * Expands src_ids (any contiguous chunk) through their CSR rows,
 * keeping arcs with w <= delta and eff + w <= delta.  Output order is
 * source-major, arcs in CSR order — the legacy arrival order.  Output
 * pointers may be pre-offset for disjoint per-chunk regions; returns
 * the rows written. */
i64 rk_emit_push(
    const i64 *indptr, const i64 *indices, const double *weights,
    const i64 *src_ids, const double *eff, i64 nsrc, double delta,
    i64 *out_keys, double *out_nd, i64 *out_src, i64 *out_aidx)
{
    i64 t = 0;
    for (i64 s = 0; s < nsrc; ++s) {
        i64 u = src_ids[s];
        double e = eff[s];
        i64 hi = indptr[u + 1];
        for (i64 a = indptr[u]; a < hi; ++a) {
            double w = weights[a];
            if (w > delta)
                continue;
            double nd = e + w;
            if (nd > delta)
                continue;
            out_keys[t] = indices[a];
            out_nd[t] = nd;
            out_src[t] = u;
            out_aidx[t] = a;
            ++t;
        }
    }
    return t;
}

/* Fused pull expansion over the arc range [lo, hi) of the reverse CSR
 * (EmitScratch._emit_pull's local-target block): keep arcs whose source
 * is marked in the dense mask, with the same light/Δ filter.  Arc-major
 * order == target-major with ascending sources per target. */
i64 rk_emit_pull(
    const i64 *arc_rows, const i64 *indices, const double *weights,
    i64 lo, i64 hi,
    const u8 *mask, const double *eff, double delta, i64 base,
    i64 *out_keys, double *out_nd, i64 *out_src, i64 *out_aidx)
{
    i64 t = 0;
    for (i64 a = lo; a < hi; ++a) {
        if (a + RK_PF_DIST < hi)
            RK_PREFETCH(&mask[indices[a + RK_PF_DIST]]);
        i64 s = indices[a];
        if (!mask[s])
            continue;
        double w = weights[a];
        if (w > delta)
            continue;
        double nd = eff[s] + w;
        if (nd > delta)
            continue;
        out_keys[t] = arc_rows[a] + base;
        out_nd[t] = nd;
        out_src[t] = s - base;
        out_aidx[t] = a;
        ++t;
    }
    return t;
}

/* Order-preserving compaction of the threaded emit's disjoint chunk
 * regions: chunk c wrote counts[c] rows starting at bases[c] (bases
 * ascend and regions never overlap their final position from the
 * left), so a forward memmove per column packs the candidate block
 * contiguously while keeping chunk order — the result is bit-identical
 * to a single-threaded pass.  Returns the total row count. */
i64 rk_compact(
    i64 *keys, double *nd, i64 *src, i64 *aidx,
    const i64 *bases, const i64 *counts, i64 nchunks)
{
    i64 pos = counts[0];
    for (i64 c = 1; c < nchunks; ++c) {
        i64 b = bases[c], n = counts[c];
        if (n && b != pos) {
            memmove(keys + pos, keys + b, (size_t)n * sizeof(i64));
            memmove(nd + pos, nd + b, (size_t)n * sizeof(double));
            memmove(src + pos, src + b, (size_t)n * sizeof(i64));
            memmove(aidx + pos, aidx + b, (size_t)n * sizeof(i64));
        }
        pos += n;
    }
    return pos;
}

/* The improvement pre-filter + column materialization of
 * EmitScratch._finish: keep rows whose target is open and strictly
 * improved, gathering w (from the arc index), the source's center and
 * the float source column in the same pass. */
i64 rk_filter_improve(
    const i64 *keys, const double *nd, const i64 *src, const i64 *aidx,
    i64 n,
    const double *dist, const u8 *frozen,
    const double *weights, const i64 *center,
    i64 *f_keys, double *f_nd, i64 *f_src,
    double *f_w, double *f_ctr, double *f_srcf)
{
    i64 t = 0;
    for (i64 i = 0; i < n; ++i) {
        if (i + RK_PF_DIST < n) {
            RK_PREFETCH(&frozen[keys[i + RK_PF_DIST]]);
            RK_PREFETCH(&dist[keys[i + RK_PF_DIST]]);
        }
        i64 k = keys[i];
        if (frozen[k])
            continue;
        double d = nd[i];
        if (!(d < dist[k]))
            continue;
        i64 s = src[i];
        f_keys[t] = k;
        f_nd[t] = d;
        f_src[t] = s;
        f_w[t] = weights[aidx[i]];
        f_ctr[t] = (double)center[s];
        f_srcf[t] = (double)s;
        ++t;
    }
    return t;
}

/* Fused batch finish (EmitScratch._finish): one stream over the
 * unfiltered candidate columns doing BOTH the accounting histogram
 * (stamped distinct-key collection, ascending like rk_count_keys, hist
 * restored to zero) and the improvement filter + materialization of
 * rk_filter_improve.  Replaces two full passes with one; do_acct == 0
 * skips the histogram half (ngroups untouched).  Returns the kept
 * count and writes the distinct-group count through ngroups. */
i64 rk_finish_batch(
    const i64 *keys, const double *nd, const i64 *src, const i64 *aidx,
    i64 n,
    const double *dist, const u8 *frozen,
    const double *weights, const i64 *center,
    i64 *hist, i64 *gk, i64 *gc, i64 do_acct, i64 *ngroups,
    i64 *f_keys, double *f_nd, i64 *f_src,
    double *f_w, double *f_ctr, double *f_srcf)
{
    i64 g = 0, t = 0;
    for (i64 i = 0; i < n; ++i) {
        if (i + RK_PF_DIST < n) {
            RK_PREFETCH(&frozen[keys[i + RK_PF_DIST]]);
            RK_PREFETCH(&dist[keys[i + RK_PF_DIST]]);
            if (do_acct)
                RK_PREFETCH_W(&hist[keys[i + RK_PF_DIST]]);
        }
        i64 k = keys[i];
        if (do_acct) {
            if (hist[k]++ == 0)
                gk[g++] = k;
        }
        double d = nd[i];
        if (frozen[k] || !(d < dist[k]))
            continue;
        i64 s = src[i];
        f_keys[t] = k;
        f_nd[t] = d;
        f_src[t] = s;
        f_w[t] = weights[aidx[i]];
        f_ctr[t] = (double)center[s];
        f_srcf[t] = (double)s;
        ++t;
    }
    if (do_acct) {
        qsort(gk, (size_t)g, sizeof(i64), cmp_i64);
        for (i64 j = 0; j < g; ++j) {
            gc[j] = hist[gk[j]];
            hist[gk[j]] = 0;
        }
        *ngroups = g;
    }
    return t;
}

/* Per-stage state reset (ArrayGrowingState.begin_stage): one pass over
 * the live (non-frozen) rows resets all five state columns, replacing
 * five masked copyto sweeps.  NO_CENTER == -1. */
void rk_begin_stage(
    const u8 *frozen, i64 n,
    i64 *center, double *dist, double *dacc, u8 *changed,
    i64 *frozen_iter)
{
    const double inf = 1.0 / 0.0;
    for (i64 i = 0; i < n; ++i) {
        if (frozen[i])
            continue;
        center[i] = -1;
        dist[i] = inf;
        dacc[i] = inf;
        changed[i] = 0;
        frozen_iter[i] = 0;
    }
}

/* Freeze sweep (ArrayGrowingState.freeze_assigned): freeze every
 * assigned live row in one pass; returns the freshly-frozen count. */
i64 rk_freeze_assigned(
    const i64 *center, i64 n, i64 iteration,
    u8 *frozen, u8 *changed, i64 *frozen_iter)
{
    i64 cnt = 0;
    for (i64 i = 0; i < n; ++i) {
        if (center[i] == -1 || frozen[i])
            continue;
        frozen[i] = 1;
        changed[i] = 0;
        frozen_iter[i] = iteration;
        ++cnt;
    }
    return cnt;
}

/* Forced-round emitting sets (EmitScratch._forced_sets, rescale == 0):
 * mask = assigned && eff < delta, eff = frozen ? 0 : dist, plus the
 * emitting frontier's degree sum — one pass instead of five masked
 * array sweeps.  degs is the per-row degree column. */
i64 rk_forced_sets(
    const i64 *center, const double *dist, const u8 *frozen,
    const i64 *degs, i64 n, double delta,
    u8 *mask, double *eff)
{
    i64 degree_sum = 0;
    for (i64 i = 0; i < n; ++i) {
        double e = frozen[i] ? 0.0 : dist[i];
        eff[i] = e;
        u8 m = (center[i] != -1) && (e < delta);
        mask[i] = m;
        if (m)
            degree_sum += degs[i];
    }
    return degree_sum;
}

/* Frozen-emission cache append (EmitScratch._cache_update step 1):
 * filter freshly-frozen emissions to locally-owned targets, add their
 * histogram mass, and append them at position pos of the preallocated
 * cache columns.  Returns the appended count (rows outside [lo, hi)
 * are the caller's inert count). */
i64 rk_cache_append(
    const i64 *k, const i64 *s, const i64 *a, i64 n,
    i64 lo, i64 hi, i64 *hist,
    i64 *ck, i64 *cs, i64 *ca, i64 pos)
{
    i64 t = pos;
    for (i64 i = 0; i < n; ++i) {
        i64 key = k[i];
        if (key < lo || key >= hi)
            continue;
        hist[key - lo] += 1;
        ck[t] = key;
        cs[t] = s[i];
        ca[t] = a[i];
        ++t;
    }
    return t - pos;
}

/* Fused frozen-source expansion straight into the cache columns: a
 * frozen source emits at effective distance 0, so nd == w and the
 * light and Δ tests coincide.  Owned targets ([lo, hi)) append at
 * `pos` and count into `hist`; returns the appended count, with
 * *total_out the full emitted multiset size (for inert accounting). */
i64 rk_cache_emit(
    const i64 *indptr, const i64 *indices, const double *weights,
    const i64 *src_ids, i64 nsrc, double delta, i64 lo, i64 hi,
    i64 *hist, i64 *ck, i64 *cs, i64 *ca, i64 pos, i64 *total_out)
{
    i64 t = pos;
    i64 total = 0;
    for (i64 s = 0; s < nsrc; ++s) {
        i64 u = src_ids[s];
        i64 end = indptr[u + 1];
        for (i64 a = indptr[u]; a < end; ++a) {
            if (weights[a] > delta)
                continue;
            ++total;
            i64 key = indices[a];
            if (key < lo || key >= hi)
                continue;
            hist[key - lo] += 1;
            ck[t] = key;
            cs[t] = u;
            ca[t] = a;
            ++t;
        }
    }
    *total_out = total;
    return t - pos;
}

/* Critical-path accounting (MREngine.account_batch_round): hash-route
 * every group key to its simulated worker (the exact Fibonacci mix of
 * repro.mr.partitioner.hash_partition_array) and accumulate the
 * weighted load, returning the maximum.  `loads` is an all-zero
 * nworkers scratch, restored to all-zero on exit. */
i64 rk_partition_loads(
    const i64 *keys, i64 n, const i64 *w, i64 nworkers, i64 *loads)
{
    for (i64 i = 0; i < n; ++i) {
        uint64_t h = (uint64_t)keys[i];
        h ^= h >> 16;
        uint64_t p = ((h * 2654435761ULL) & 0xFFFFFFFFULL)
                     % (uint64_t)nworkers;
        loads[p] += w[i];
    }
    i64 mx = 0;
    for (i64 p = 0; p < nworkers; ++p) {
        if (loads[p] > mx)
            mx = loads[p];
        loads[p] = 0;
    }
    return mx;
}

/* Frozen-emission cache retire (step 2): drop rows whose target froze,
 * compacting the cache columns in place (order preserved).  Returns
 * the surviving length; the histogram keeps the retired rows' mass (it
 * accounts every cached row, inert included). */
i64 rk_cache_retire(
    i64 *ck, i64 *cs, i64 *ca, i64 n, const u8 *frozen, i64 lo)
{
    i64 t = 0;
    for (i64 i = 0; i < n; ++i) {
        if (i + RK_PF_DIST < n)
            RK_PREFETCH(&frozen[ck[i + RK_PF_DIST] - lo]);
        i64 key = ck[i];
        if (frozen[key - lo])
            continue;
        if (t != i) {
            ck[t] = key;
            cs[t] = cs[i];
            ca[t] = ca[i];
        }
        ++t;
    }
    return t;
}

/* Cache replay improvement filter (EmitScratch._emit_forced_cached):
 * a cached frozen emission's candidate distance is its arc weight;
 * keep rows that strictly improve their (open, by the retire pass)
 * target. */
i64 rk_cache_replay(
    const i64 *ck, const i64 *cs, const i64 *ca, i64 n,
    const double *weights, const double *dist,
    i64 *fk, double *fnd, i64 *fs, i64 *fa)
{
    i64 t = 0;
    for (i64 i = 0; i < n; ++i) {
        if (i + RK_PF_DIST < n) {
            RK_PREFETCH(&weights[ca[i + RK_PF_DIST]]);
            RK_PREFETCH(&dist[ck[i + RK_PF_DIST]]);
        }
        double w = weights[ca[i]];
        if (!(w < dist[ck[i]]))
            continue;
        fk[t] = ck[i];
        fnd[t] = w;
        fs[t] = cs[i];
        fa[t] = ca[i];
        ++t;
    }
    return t;
}

/* Gather the trailing candidate columns (w from the arc index, the
 * source's center, the float source) for already-filtered rows. */
void rk_materialize(
    const i64 *src, const i64 *aidx, i64 n,
    const double *weights, const i64 *center,
    double *w, double *ctr, double *srcf)
{
    for (i64 i = 0; i < n; ++i) {
        w[i] = weights[aidx[i]];
        ctr[i] = (double)center[src[i]];
        srcf[i] = (double)src[i];
    }
}

/* Serial-core push expansion (core.growing.delta_growing_step): the
 * core's filter semantics differ from EmitScratch — messages count
 * light arcs into open targets (Δ and improvement tests excluded),
 * candidates additionally need nd <= delta and nd < dist[target]. */
i64 rk_core_emit_push(
    const i64 *indptr, const i64 *indices, const double *weights,
    const i64 *srcs, const double *eff, i64 nsrc, double delta,
    const u8 *frozen, const double *dist,
    i64 *messages,
    i64 *cand_t, double *cand_d, i64 *cand_s, double *cand_w)
{
    i64 t = 0, msg = 0;
    for (i64 s = 0; s < nsrc; ++s) {
        i64 u = srcs[s];
        double e = eff[s];
        i64 hi = indptr[u + 1];
        for (i64 a = indptr[u]; a < hi; ++a) {
            double w = weights[a];
            if (w > delta)
                continue;
            i64 v = indices[a];
            if (frozen[v])
                continue;
            ++msg;
            double nd = e + w;
            if (nd > delta)
                continue;
            if (!(nd < dist[v]))
                continue;
            cand_t[t] = v;
            cand_d[t] = nd;
            cand_s[t] = u;
            cand_w[t] = w;
            ++t;
        }
    }
    *messages = msg;
    return t;
}

/* Serial-core pull expansion: stream every arc target-major through the
 * reverse CSR, testing the arc's source against the dense emitting
 * mask; same message/candidate semantics as rk_core_emit_push. */
i64 rk_core_emit_pull(
    const i64 *arc_rows, const i64 *indices, const double *weights,
    i64 narcs,
    const u8 *emitting, const double *effd, double delta,
    const u8 *frozen, const double *dist,
    i64 *messages,
    i64 *cand_t, double *cand_d, i64 *cand_s, double *cand_w)
{
    i64 t = 0, msg = 0;
    for (i64 a = 0; a < narcs; ++a) {
        if (a + RK_PF_DIST < narcs)
            RK_PREFETCH(&emitting[indices[a + RK_PF_DIST]]);
        i64 s = indices[a];
        if (!emitting[s])
            continue;
        double w = weights[a];
        if (w > delta)
            continue;
        i64 r = arc_rows[a];
        if (frozen[r])
            continue;
        ++msg;
        double nd = effd[s] + w;
        if (nd > delta)
            continue;
        if (!(nd < dist[r]))
            continue;
        cand_t[t] = r;
        cand_d[t] = nd;
        cand_s[t] = s;
        cand_w[t] = w;
        ++t;
    }
    *messages = msg;
    return t;
}
