"""Round-by-round executor for the MR(M_T, M_L) model.

A round transforms a multiset of ``(key, value)`` pairs by grouping on the
key and applying a reducer function to every group independently.  The
engine enforces the model's memory budgets, counts rounds and messages,
and — through a pluggable executor — simulates the per-round critical path
of a ``num_workers``-machine platform (the quantity Figure 4's scalability
experiment measures).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import MemoryLimitExceeded
from repro.mr import native as _native
from repro.mr.executor import SerialExecutor
from repro.mr.kernels import CountScratch, ScatterScratch, counting_group_keys
from repro.mr.metrics import Counters
from repro.mr.model import MRSpec
from repro.mr.partitioner import hash_partition, hash_partition_array

__all__ = ["MREngine", "Pair", "Reducer", "BatchReducer"]

Pair = Tuple[Hashable, object]
#: A reducer maps ``(key, values)`` to an iterable of output pairs.
Reducer = Callable[[Hashable, List[object]], Iterable[Pair]]
#: A batch reducer maps grouped ``(keys, offsets, values)`` arrays to an
#: output batch ``(out_keys, out_values, out_counts)`` — see
#: :mod:`repro.mr.batch` for the full protocol.
BatchReducer = Callable[
    [np.ndarray, np.ndarray, np.ndarray],
    Tuple[np.ndarray, np.ndarray, np.ndarray],
]


def _group_batch(
    keys: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized shuffle: group value rows by key with one stable sort.

    Returns ``(group_keys, offsets, sorted_values)`` in the batch-reducer
    layout — distinct keys ascending, a ``g + 1`` prefix array, and the
    rows reordered so each group is contiguous in input order.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.concatenate(
        ([0], np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1)
    ).astype(np.int64)
    offsets = np.concatenate((starts, [len(sorted_keys)])).astype(np.int64)
    return sorted_keys[starts], offsets, values[order]


#: Keys count as "bounded" when a dense histogram over their domain is
#: O(batch size): the counting-sort shuffle then beats the argsort.
_BOUNDED_SLACK = 65_536


def _key_bound(keys: np.ndarray, key_bound=None):
    """Key-domain size when the counting-sort shuffle applies, else ``None``.

    Callers that know their key domain (node ids < n) pass ``key_bound``
    as a hint; the batch's own min/max fill it in otherwise.  Negative
    keys — or a domain far larger than the batch, where the O(domain)
    histogram would cost more than sorting the few rows present (e.g. a
    growing stage's skinny tail rounds) — fall back to the argsort
    shuffle.
    """
    if not len(keys):
        return None
    kmin = int(keys.min())
    kmax = int(keys.max())
    if kmin < 0:
        return None
    bound = kmax + 1
    if key_bound is not None:
        bound = max(int(key_bound), bound)
    if bound <= 4 * len(keys) + _BOUNDED_SLACK:
        return bound
    return None


def _pair_words(value: object) -> int:
    """Approximate memory footprint of one pair in machine words.

    A pair costs one word for the key plus one word per scalar in the
    value.  Tuples/lists are costed by length; everything else is one word.
    This coarse model is exactly what the MR(M_T, M_L) analysis assumes.
    """
    if isinstance(value, (tuple, list)):
        return 1 + len(value)
    return 2


class MREngine:
    """Executes MR rounds under an :class:`MRSpec` with full accounting.

    Parameters
    ----------
    spec:
        Memory/worker parameters.
    executor:
        Strategy that applies reducers to key groups; defaults to
        :class:`~repro.mr.executor.SerialExecutor`.
    enforce_memory:
        When ``True`` (default) a reducer whose input exceeds ``M_L`` words,
        or a round whose pairs exceed ``M_T`` words, raises
        :class:`~repro.errors.MemoryLimitExceeded`.

    Attributes
    ----------
    counters:
        Aggregated :class:`~repro.mr.metrics.Counters`; ``rounds`` and
        ``messages`` are maintained by the engine, ``updates`` by the
        algorithms layered on top.
    simulated_time:
        Sum over rounds of the busiest worker's load (input + output
        pairs), i.e. the critical-path cost on ``spec.num_workers``
        machines.  This is the scalability metric of Figure 4.
    """

    def __init__(
        self,
        spec: MRSpec,
        executor=None,
        *,
        enforce_memory: bool = True,
    ):
        self.spec = spec
        self.executor = executor if executor is not None else SerialExecutor()
        self.enforce_memory = enforce_memory
        self.counters = Counters()
        self.simulated_time = 0
        # Dense scatter buffers for ungrouped batch reducers, reused
        # across rounds (see round_batch's counting-sort fast path).
        self._scatter_scratch = ScatterScratch()
        # Histogram/prefix-sum buffers of the counting-sort shuffle,
        # reused across rounds and grown to the largest key_bound seen.
        self._count_scratch = CountScratch()
        # Per-worker load scratch for the native critical-path
        # accounting (all-zero between rounds).
        self._loads: np.ndarray = None

    # ------------------------------------------------------------------ #

    def round(
        self,
        pairs: Sequence[Pair],
        reducer: Reducer,
        *,
        combiner: Reducer = None,
    ) -> List[Pair]:
        """Execute one MR round and return the output multiset.

        Grouping is stable: values arrive at the reducer in input order,
        which lets deterministic algorithms avoid spurious tie-break
        differences between runs.

        ``combiner``, when given, is applied per key *before* the shuffle
        (the classic map-side aggregation optimization): the engine counts
        only the combined pairs as shuffled messages, and the local-memory
        check applies to the combined groups.  The combiner must be
        semantically idempotent with respect to the reducer
        (``reducer ∘ combiner ≡ reducer``); word-count's ``sum`` is the
        canonical example.
        """
        if combiner is not None:
            pre: Dict[Hashable, List[object]] = {}
            for key, value in pairs:
                pre.setdefault(key, []).append(value)
            combined: List[Pair] = []
            for key, values in pre.items():
                combined.extend(combiner(key, values))
            pairs = combined

        shuffle_start = perf_counter()
        groups: Dict[Hashable, List[object]] = {}
        total_words = 0
        for key, value in pairs:
            groups.setdefault(key, []).append(value)
            total_words += _pair_words(value)

        if self.enforce_memory and total_words > self.spec.total_memory:
            raise MemoryLimitExceeded(total_words, self.spec.total_memory)
        if self.enforce_memory:
            for key, values in groups.items():
                words = sum(_pair_words(v) for v in values)
                if words > self.spec.local_memory:
                    raise MemoryLimitExceeded(words, self.spec.local_memory, key)

        reduce_start = perf_counter()
        self.counters.add_time("shuffle", reduce_start - shuffle_start)
        output, worker_loads = self.executor.run(
            groups, reducer, self.spec.num_workers
        )
        self.counters.add_time("reduce", perf_counter() - reduce_start)

        self.counters.record_round(messages=len(pairs), updates=0)
        self.simulated_time += max(worker_loads) if worker_loads else 0
        return output

    # -- batch-round cost model (shared by round_batch and the fused  -- #
    # -- growing pipeline of repro.mr.emit / mrimpl.growing_mr)       -- #

    def check_total_memory(self, num_pairs: int, words_per_pair: int) -> None:
        """Raise when a round's pair volume exceeds ``M_T``."""
        if (
            self.enforce_memory
            and num_pairs * words_per_pair > self.spec.total_memory
        ):
            raise MemoryLimitExceeded(
                num_pairs * words_per_pair, self.spec.total_memory
            )

    def check_local_memory(
        self, group_keys: np.ndarray, counts: np.ndarray, words_per_pair: int
    ) -> None:
        """Raise when the largest reducer group exceeds ``M_L``."""
        if self.enforce_memory and len(group_keys):
            worst = int(counts.max()) * words_per_pair
            if worst > self.spec.local_memory:
                bad = int(group_keys[int(np.argmax(counts))])
                raise MemoryLimitExceeded(worst, self.spec.local_memory, bad)

    def account_batch_round(
        self,
        messages: int,
        group_keys: np.ndarray,
        counts: np.ndarray,
        out_counts,
    ) -> None:
        """One batch round's counters + hash-partitioned critical path.

        ``out_counts`` is the per-group output size (an array, or a
        scalar for reducers that emit exactly one row per group).  This
        is the *single* definition of the batch cost model: both
        :meth:`round_batch` and the fused growing pipeline account
        through it, so the two paths cannot drift apart.
        """
        self.counters.record_round(messages=messages, updates=0)
        if group_keys is not None and len(group_keys):
            if _native.use_native():
                # Fused hash-route + weighted max-load in one C pass
                # (the mix matches hash_partition_array bit for bit,
                # and int64 accumulation equals the float bincount for
                # any realistic load sum).
                if self._loads is None or len(self._loads) < self.spec.num_workers:
                    self._loads = np.zeros(self.spec.num_workers, dtype=np.int64)
                weights = np.add(counts, out_counts, dtype=np.int64)
                self.simulated_time += _native.partition_loads(
                    group_keys, weights, self.spec.num_workers, self._loads
                )
                return
            workers = hash_partition_array(group_keys, self.spec.num_workers)
            loads = np.bincount(
                workers,
                weights=counts + out_counts,
                minlength=self.spec.num_workers,
            )
            self.simulated_time += int(loads.max())

    @property
    def supports_batch(self) -> bool:
        """Whether the executor runs batch rounds natively.

        Drivers use this to pick their data layout: engines whose executor
        implements ``run_batch`` (``VectorExecutor``,
        ``SharedMemoryExecutor``) get the array-valued hot path, the
        others keep the literal per-key pair simulation.  ``round_batch``
        itself works on every engine — without native support the engine
        applies the batch reducer in-process after the vectorized shuffle.
        """
        return hasattr(self.executor, "run_batch")

    def round_batch(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        reducer: BatchReducer,
        *,
        combiner: BatchReducer = None,
        key_bound: int = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Execute one MR round over an integer-keyed array batch.

        The vectorized counterpart of :meth:`round`: ``keys`` is an
        ``int64`` array of reducer keys (one per pair) and ``values`` a
        ``float64`` matrix with the corresponding payload rows.  Values
        reach the reducer grouped by key *in input order*, the same
        stability guarantee the dict-of-lists grouping provides.
        Returns the output batch as ``(out_keys, out_values)``.

        The shuffle adapts to the round.  When the reducer carries an
        ``ungrouped_reduce`` attribute (see
        :func:`repro.mr.kernels.merge_candidates`), the executor reduces
        in-process, and the keys are bounded non-negative ids (node ids
        — pass ``key_bound`` when the domain is known, else the batch's
        own max decides), the stable ``np.argsort`` is replaced by a
        **counting-sort shuffle**: ``np.bincount`` plus a prefix sum
        yields the distinct keys and group sizes in O(pairs + domain)
        and the reducer is handed the *raw* batch plus the engine's
        reusable scatter scratch — the rows are never permuted at all,
        which is what makes growing-step rounds cost O(candidates).
        Every other round (grouped-layout reducers, pool executors whose
        workers slice physically grouped shards, unbounded or negative
        keys) takes the argsort shuffle, which the gather needs anyway.
        Output, counters, memory checks, and the critical-path model are
        identical on every path.

        ``combiner``, as in :meth:`round`, is applied per key *before*
        the shuffle (map-side aggregation): only combined pairs count as
        shuffled messages and the memory checks apply to the combined
        groups — the model's answer to hot keys whose raw groups exceed
        ``M_L``.  The combiner must be semantically idempotent with
        respect to the reducer.

        Accounting matches :meth:`round` structurally: one round, one
        message per (combined) input pair, a memory word per key plus one
        per payload column (the tuple cost model of ``_pair_words``), and
        a simulated critical path equal to the busiest worker's input +
        output pairs under the same hash partitioner as the per-key path.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values.reshape(-1, 1)
        if len(keys) != len(values):
            raise ValueError("keys and values must have one row per pair")
        if combiner is not None and len(keys):
            ckeys, coffsets, cvalues = _group_batch(keys, values)
            keys, values, _counts = combiner(ckeys, coffsets, cvalues)
            keys = np.ascontiguousarray(keys, dtype=np.int64)
            values = np.ascontiguousarray(values, dtype=np.float64)
        width = values.shape[1]
        words_per_pair = 1 + max(width, 1)
        self.check_total_memory(len(keys), words_per_pair)

        run_batch = getattr(self.executor, "run_batch", None)
        in_process = run_batch is None or getattr(
            self.executor, "in_process_batch", False
        )
        ungrouped = getattr(reducer, "ungrouped_reduce", None)

        shuffle_start = perf_counter()
        scatter_bound = None
        sorted_values = values
        if len(keys):
            # The counting-sort shuffle only pays off when the gather can
            # be skipped too, i.e. the reducer consumes ungrouped rows in
            # this process; grouped-layout reducers (and pool executors,
            # whose workers slice physically grouped shards) would need
            # the argsort permutation anyway, so they take it directly.
            bound = (
                _key_bound(keys, key_bound)
                if ungrouped is not None and in_process
                else None
            )
            if bound is not None:
                # Counting-sort shuffle: histogram + prefix sum,
                # O(C + domain) — no permutation, rows stay put (the
                # scatter reducer never reads offsets, so none are
                # built), with the engine's reusable histogram buffers.
                group_keys, counts, offsets = counting_group_keys(
                    keys, bound, with_offsets=False,
                    scratch=self._count_scratch,
                )
                scatter_bound = bound
            else:
                group_keys, offsets, sorted_values = _group_batch(keys, values)
                counts = np.diff(offsets)
            self.check_local_memory(group_keys, counts, words_per_pair)
        else:
            group_keys = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
            offsets = np.zeros(1, dtype=np.int64)

        reduce_start = perf_counter()
        self.counters.add_time("shuffle", reduce_start - shuffle_start)
        if len(group_keys) == 0:
            out_keys = np.empty(0, dtype=np.int64)
            out_values = np.empty((0, width), dtype=np.float64)
            out_counts = np.empty(0, dtype=np.int64)
        elif scatter_bound is not None:
            out_keys, out_values, out_counts = ungrouped(
                keys, values, group_keys, scatter_bound, self._scatter_scratch
            )
        elif run_batch is not None:
            out_keys, out_values, out_counts = run_batch(
                group_keys, offsets, sorted_values, reducer, self.spec.num_workers
            )
        else:
            out_keys, out_values, out_counts = reducer(
                group_keys, offsets, sorted_values
            )
        self.counters.add_time("reduce", perf_counter() - reduce_start)

        self.account_batch_round(len(keys), group_keys, counts, out_counts)
        return out_keys, out_values

    def run_rounds(
        self, pairs: Sequence[Pair], reducers: Sequence[Reducer]
    ) -> List[Pair]:
        """Thread ``pairs`` through a fixed pipeline of reducers."""
        for reducer in reducers:
            pairs = self.round(pairs, reducer)
        return list(pairs)

    def run_until_fixpoint(
        self,
        pairs: Sequence[Pair],
        reducer: Reducer,
        *,
        max_rounds: int = 10_000,
        key=None,
    ) -> List[Pair]:
        """Apply ``reducer`` repeatedly until the output stabilizes.

        Stability is judged on the sorted pair multiset (using ``key`` for
        ordering if pairs are not naturally comparable).  Raises
        :class:`~repro.errors.ConvergenceError` after ``max_rounds``.
        """
        from repro.errors import ConvergenceError

        def canon(ps):
            return sorted(ps, key=key) if key else sorted(ps)

        current = list(pairs)
        current_canon = canon(current)
        for _ in range(max_rounds):
            nxt = self.round(current, reducer)
            nxt_canon = canon(nxt)
            if nxt_canon == current_canon:
                return nxt
            current, current_canon = nxt, nxt_canon
        raise ConvergenceError(f"no fixpoint within {max_rounds} rounds")

    # ------------------------------------------------------------------ #

    def worker_of(self, key: Hashable) -> int:
        """Worker a key would be routed to (exposed for tests/inspection)."""
        return hash_partition(key, self.spec.num_workers)
