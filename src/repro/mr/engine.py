"""Round-by-round executor for the MR(M_T, M_L) model.

A round transforms a multiset of ``(key, value)`` pairs by grouping on the
key and applying a reducer function to every group independently.  The
engine enforces the model's memory budgets, counts rounds and messages,
and — through a pluggable executor — simulates the per-round critical path
of a ``num_workers``-machine platform (the quantity Figure 4's scalability
experiment measures).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.errors import MemoryLimitExceeded
from repro.mr.executor import SerialExecutor
from repro.mr.metrics import Counters
from repro.mr.model import MRSpec
from repro.mr.partitioner import hash_partition

__all__ = ["MREngine", "Pair", "Reducer"]

Pair = Tuple[Hashable, object]
#: A reducer maps ``(key, values)`` to an iterable of output pairs.
Reducer = Callable[[Hashable, List[object]], Iterable[Pair]]


def _pair_words(value: object) -> int:
    """Approximate memory footprint of one pair in machine words.

    A pair costs one word for the key plus one word per scalar in the
    value.  Tuples/lists are costed by length; everything else is one word.
    This coarse model is exactly what the MR(M_T, M_L) analysis assumes.
    """
    if isinstance(value, (tuple, list)):
        return 1 + len(value)
    return 2


class MREngine:
    """Executes MR rounds under an :class:`MRSpec` with full accounting.

    Parameters
    ----------
    spec:
        Memory/worker parameters.
    executor:
        Strategy that applies reducers to key groups; defaults to
        :class:`~repro.mr.executor.SerialExecutor`.
    enforce_memory:
        When ``True`` (default) a reducer whose input exceeds ``M_L`` words,
        or a round whose pairs exceed ``M_T`` words, raises
        :class:`~repro.errors.MemoryLimitExceeded`.

    Attributes
    ----------
    counters:
        Aggregated :class:`~repro.mr.metrics.Counters`; ``rounds`` and
        ``messages`` are maintained by the engine, ``updates`` by the
        algorithms layered on top.
    simulated_time:
        Sum over rounds of the busiest worker's load (input + output
        pairs), i.e. the critical-path cost on ``spec.num_workers``
        machines.  This is the scalability metric of Figure 4.
    """

    def __init__(
        self,
        spec: MRSpec,
        executor=None,
        *,
        enforce_memory: bool = True,
    ):
        self.spec = spec
        self.executor = executor if executor is not None else SerialExecutor()
        self.enforce_memory = enforce_memory
        self.counters = Counters()
        self.simulated_time = 0

    # ------------------------------------------------------------------ #

    def round(
        self,
        pairs: Sequence[Pair],
        reducer: Reducer,
        *,
        combiner: Reducer = None,
    ) -> List[Pair]:
        """Execute one MR round and return the output multiset.

        Grouping is stable: values arrive at the reducer in input order,
        which lets deterministic algorithms avoid spurious tie-break
        differences between runs.

        ``combiner``, when given, is applied per key *before* the shuffle
        (the classic map-side aggregation optimization): the engine counts
        only the combined pairs as shuffled messages, and the local-memory
        check applies to the combined groups.  The combiner must be
        semantically idempotent with respect to the reducer
        (``reducer ∘ combiner ≡ reducer``); word-count's ``sum`` is the
        canonical example.
        """
        if combiner is not None:
            pre: Dict[Hashable, List[object]] = {}
            for key, value in pairs:
                pre.setdefault(key, []).append(value)
            combined: List[Pair] = []
            for key, values in pre.items():
                combined.extend(combiner(key, values))
            pairs = combined

        groups: Dict[Hashable, List[object]] = {}
        total_words = 0
        for key, value in pairs:
            groups.setdefault(key, []).append(value)
            total_words += _pair_words(value)

        if self.enforce_memory and total_words > self.spec.total_memory:
            raise MemoryLimitExceeded(total_words, self.spec.total_memory)
        if self.enforce_memory:
            for key, values in groups.items():
                words = sum(_pair_words(v) for v in values)
                if words > self.spec.local_memory:
                    raise MemoryLimitExceeded(words, self.spec.local_memory, key)

        output, worker_loads = self.executor.run(
            groups, reducer, self.spec.num_workers
        )

        self.counters.record_round(messages=len(pairs), updates=0)
        self.simulated_time += max(worker_loads) if worker_loads else 0
        return output

    def run_rounds(
        self, pairs: Sequence[Pair], reducers: Sequence[Reducer]
    ) -> List[Pair]:
        """Thread ``pairs`` through a fixed pipeline of reducers."""
        for reducer in reducers:
            pairs = self.round(pairs, reducer)
        return list(pairs)

    def run_until_fixpoint(
        self,
        pairs: Sequence[Pair],
        reducer: Reducer,
        *,
        max_rounds: int = 10_000,
        key=None,
    ) -> List[Pair]:
        """Apply ``reducer`` repeatedly until the output stabilizes.

        Stability is judged on the sorted pair multiset (using ``key`` for
        ordering if pairs are not naturally comparable).  Raises
        :class:`~repro.errors.ConvergenceError` after ``max_rounds``.
        """
        from repro.errors import ConvergenceError

        def canon(ps):
            return sorted(ps, key=key) if key else sorted(ps)

        current = list(pairs)
        current_canon = canon(current)
        for _ in range(max_rounds):
            nxt = self.round(current, reducer)
            nxt_canon = canon(nxt)
            if nxt_canon == current_canon:
                return nxt
            current, current_canon = nxt, nxt_canon
        raise ConvergenceError(f"no fixpoint within {max_rounds} rounds")

    # ------------------------------------------------------------------ #

    def worker_of(self, key: Hashable) -> int:
        """Worker a key would be routed to (exposed for tests/inspection)."""
        return hash_partition(key, self.spec.num_workers)
