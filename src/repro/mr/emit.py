"""Fused zero-allocation emit pipeline with direction-optimizing expansion.

PR 4 made the *reduce* side of a Δ-growing step frontier-proportional
(:mod:`repro.mr.kernels`); profiling then showed the *map* side — per
round candidate generation plus the shuffle that re-materializes those
rows — dominating every batch backend.  Three structural costs remained:

1. **allocation churn** — ``emit_frontier`` built a fresh ``(C, 3)``
   float64 matrix plus several index temporaries every round;
2. **push-only expansion** — a forced round (stage start, Δ change)
   re-expands *every* assigned node through ``indptr`` gathers and two
   ``np.repeat`` calls, even though late-stage forced rounds are almost
   entirely frozen nodes re-emitting contributions that cannot win;
3. **eager materialization** — all C candidate rows (center and
   accumulated-distance columns included) travelled through the shuffle,
   although the merge discards every candidate that does not improve
   its target.

This module fixes all three while keeping every observable — the
clustering, ``rounds``/``messages``/``updates`` counters, and (on the
engine-managed backends) the memory-model checks and simulated critical
path — bit-identical to the legacy pipeline.  The sharded backend's
self-defined resident-merge accounting instead measures the batch its
workers *actually* merge, which the improvement pre-filter shrinks —
see :class:`repro.mr.sharded.ShardedGrowingState` for that contract.

* :class:`EmitScratch` owns preallocated, monotonically grown buffers
  (dense id-domain scratch, arc-domain scratch bounded by the graph's
  maximum frontier degree-sum — its arc count — and candidate banks),
  so a non-forced round performs **zero O(n) or O(m) allocations**:
  candidate columns are written straight into the banks and handed to
  :func:`~repro.mr.kernels.scatter_min_rows` with no intermediate copy,
  key materialization, or counting-sort pass.

* **Direction-optimizing expansion** (cf. Beamer et al.'s push/pull
  BFS): when the emitting frontier's degree-sum exceeds
  :data:`PULL_DEGREE_FRACTION` of the arc count, the expansion switches
  from *push* (gather the frontier's CSR rows, repeat sources over
  their arcs) to *pull* (stream every arc target-major through the
  reverse CSR, testing each arc's source against a dense emitting
  mask).  For the symmetric graphs this library builds, the reverse CSR
  shares ``indptr``/``indices``/``weights`` with the forward one — row
  ``t`` read target-major lists exactly ``t``'s in-arcs — so the only
  new structure pull needs is the arc→row map (the source row of every
  arc slot), memory-mapped from the ``rsrc`` section of the ``.rcsr``
  store format when present (see :mod:`repro.graph.serialize`) or
  computed once per scratch.  ``REPRO_EMIT_MODE=push|pull|auto``
  selects the direction for A/B runs; both directions produce the
  identical candidate multiset with identical within-target arrival
  order (ascending source id — builders deduplicate and sort arcs), so
  results and counters cannot differ.

* **Improvement pre-filter**: candidates that cannot be adopted —
  target frozen, or candidate distance not below the target's current
  distance — are dropped *before* their center/``dacc`` columns are
  materialized.  This is winner-preserving by the min-distance
  argument: the per-target winner minimizes ``(nd, center, arrival)``
  and the leading key is the distance, so if the winner does not
  improve its target then *no* candidate for that target does, and if
  it does improve then the whole minimal-distance tie set survives the
  filter unchanged.  Accounting still sees the full multiset:
  ``emitted`` (the round's ``messages``), the per-target group
  histogram (the memory-model checks), and the simulated critical path
  are all computed from the unfiltered candidate set.

* **Frozen-emission cache**: under Contract semantics (``rescale ==
  0``) a frozen node's forced-round contribution — ``(target, w,
  center, dacc + w)`` per light arc — is immutable for a fixed Δ.  In
  ``auto`` mode the scratch caches these rows the first forced round
  after each node freezes and replays them afterwards, partitioned into
  *inert* rows (target itself frozen: can never be adopted, contributes
  only to counters and histogram) and *active* rows (target still
  open).  A late forced round therefore costs O(newly-frozen arcs +
  open boundary rows + live-frontier arcs + n) instead of O(m).  The
  cache is replay, not approximation: the replayed multiset equals what
  push would emit, and the dense histogram is maintained incrementally,
  so the accounting stays exact.  Cache replay reorders rows (frozen
  block first), which only an order-free merge may consume — the
  in-process scatter path and the sharded workers break ties by ``(nd,
  center, source)``, provably equal to arrival order for deduplicated
  edges; order-sensitive consumers (the pool backends' grouped
  reducers) and Contract2 rescaling use the plain push/pull paths, as
  do the explicit ``push``/``pull`` A/B modes.

The legacy pipeline (``emit_frontier`` + ``MREngine.round_batch``) is
retained verbatim as the ``REPRO_GROWING_KERNEL=sort`` oracle; the
parity suites in ``tests/mr/test_emit_parity.py`` pit every
executor × kernel × emit-mode combination against it.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.mr import native as _native

__all__ = [
    "EMIT_ENV",
    "EMIT_MODES",
    "PULL_DEGREE_FRACTION",
    "emit_mode",
    "EmitBatch",
    "EmitScratch",
]

NO_CENTER = -1

#: Environment switch for the expansion direction: ``push`` (gather the
#: frontier's rows), ``pull`` (stream all arcs target-major), or
#: ``auto`` (default: direction chosen per round by degree-sum, frozen
#: re-emissions replayed from the cache where legal).
EMIT_ENV = "REPRO_EMIT_MODE"

EMIT_MODES = ("push", "pull", "auto")

#: ``auto`` switches to pull when the emitting frontier's degree-sum
#: exceeds this fraction of the graph's arcs.  Push costs
#: O(frontier arcs) with expansion/repeat overhead per arc; pull costs
#: O(m) in cheaper streaming passes — on the R-MAT measurements the
#: crossover sits near a quarter of the arcs.
PULL_DEGREE_FRACTION = 0.25

_EMPTY_I8 = np.empty(0, dtype=np.int64)
_EMPTY_F8 = np.empty(0, dtype=np.float64)


def emit_mode() -> str:
    """The active expansion direction: ``push``, ``pull`` or ``auto``.

    Read from :data:`EMIT_ENV` on every call so benchmarks and the CI
    parity job can flip directions between runs in one process; unknown
    values fall back to ``auto``.
    """
    value = os.environ.get(EMIT_ENV, "auto")
    return value if value in EMIT_MODES else "auto"


class EmitBatch:
    """One round's emitted candidates: filtered columns plus accounting.

    The filtered columns (:attr:`keys`, :attr:`nd`, :attr:`ctr`,
    :attr:`srcf`, :attr:`src`, :attr:`w`, all of length :attr:`count`)
    may be views into the owning scratch's banks and stay valid until
    that scratch's next emit.  Accounting fields describe the
    **unfiltered** multiset: :attr:`emitted` is the round's ``messages``
    count and :attr:`group_keys` / :attr:`group_counts` the per-target
    histogram that the memory-model checks and the critical-path model
    consume.  :attr:`order_free` records that rows were produced in an
    order the arrival tie-break may *not* rely on (cache replay): the
    consumer must then merge by ``(nd, center, source)``.
    """

    __slots__ = (
        "emitted",
        "count",
        "keys",
        "nd",
        "ctr",
        "srcf",
        "src",
        "w",
        "group_keys",
        "group_counts",
        "order_free",
    )

    def __init__(self):
        self.emitted = 0
        self.count = 0
        self.keys = _EMPTY_I8
        self.nd = _EMPTY_F8
        self.ctr = _EMPTY_F8
        self.srcf = _EMPTY_F8
        self.src = _EMPTY_I8
        self.w = _EMPTY_F8
        self.group_keys = _EMPTY_I8
        self.group_counts = _EMPTY_I8
        self.order_free = False


class _Bank:
    """Named 1-D scratch buffers of one dtype, grown monotonically."""

    __slots__ = ("_bufs", "_dtype")

    def __init__(self, dtype):
        self._bufs = {}
        self._dtype = dtype

    def get(self, name: str, size: int) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is None or len(buf) < size:
            # Geometric growth: candidate counts creep upward round by
            # round, and an exact-fit buffer would reallocate on every
            # new high-water mark.
            grown = max(size, 1024)
            if buf is not None:
                grown = max(grown, len(buf) + (len(buf) >> 2))
            buf = np.empty(grown, dtype=self._dtype)
            self._bufs[name] = buf
        return buf[:size]


def _compress(cond: np.ndarray, arr: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``arr[cond]`` written into a preallocated buffer slice."""
    np.compress(cond, arr, out=out)
    return out


class EmitScratch:
    """Reusable candidate-generation state for one growing state.

    Bound to one CSR slice: local rows ``[0, num_rows)`` whose
    ``indices`` may carry global neighbour ids (shard slices do);
    ``base`` is the global id of local row 0 and ``id_domain`` the size
    of the global id space (defaults to ``base + num_rows``, i.e. the
    whole-graph layout).  All buffers are allocated lazily and grown
    monotonically; :meth:`reset` clears the frozen-emission cache but
    keeps every buffer, so CLUSTER2's second phase (and the sharded
    workers' ``reset`` command) re-run on warm scratch.

    ``arc_sources``, when given, is the arc→row map of the reverse CSR
    (:meth:`repro.graph.csr.CSRGraph.arc_sources_view` — memory-mapped
    from the store's ``rsrc`` section when present); otherwise it is
    computed once on first pull-mode use.

    **Mapped layout** (lp-partitioned shards): when ``row_gids`` is
    given, local row ``r`` is global node ``row_gids[r]`` and the row
    set is *not* contiguous — ``base`` must be 0 and ``localidx`` /
    ``owners`` (the partition sidecars, indexed by global id) and
    ``shard_id`` supply the reverse maps.  The mapped layout keeps the
    native push expansion (its keys come straight from ``indices``) but
    takes the NumPy pull and cache-maintenance branches, whose id
    arithmetic assumes contiguity.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        base: int = 0,
        id_domain: Optional[int] = None,
        arc_sources: Optional[np.ndarray] = None,
        boundary_rows: Optional[np.ndarray] = None,
        boundary_aidx: Optional[np.ndarray] = None,
        row_gids: Optional[np.ndarray] = None,
        localidx: Optional[np.ndarray] = None,
        owners: Optional[np.ndarray] = None,
        shard_id: int = 0,
    ):
        if row_gids is not None and base:
            raise ValueError("mapped layout requires base == 0")
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.base = base
        self.num_rows = len(indptr) - 1
        self.num_arcs = len(indices)
        self.id_domain = (
            int(id_domain) if id_domain is not None else base + self.num_rows
        )
        self.row_gids = row_gids
        self.localidx = localidx
        self.owners = owners
        self.shard_id = shard_id
        # Mapped layouts keep forced-round mask/eff in dedicated local
        # buffers (the contiguous layouts use dense-window views).
        self._m_loc: Optional[np.ndarray] = None
        self._e_loc: Optional[np.ndarray] = None
        self._arc_rows = arc_sources  # local row of every arc slot
        # Boundary slice of a shard: arcs whose target lives on another
        # shard (local source row + absolute arc index per arc).  The
        # pull direction streams local rows target-major — which covers
        # exactly the arcs *into* local targets — so these outward arcs
        # are expanded push-style and appended (see _emit_pull).  Whole-
        # graph layouts have no boundary and leave these None.
        self._b_rows = boundary_rows
        self._b_aidx = boundary_aidx
        self._i8 = _Bank(np.int64)
        self._f8 = _Bank(np.float64)
        self._b1 = _Bank(bool)
        # Dense id-domain buffers (sized to the global id space so shard
        # slices can test global neighbour ids directly).
        self._eff: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None
        # Dense all-zero histogram for the native accounting pass
        # (rk_count_keys restores the invariant in-kernel).
        self._hist0: Optional[np.ndarray] = None
        # Frozen-emission cache (auto mode, rescale == 0, forced rounds).
        self._cache_delta: Optional[float] = None
        self._cache_in: Optional[np.ndarray] = None
        self._cache_keys = _EMPTY_I8  # active rows: target still open
        self._cache_src = _EMPTY_I8
        self._cache_aidx = _EMPTY_I8
        self._cache_inert = 0  # rows whose target froze: counted, not stored
        self._cache_hist: Optional[np.ndarray] = None  # all cached rows
        # Native-tier cache storage: preallocated capacity columns with
        # an explicit length, so forced rounds append/retire in place
        # instead of reconcatenating the whole cache (the public
        # ``_cache_keys``/``_cache_src``/``_cache_aidx`` become views).
        self._cache_len = 0
        self._cbuf_k: Optional[np.ndarray] = None
        self._cbuf_s: Optional[np.ndarray] = None
        self._cbuf_a: Optional[np.ndarray] = None
        self._degs: Optional[np.ndarray] = None  # static out-degrees
        #: Forced rounds answered from the frozen-emission cache.
        self.cache_hits = 0

    # -- lifecycle ------------------------------------------------------ #

    def reset(self) -> None:
        """Forget cached frozen emissions; keep every buffer allocation."""
        self._cache_delta = None
        if self._cache_in is not None:
            self._cache_in.fill(False)
        if self._cache_hist is not None:
            self._cache_hist.fill(0)
        self._cache_keys = _EMPTY_I8
        self._cache_src = _EMPTY_I8
        self._cache_aidx = _EMPTY_I8
        self._cache_inert = 0
        self._cache_len = 0

    def release_buffers(self) -> None:
        """Free the per-round scratch: banks and dense id-domain buffers.

        Everything dropped here is reallocated on next use with its
        zero-invariant intact (``_dense``/``_hist0`` allocate zeros,
        banks are write-before-read), so correctness is untouched —
        only the high-water allocation is surrendered.  What carries
        cross-round state survives: the frozen-emission cache columns
        and masks, and the static degree column.  The out-of-core
        sharded tier calls this when a shard is evicted so an evicted
        worker's footprint is O(state + cache), not O(its arcs).
        """
        self._i8 = _Bank(np.int64)
        self._f8 = _Bank(np.float64)
        self._b1 = _Bank(bool)
        self._eff = None
        self._mask = None
        self._hist0 = None
        self._m_loc = None
        self._e_loc = None

    def _arc_rows_view(self) -> np.ndarray:
        if self._arc_rows is None:
            self._arc_rows = np.repeat(
                np.arange(self.num_rows, dtype=np.int64), np.diff(self.indptr)
            )
        return self._arc_rows

    def _dense(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._eff is None or len(self._eff) < self.id_domain:
            self._eff = np.zeros(self.id_domain, dtype=np.float64)
            self._mask = np.zeros(self.id_domain, dtype=bool)
        return self._eff[: self.id_domain], self._mask[: self.id_domain]

    # -- direction planning --------------------------------------------- #

    def plan_direction(self, degree_sum: int, mode: str) -> str:
        """Resolve ``auto`` against the frontier degree-sum threshold."""
        if mode != "auto":
            return mode
        if _native.use_native():
            # The C push expansion scans exactly the frontier's
            # degree-sum arcs with zero allocation, so it never loses
            # to a full-arc pull scan (pull exists for the NumPy tier,
            # where push pays for expand/repeat materialization, and
            # for the explicit REPRO_EMIT_MODE=pull A/B switch).  Both
            # directions emit the identical candidate multiset, so the
            # choice cannot perturb results or counters.
            return "push"
        if self.num_arcs and degree_sum > PULL_DEGREE_FRACTION * self.num_arcs:
            return "pull"
        return "push"

    # -- raw expansion: unfiltered candidate columns -------------------- #

    def _emit_push(self, src_ids: np.ndarray, eff: np.ndarray, delta: float):
        """Expand ``src_ids`` (local rows, ascending) through their arcs.

        Returns unfiltered columns ``(keys, nd, src_local, aidx, count)``
        in source-major order — ascending source, arcs in CSR order (the
        legacy arrival order).  ``keys`` are in the id space of
        ``indices`` (global for shard slices).
        """
        indptr = self.indptr
        starts = indptr[src_ids]
        counts = indptr[src_ids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_I8, _EMPTY_F8, _EMPTY_I8, _EMPTY_I8, 0
        if _native.use_native():
            # Fused native expansion: one C pass (chunk-threaded over
            # the frontier when REPRO_EMIT_THREADS > 1) replaces the
            # gid/aidx gather cascade below, writing the already
            # light/Δ-filtered columns straight into the banks.
            keys_b = self._i8.get("full_keys", total)
            nd_b = self._f8.get("full_nd", total)
            src_b = self._i8.get("full_src", total)
            aidx_b = self._i8.get("full_aidx", total)
            count = _native.emit_push_into(
                indptr, self.indices, self.weights,
                src_ids, np.ascontiguousarray(eff, dtype=np.float64),
                delta, counts,
                keys_b, nd_b, src_b, aidx_b, _native.emit_threads(),
            )
            if count == 0:
                return _EMPTY_I8, _EMPTY_F8, _EMPTY_I8, _EMPTY_I8, 0
            return (
                keys_b[:count], nd_b[:count], src_b[:count],
                aidx_b[:count], count,
            )
        # gid: position of each expanded arc's source inside src_ids —
        # the np.repeat(arange(len(src_ids)), counts) expansion, built
        # in reused buffers (np.add.at absorbs zero-degree sources).
        gid = self._i8.get("push_gid", total)
        gid.fill(0)
        ends = np.cumsum(counts)
        bounds = ends[:-1]
        np.add.at(gid, bounds[bounds < total], 1)
        np.cumsum(gid, out=gid)
        # aidx: absolute arc index of each slot — arange + per-source
        # offset (start of the source's CSR row minus its output offset).
        adj = starts - (ends - counts)
        aidx = self._i8.get("push_aidx", total)
        np.take(adj, gid, out=aidx)
        aidx += self._arange(total)
        tgt = np.take(self.indices, aidx, out=self._i8.get("push_tgt", total))
        wv = np.take(self.weights, aidx, out=self._f8.get("push_w", total))
        nd = np.take(eff, gid, out=self._f8.get("push_nd", total))
        nd += wv
        ok = np.less_equal(wv, delta, out=self._b1.get("push_ok", total))
        np.logical_and(ok, nd <= delta, out=ok)
        count = int(np.count_nonzero(ok))
        if count == 0:
            return _EMPTY_I8, _EMPTY_F8, _EMPTY_I8, _EMPTY_I8, 0
        keys_c = _compress(ok, tgt, self._i8.get("full_keys", count))
        nd_c = _compress(ok, nd, self._f8.get("full_nd", count))
        gid_c = _compress(ok, gid, self._i8.get("full_gid", count))
        aidx_c = _compress(ok, aidx, self._i8.get("full_aidx", count))
        src_c = np.take(src_ids, gid_c, out=self._i8.get("full_src", count))
        return keys_c, nd_c, src_c, aidx_c, count

    def _emit_pull(self, mask: np.ndarray, eff: np.ndarray, delta: float):
        """Stream every arc target-major, keeping arcs whose source emits.

        ``mask``/``eff`` are dense over the global id space.  Candidate
        order is target-major with ascending sources inside each target
        group — the same *within-group* arrival order as push, which is
        the only order the merge tie-break depends on.  Returned
        ``src_local`` assumes emitting sources are local (callers mark
        only local rows in ``mask``).
        """
        arcs = self.num_arcs
        if arcs == 0:
            return _EMPTY_I8, _EMPTY_F8, _EMPTY_I8, _EMPTY_I8, 0
        indices = self.indices
        weights = self.weights
        if _native.use_native() and self.row_gids is None:
            # The native pull kernel derives keys/sources by contiguous
            # id arithmetic; mapped layouts stay on the NumPy branch.
            return self._emit_pull_native(mask, eff, delta)
        em = np.take(mask, indices, out=self._b1.get("pull_em", arcs))
        nd = np.take(eff, indices, out=self._f8.get("pull_nd", arcs))
        nd += weights
        ok = np.less_equal(weights, delta, out=self._b1.get("pull_ok", arcs))
        np.logical_and(ok, em, out=ok)
        np.logical_and(ok, nd <= delta, out=ok)
        count = int(np.count_nonzero(ok))

        # Boundary slice (shard layouts): outward arcs are not rows of
        # this slice, so pull cannot reach them target-major — expand
        # them push-style and append after the local-target block.
        bk = bnd = bsrc = baidx = None
        bcount = 0
        if self._b_aidx is not None and len(self._b_aidx):
            bw = np.take(weights, self._b_aidx)
            if self.row_gids is not None:
                bsrc_g = self.row_gids[self._b_rows]
            else:
                bsrc_g = self._b_rows + self.base if self.base else self._b_rows
            bem = mask[bsrc_g]
            bnd_all = eff[bsrc_g]
            bnd_all = bnd_all + bw
            bok = bem & (bw <= delta) & (bnd_all <= delta)
            bcount = int(np.count_nonzero(bok))
            if bcount:
                bk = np.take(indices, self._b_aidx)[bok]
                bnd = bnd_all[bok]
                bsrc = self._b_rows[bok]
                baidx = self._b_aidx[bok]

        total = count + bcount
        if total == 0:
            return _EMPTY_I8, _EMPTY_F8, _EMPTY_I8, _EMPTY_I8, 0
        keys_c = self._i8.get("full_keys", total)
        nd_c = self._f8.get("full_nd", total)
        src_c = self._i8.get("full_src", total)
        aidx_c = self._i8.get("full_aidx", total)
        if count:
            np.compress(ok, self._arc_rows_view(), out=keys_c[:count])
            if self.row_gids is not None:
                keys_c[:count] = self.row_gids[keys_c[:count]]
            elif self.base:
                keys_c[:count] += self.base
            np.compress(ok, nd, out=nd_c[:count])
            np.compress(ok, indices, out=src_c[:count])
            if self.row_gids is not None:
                src_c[:count] = self.localidx[src_c[:count]]
            elif self.base:
                src_c[:count] -= self.base
            np.compress(ok, self._arange(arcs), out=aidx_c[:count])
        if bcount:
            keys_c[count:total] = bk
            nd_c[count:total] = bnd
            src_c[count:total] = bsrc
            aidx_c[count:total] = baidx
        return keys_c, nd_c, src_c, aidx_c, total

    def _emit_pull_native(self, mask: np.ndarray, eff: np.ndarray, delta: float):
        """Native tier of :meth:`_emit_pull`: same columns, same order.

        The local-target block streams through one C pass over the
        reverse CSR (chunk-threaded over contiguous arc ranges when
        ``REPRO_EMIT_THREADS > 1``); the shard-boundary block — a few
        outward arcs at most — stays in NumPy and is appended after it,
        exactly like the pure path.
        """
        arcs = self.num_arcs
        indices = self.indices
        weights = self.weights

        # Boundary slice first so the banks can be sized for the total.
        bk = bnd = bsrc = baidx = None
        bcount = 0
        if self._b_aidx is not None and len(self._b_aidx):
            bw = np.take(weights, self._b_aidx)
            bsrc_g = self._b_rows + self.base if self.base else self._b_rows
            bem = mask[bsrc_g]
            bnd_all = eff[bsrc_g]
            bnd_all = bnd_all + bw
            bok = bem & (bw <= delta) & (bnd_all <= delta)
            bcount = int(np.count_nonzero(bok))
            if bcount:
                bk = np.take(indices, self._b_aidx)[bok]
                bnd = bnd_all[bok]
                bsrc = self._b_rows[bok]
                baidx = self._b_aidx[bok]

        keys_b = self._i8.get("full_keys", arcs + bcount)
        nd_b = self._f8.get("full_nd", arcs + bcount)
        src_b = self._i8.get("full_src", arcs + bcount)
        aidx_b = self._i8.get("full_aidx", arcs + bcount)
        count = _native.emit_pull_into(
            self._arc_rows_view(), indices, weights, mask, eff, delta,
            self.base, keys_b, nd_b, src_b, aidx_b, _native.emit_threads(),
        )
        total = count + bcount
        if total == 0:
            return _EMPTY_I8, _EMPTY_F8, _EMPTY_I8, _EMPTY_I8, 0
        if bcount:
            keys_b[count:total] = bk
            nd_b[count:total] = bnd
            src_b[count:total] = bsrc
            aidx_b[count:total] = baidx
        return keys_b[:total], nd_b[:total], src_b[:total], aidx_b[:total], total

    def _arange(self, size: int) -> np.ndarray:
        buf = self._i8._bufs.get("arange")
        if buf is None or len(buf) < size:
            buf = np.arange(max(size, 1024), dtype=np.int64)
            self._i8._bufs["arange"] = buf
        return buf[:size]

    # -- raw entry point (sharded workers) ------------------------------ #

    def emit_raw(
        self,
        *,
        center: np.ndarray,
        dist: np.ndarray,
        frozen: np.ndarray,
        frozen_iter: np.ndarray,
        delta: float,
        force: bool,
        rescale: float = 0.0,
        iteration: int = 0,
        sources: Optional[np.ndarray] = None,
        mode: Optional[str] = None,
        allow_cache: bool = True,
    ):
        """Unfiltered fused expansion: ``(keys, nd, src_local, aidx, emitted)``.

        The scratch-buffered, direction-optimized equivalent of
        ``emit_frontier(..., with_sources=True)`` minus the value-matrix
        materialization; sharded workers route and filter the columns
        themselves (only locally-owned targets can be improvement-
        tested).  State arrays are local; ``keys`` follow ``indices``'
        id space.  On cache-replayed forced rounds ``emitted`` counts
        inert rows too and exceeds the column length; consumers must
        merge order-free (the sharded merge does).
        """
        mode = emit_mode() if mode is None else mode
        if force:
            m_loc, e_loc, degree_sum = self._forced_sets(
                center, dist, frozen, frozen_iter, delta, rescale, iteration
            )
            if allow_cache and rescale == 0.0 and mode == "auto":
                live_loc = m_loc & ~frozen
                live_ids = np.flatnonzero(live_loc)
                live_sum = int(
                    (self.indptr[live_ids + 1] - self.indptr[live_ids]).sum()
                )
                if live_sum <= PULL_DEGREE_FRACTION * self.num_arcs:
                    # Replay frozen emissions from the cache; only the
                    # live frontier expands.  ``emitted`` includes the
                    # inert rows (frozen or external targets) that are
                    # replayed as counts, so it can exceed the column
                    # length — callers must read the returned count.
                    self.cache_hits += 1
                    self._cache_update(frozen, delta)
                    lk, lnd, lsrc, laidx, lcnt = self._emit_push(
                        live_ids, e_loc[live_ids], delta
                    )
                    active = len(self._cache_keys)
                    emitted = self._cache_inert + active + lcnt
                    keys = np.concatenate((self._cache_keys, lk))
                    nd = np.concatenate(
                        (np.take(self.weights, self._cache_aidx), lnd)
                    )
                    src = np.concatenate((self._cache_src, lsrc))
                    aidx = np.concatenate((self._cache_aidx, laidx))
                    return keys, nd, src, aidx, emitted
            if self.plan_direction(degree_sum, mode) == "pull":
                eff, mask = self._pull_dense(m_loc, e_loc)
                return self._emit_pull(mask, eff, delta)
            src = np.flatnonzero(m_loc)
            return self._emit_push(src, e_loc[src], delta)
        src = sources if sources is not None else _EMPTY_I8
        if len(src):
            src = src[~frozen[src]]
        if len(src):
            eff_vals = dist[src]
            keep = eff_vals < delta
            src = src[keep]
            eff_vals = eff_vals[keep]
        if not len(src):
            return _EMPTY_I8, _EMPTY_F8, _EMPTY_I8, _EMPTY_I8, 0
        degs = self.indptr[src + 1] - self.indptr[src]
        if self.plan_direction(int(degs.sum()), mode) == "pull":
            eff, mask = self._dense()
            if self.row_gids is None:
                mask[self.base : self.base + self.num_rows].fill(False)
                mask[src + self.base] = True
                eff[src + self.base] = eff_vals
            else:
                mask[self.row_gids] = False
                gsrc = self.row_gids[src]
                mask[gsrc] = True
                eff[gsrc] = eff_vals
            return self._emit_pull(mask, eff, delta)
        return self._emit_push(src, eff_vals, delta)

    def _local_sets(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row (mask, eff) buffers — dense-window views when the row
        set is contiguous, dedicated local arrays when mapped."""
        if self.row_gids is None:
            eff, mask = self._dense()
            lo, hi = self.base, self.base + self.num_rows
            return mask[lo:hi], eff[lo:hi]
        if self._m_loc is None:
            self._m_loc = np.zeros(self.num_rows, dtype=bool)
            self._e_loc = np.zeros(self.num_rows, dtype=np.float64)
        return self._m_loc, self._e_loc

    def _pull_dense(
        self, m_loc: np.ndarray, e_loc: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dense global (eff, mask) for the pull direction.

        Contiguous layouts already maintained the dense window in place;
        mapped layouts scatter their local buffers to the rows' global
        positions (clearing only previously-written positions — every
        dense write in mapped mode lands on a ``row_gids`` entry).
        """
        eff, mask = self._dense()
        if self.row_gids is not None:
            mask[self.row_gids] = False
            on = self.row_gids[m_loc]
            mask[on] = True
            eff[on] = e_loc[m_loc]
        return eff, mask

    def _forced_sets(
        self, center, dist, frozen, frozen_iter, delta, rescale, iteration
    ):
        """Per-row emitting mask + effective distances for a forced round."""
        m_loc, e_loc = self._local_sets()
        if self._degs is None:
            self._degs = self.indptr[1:] - self.indptr[:-1]
        if rescale == 0.0 and _native.use_native():
            # One C pass builds mask, eff, and the degree sum together.
            degree_sum = _native.forced_sets(
                center, dist, frozen, self._degs, delta, m_loc, e_loc
            )
            return m_loc, e_loc, degree_sum
        np.not_equal(center, NO_CENTER, out=m_loc)
        np.copyto(e_loc, dist)
        if rescale:
            fidx = np.flatnonzero(frozen)
            e_loc[fidx] = dist[fidx] - rescale * (iteration - frozen_iter[fidx])
        else:
            np.copyto(e_loc, 0.0, where=frozen)
        np.logical_and(m_loc, e_loc < delta, out=m_loc)
        degree_sum = int(np.sum(self._degs, where=m_loc, initial=0))
        return m_loc, e_loc, degree_sum

    # -- the fused emit: filter + accounting (whole-graph layout) ------- #

    def emit(
        self,
        *,
        center: np.ndarray,
        dist: np.ndarray,
        dacc: np.ndarray,
        frozen: np.ndarray,
        frozen_iter: np.ndarray,
        delta: float,
        force: bool,
        rescale: float = 0.0,
        iteration: int = 0,
        sources: Optional[np.ndarray] = None,
        mode: Optional[str] = None,
        order_free: bool = True,
        accounting: bool = True,
    ) -> EmitBatch:
        """One round's fused candidate generation (whole-graph layout).

        Semantically :func:`repro.mrimpl.growing_mr.emit_frontier`
        followed by the merge-time discard of unadoptable candidates,
        with the counters and histogram of the *unfiltered* emission.
        ``sources`` is the active frontier for non-forced rounds (local
        ids, ascending); forced rounds scan all nodes.
        ``order_free=False`` disables the frozen-emission cache so rows
        keep the push/pull arrival order (grouped, order-sensitive
        consumers need it); explicit ``push``/``pull`` modes disable it
        too, so the A/B actually exercises the named direction.
        """
        if self.base:
            raise ValueError("emit() is the whole-graph layout; use emit_raw")
        batch = EmitBatch()
        mode = emit_mode() if mode is None else mode
        if not force:
            cols = self.emit_raw(
                center=center,
                dist=dist,
                frozen=frozen,
                frozen_iter=frozen_iter,
                delta=delta,
                force=False,
                rescale=rescale,
                iteration=iteration,
                sources=sources,
                mode=mode,
            )
            return self._finish(batch, cols, center, dist, frozen, accounting)

        m_loc, e_loc, degree_sum = self._forced_sets(
            center, dist, frozen, frozen_iter, delta, rescale, iteration
        )
        if order_free and rescale == 0.0 and mode == "auto":
            live_loc = m_loc & ~frozen
            live_ids = np.flatnonzero(live_loc)
            live_sum = int(
                (self.indptr[live_ids + 1] - self.indptr[live_ids]).sum()
            )
            if live_sum <= PULL_DEGREE_FRACTION * self.num_arcs:
                return self._emit_forced_cached(
                    batch, live_ids, e_loc, center, dist, frozen, delta,
                    accounting,
                )
        if self.plan_direction(degree_sum, mode) == "pull":
            eff, mask = self._pull_dense(m_loc, e_loc)
            cols = self._emit_pull(mask, eff, delta)
        else:
            src = np.flatnonzero(m_loc)
            cols = self._emit_push(src, e_loc[src], delta)
        return self._finish(batch, cols, center, dist, frozen, accounting)

    def _finish(self, batch, cols, center, dist, frozen, accounting):
        """Shared tail: accounting over the full set, then the filter."""
        keys_c, nd_c, src_c, aidx_c, count = cols
        batch.emitted = count
        if count == 0:
            return batch
        if _native.use_native():
            # Fused finish: one C stream over the candidate columns does
            # the accounting histogram (stamped, ascending — identical
            # to _histogram) AND the improvement filter + column
            # materialization, replacing two full passes with one.
            domain = self.num_rows
            if self._hist0 is None or len(self._hist0) < domain:
                self._hist0 = np.zeros(domain, dtype=np.int64)
            gk_b = self._i8.get("hist_gk", count)
            gc_b = self._i8.get("hist_gc", count)
            f_keys = self._i8.get("f_keys", count)
            f_nd = self._f8.get("f_nd", count)
            f_src = self._i8.get("f_src", count)
            f_w = self._f8.get("f_w", count)
            f_ctr = self._f8.get("f_ctr", count)
            f_srcf = self._f8.get("f_srcf", count)
            kept, g = _native.finish_batch(
                keys_c, nd_c, src_c, aidx_c, dist, frozen,
                self.weights, center,
                self._hist0, gk_b, gc_b, accounting,
                f_keys, f_nd, f_src, f_w, f_ctr, f_srcf,
            )
            if accounting:
                batch.group_keys = gk_b[:g].copy()
                batch.group_counts = gc_b[:g].copy()
            batch.count = kept
            if kept == 0:
                return batch
            batch.keys = f_keys[:kept]
            batch.nd = f_nd[:kept]
            batch.src = f_src[:kept]
            batch.w = f_w[:kept]
            batch.ctr = f_ctr[:kept]
            batch.srcf = f_srcf[:kept]
            return batch
        if accounting:
            batch.group_keys, batch.group_counts = self._histogram(keys_c)
        tgt_dist = np.take(dist, keys_c, out=self._f8.get("flt_dist", count))
        imp = np.less(nd_c, tgt_dist, out=self._b1.get("flt_imp", count))
        np.logical_and(imp, ~frozen[keys_c], out=imp)
        kept = int(np.count_nonzero(imp))
        batch.count = kept
        if kept == 0:
            return batch
        batch.keys = _compress(imp, keys_c, self._i8.get("f_keys", kept))
        batch.nd = _compress(imp, nd_c, self._f8.get("f_nd", kept))
        batch.src = _compress(imp, src_c, self._i8.get("f_src", kept))
        aidx = _compress(imp, aidx_c, self._i8.get("f_aidx", kept))
        batch.w = np.take(self.weights, aidx, out=self._f8.get("f_w", kept))
        ctr = self._f8.get("f_ctr", kept)
        ctr[:] = center[batch.src]
        batch.ctr = ctr
        srcf = self._f8.get("f_srcf", kept)
        srcf[:] = batch.src
        batch.srcf = srcf
        return batch

    def _cache_update(self, frozen: np.ndarray, delta: float) -> None:
        """Bring the frozen-emission cache up to the current state.

        1. Append the light arcs of sources frozen since the last
           replay (a frozen source emits at effective distance 0, so
           its candidate distance is the arc weight).  Rows targeting
           another shard's nodes are *immediately* inert: the sharded
           exchange never ships frozen-source candidates (receivers
           regenerate them from replicas), so they only ever count.
        2. Retire rows whose target froze: replayed as counts and
           histogram mass only (a frozen target can never adopt).

        A Δ change invalidates everything — the light-arc filter moved.
        """
        lo, hi = self.base, self.base + self.num_rows
        if self._cache_in is None:
            self._cache_in = np.zeros(self.num_rows, dtype=bool)
            self._cache_hist = np.zeros(self.num_rows, dtype=np.int64)
        if self._cache_delta != delta:
            self._cache_in.fill(False)
            self._cache_hist.fill(0)
            self._cache_keys = _EMPTY_I8
            self._cache_src = _EMPTY_I8
            self._cache_aidx = _EMPTY_I8
            self._cache_inert = 0
            self._cache_len = 0
            self._cache_delta = delta
        if _native.use_native() and self.row_gids is None:
            # The native maintenance kernels test ownership by the
            # contiguous [lo, hi) range; mapped layouts stay in NumPy.
            self._cache_update_native(frozen, delta, lo, hi)
            return

        newly = np.flatnonzero(frozen & ~self._cache_in)
        if len(newly):
            k, nd, s, a, cnt = self._emit_push(
                newly, np.zeros(len(newly)), delta
            )
            if cnt:
                if self.row_gids is not None:
                    owned = self.owners[k] == self.shard_id
                else:
                    owned = (k >= lo) & (k < hi)
                ext = cnt - int(np.count_nonzero(owned))
                if ext:
                    self._cache_inert += ext
                    k, s, a = k[owned], s[owned], a[owned]
                if len(k):
                    if self.row_gids is not None:
                        k_loc = self.localidx[k]
                    else:
                        k_loc = k - lo if lo else k
                    if _native.use_native():
                        _native.bincount_into(
                            np.ascontiguousarray(k_loc, dtype=np.int64),
                            self._cache_hist,
                        )
                    else:
                        np.add.at(self._cache_hist, k_loc, 1)
                    self._cache_keys = np.concatenate((self._cache_keys, k))
                    self._cache_src = np.concatenate((self._cache_src, s))
                    self._cache_aidx = np.concatenate((self._cache_aidx, a))
            self._cache_in[newly] = True

        if len(self._cache_keys):
            if self.row_gids is not None:
                loc = self.localidx[self._cache_keys]
            else:
                loc = self._cache_keys - lo if lo else self._cache_keys
            open_t = ~frozen[loc]
            dropped = len(open_t) - int(np.count_nonzero(open_t))
            if dropped:
                self._cache_inert += dropped
                self._cache_keys = self._cache_keys[open_t]
                self._cache_src = self._cache_src[open_t]
                self._cache_aidx = self._cache_aidx[open_t]

    def _cache_reserve(self, need: int) -> None:
        """Grow the in-place cache columns to hold ``need`` rows."""
        if self._cbuf_k is not None and len(self._cbuf_k) >= need:
            return
        cap = max(int(need), 4096)
        if self._cbuf_k is not None:
            cap = max(cap, len(self._cbuf_k) + (len(self._cbuf_k) >> 1))
        for name in ("_cbuf_k", "_cbuf_s", "_cbuf_a"):
            old = getattr(self, name)
            buf = np.empty(cap, dtype=np.int64)
            if old is not None and self._cache_len:
                buf[: self._cache_len] = old[: self._cache_len]
            setattr(self, name, buf)

    def _cache_update_native(self, frozen, delta, lo, hi) -> None:
        """Native cache maintenance: append + retire in place.

        Same append/retire semantics as the NumPy branch, but the cache
        lives in preallocated capacity columns so forced rounds never
        reconcatenate it; ``_cache_keys``/``_cache_src``/``_cache_aidx``
        become prefix views over those columns.
        """
        if len(self._cache_keys) and (
            self._cbuf_k is None or self._cache_keys.base is not self._cbuf_k
        ):
            # The cache was last maintained by the NumPy branch (kernel
            # tier flipped mid-lifetime): resync the capacity columns.
            n = len(self._cache_keys)
            self._cache_len = 0
            self._cache_reserve(n)
            self._cbuf_k[:n] = self._cache_keys
            self._cbuf_s[:n] = self._cache_src
            self._cbuf_a[:n] = self._cache_aidx
            self._cache_len = n

        newly = np.flatnonzero(frozen & ~self._cache_in)
        if len(newly):
            # Fused expansion: frozen sources emit at effective distance
            # 0, so the light/Δ filter and the owned-range append run in
            # one C pass straight into the capacity columns (no
            # intermediate candidate banks).
            bound = int(
                (self.indptr[newly + 1] - self.indptr[newly]).sum()
            )
            self._cache_reserve(self._cache_len + bound)
            appended, cnt = _native.cache_emit(
                self.indptr, self.indices, self.weights, newly,
                delta, lo, hi, self._cache_hist,
                self._cbuf_k, self._cbuf_s, self._cbuf_a,
                self._cache_len,
            )
            self._cache_inert += cnt - appended
            self._cache_len += appended
            self._cache_in[newly] = True

        if self._cache_len:
            new_len = _native.cache_retire(
                self._cbuf_k, self._cbuf_s, self._cbuf_a,
                self._cache_len, frozen, lo,
            )
            self._cache_inert += self._cache_len - new_len
            self._cache_len = new_len
        n = self._cache_len
        if n:
            self._cache_keys = self._cbuf_k[:n]
            self._cache_src = self._cbuf_s[:n]
            self._cache_aidx = self._cbuf_a[:n]
        else:
            self._cache_keys = _EMPTY_I8
            self._cache_src = _EMPTY_I8
            self._cache_aidx = _EMPTY_I8

    def _emit_forced_cached(
        self, batch, live_ids, eff, center, dist, frozen, delta, accounting
    ):
        """Forced-round emission replayed from the frozen-emission cache."""
        self.cache_hits += 1
        self._cache_update(frozen, delta)

        # Live (unfrozen assigned) sources expand push-style; the
        # cache path is only taken when their degree-sum is small.
        lk, lnd, lsrc, laidx, lcnt = self._emit_push(live_ids, eff[live_ids], delta)

        f_active = len(self._cache_keys)
        batch.emitted = self._cache_inert + f_active + lcnt
        batch.order_free = True
        if batch.emitted == 0:
            return batch

        if accounting:
            hist = self._cache_hist.copy()
            if lcnt:
                if _native.use_native():
                    _native.bincount_into(lk, hist)
                else:
                    np.add.at(hist, lk, 1)
            gk = np.flatnonzero(hist)
            batch.group_keys = gk
            batch.group_counts = hist[gk]

        # 4. Improvement filter: active cache rows first, live rows after
        # (order-free consumers only — recorded on the batch).
        if _native.use_native():
            cap = f_active + lcnt
            b_keys = self._i8.get("fc_keys", cap)
            b_nd = self._f8.get("fc_nd", cap)
            b_src = self._i8.get("fc_src", cap)
            b_aidx = self._i8.get("fc_aidx", cap)
            b_w = self._f8.get("fc_w", cap)
            b_ctr = self._f8.get("fc_ctr", cap)
            b_srcf = self._f8.get("fc_srcf", cap)
            fcnt = 0
            if f_active:
                # Cache rows survive when the arc weight still improves
                # the target; nd is the weight itself (eff = 0).
                fcnt = _native.cache_replay(
                    self._cache_keys, self._cache_src, self._cache_aidx,
                    f_active, self.weights, dist,
                    b_keys, b_nd, b_src, b_aidx,
                )
            lkept = 0
            if lcnt:
                lkept = _native.filter_improve(
                    lk, lnd, lsrc, laidx, dist, frozen,
                    self.weights, center,
                    b_keys[fcnt:], b_nd[fcnt:], b_src[fcnt:],
                    b_w[fcnt:], b_ctr[fcnt:], b_srcf[fcnt:],
                )
            kept = fcnt + lkept
            batch.count = kept
            if kept == 0:
                return batch
            if fcnt:
                # Fill the cache block's materialized columns (the live
                # block's were produced by filter_improve above).
                _native.materialize(
                    b_src[:fcnt], b_aidx[:fcnt], self.weights, center,
                    b_w[:fcnt], b_ctr[:fcnt], b_srcf[:fcnt],
                )
            batch.keys = b_keys[:kept]
            batch.nd = b_nd[:kept]
            batch.src = b_src[:kept]
            batch.w = b_w[:kept]
            batch.ctr = b_ctr[:kept]
            batch.srcf = b_srcf[:kept]
            return batch
        if f_active:
            fw = np.take(self.weights, self._cache_aidx)
            f_imp = fw < dist[self._cache_keys]
            fk = self._cache_keys[f_imp]
            fnd = fw[f_imp]
            fs = self._cache_src[f_imp]
            fa = self._cache_aidx[f_imp]
        else:
            fk = _EMPTY_I8
            fnd = _EMPTY_F8
            fs = fa = _EMPTY_I8
        if lcnt:
            l_imp = np.less(lnd, dist[lk])
            np.logical_and(l_imp, ~frozen[lk], out=l_imp)
            lk = lk[l_imp]
            lnd = lnd[l_imp]
            lsrc = lsrc[l_imp]
            laidx = laidx[l_imp]
        else:
            lk, lnd = _EMPTY_I8, _EMPTY_F8
            lsrc = laidx = _EMPTY_I8
        keys = np.concatenate((fk, lk))
        kept = len(keys)
        batch.count = kept
        if kept == 0:
            return batch
        batch.keys = keys
        batch.nd = np.concatenate((fnd, lnd))
        batch.src = np.concatenate((fs, lsrc))
        aidx = np.concatenate((fa, laidx))
        batch.w = np.take(self.weights, aidx)
        batch.ctr = center[batch.src].astype(np.float64)
        batch.srcf = batch.src.astype(np.float64)
        return batch

    # ------------------------------------------------------------------ #

    #: Dense histograms only pay off when the target domain is not far
    #: larger than the batch (mirrors the engine's counting-shuffle
    #: heuristic); skinnier batches sort their few rows instead.
    _HIST_SLACK = 65_536

    def _histogram(self, keys_c: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Full-multiset per-target histogram ``(group_keys, counts)``."""
        domain = self.num_rows
        if _native.use_native():
            # One stamped C pass, O(batch + distinct·log distinct): the
            # same (group_keys, counts) values as either branch below.
            if self._hist0 is None or len(self._hist0) < domain:
                self._hist0 = np.zeros(domain, dtype=np.int64)
            gk_b = self._i8.get("hist_gk", len(keys_c))
            gc_b = self._i8.get("hist_gc", len(keys_c))
            g = _native.count_keys(keys_c, self._hist0, gk_b, gc_b)
            return gk_b[:g].copy(), gc_b[:g].copy()
        if domain <= 4 * len(keys_c) + self._HIST_SLACK:
            dense = np.bincount(keys_c, minlength=domain)
            gk = np.flatnonzero(dense)
            counts = dense[gk]
        else:
            gk, counts = np.unique(keys_c, return_counts=True)
        return gk.astype(np.int64), counts.astype(np.int64)
