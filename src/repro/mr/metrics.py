"""Platform-independent performance counters.

The paper's experimental comparison (Table 2, Figures 2-3) reports, besides
wall-clock time, two implementation-independent metrics:

* **rounds** — MapReduce rounds executed;
* **work** — "the sum of node updates and messages generated".

:class:`Counters` accumulates both, plus finer-grained statistics that the
ablation benchmarks use (growing steps, edge relaxations attempted, and the
largest single-round message volume, which bounds shuffle pressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Counters", "PHASES"]

#: Canonical wall-clock phase names of one growing-step round, in
#: pipeline order: candidate generation, grouping/exchange, the
#: per-target merge, and the state update.
PHASES = ("emit", "shuffle", "reduce", "apply")


@dataclass
class Counters:
    """Mutable accumulator of rounds/messages/updates.

    Attributes
    ----------
    rounds:
        MapReduce rounds.  For the vectorized executors each Δ-growing step
        or Δ-stepping phase counts as one round, matching §4.1's
        observation that a growing step takes O(1) rounds.
    messages:
        Relaxation requests sent across edges (one per light edge scanned
        out of an active node).
    updates:
        Node-state improvements actually applied.
    relaxations:
        Candidate relaxations that passed the weight/threshold filters
        (messages that reached the reduce side).
    growing_steps:
        Δ-growing steps (CL-DIAM) or bucket phases (Δ-stepping).
    peak_round_messages:
        Maximum messages generated in a single round; proxies the maximum
        shuffle volume and therefore M_T pressure.
    """

    rounds: int = 0
    messages: int = 0
    updates: int = 0
    relaxations: int = 0
    growing_steps: int = 0
    peak_round_messages: int = 0
    extra: Dict[str, int] = field(default_factory=dict)
    #: Accumulated wall-clock seconds per pipeline phase (see
    #: :data:`PHASES`).  Deliberately *not* part of :meth:`snapshot`:
    #: snapshots are compared bit-for-bit across backends and kernel
    #: modes, and wall-clock never is.  Read via :meth:`timing_snapshot`.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Resolved execution environment of the run — kernel tier
    #: (``py``/``native``), emit thread count, native availability —
    #: stamped by the runner.  Like :attr:`timings`, excluded from
    #: :meth:`snapshot`: the tier must never perturb the comparable
    #: counters, only annotate them.  Read via :meth:`impl_snapshot`.
    impl: Dict[str, object] = field(default_factory=dict)

    @property
    def work(self) -> int:
        """The paper's work metric: node updates + messages generated."""
        return self.messages + self.updates

    def record_round(self, messages: int, updates: int, relaxations: int = 0) -> None:
        """Account one round's traffic in a single call."""
        self.rounds += 1
        self.messages += int(messages)
        self.updates += int(updates)
        self.relaxations += int(relaxations)
        self.peak_round_messages = max(self.peak_round_messages, int(messages))

    def add_time(self, phase: str, seconds: float) -> None:
        """Accumulate wall-clock seconds into one pipeline phase."""
        self.timings[phase] = self.timings.get(phase, 0.0) + float(seconds)

    def timing_snapshot(self) -> Dict[str, float]:
        """Per-phase wall-clock seconds, canonical phases first.

        Phases from :data:`PHASES` appear in pipeline order (0.0 when
        never recorded, so reports have a stable shape); any extra
        phases a backend recorded follow alphabetically.
        """
        out = {phase: round(self.timings.get(phase, 0.0), 6) for phase in PHASES}
        for key in sorted(self.timings):
            if key not in out:
                out[key] = round(self.timings[key], 6)
        return out

    def impl_snapshot(self) -> Dict[str, object]:
        """Resolved kernel-tier metadata (empty until a runner stamps it)."""
        return dict(self.impl)

    def merge(self, other: "Counters") -> "Counters":
        """Accumulate ``other`` into ``self`` (returns ``self`` for chaining)."""
        self.rounds += other.rounds
        self.messages += other.messages
        self.updates += other.updates
        self.relaxations += other.relaxations
        self.growing_steps += other.growing_steps
        self.peak_round_messages = max(
            self.peak_round_messages, other.peak_round_messages
        )
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value
        for key, value in other.timings.items():
            self.timings[key] = self.timings.get(key, 0.0) + value
        if other.impl:
            self.impl.update(other.impl)
        return self

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view (for reports and JSON serialization)."""
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "updates": self.updates,
            "relaxations": self.relaxations,
            "growing_steps": self.growing_steps,
            "peak_round_messages": self.peak_round_messages,
            "work": self.work,
            **self.extra,
        }

    _KNOWN_FIELDS = (
        "rounds",
        "messages",
        "updates",
        "relaxations",
        "growing_steps",
        "peak_round_messages",
    )

    @classmethod
    def restore_into(cls, counters: "Counters", snapshot: Dict[str, int]) -> None:
        """Overwrite ``counters``'s comparable fields from a :meth:`snapshot`.

        The checkpoint/recovery inverse of :meth:`snapshot`: a resumed
        or replayed run continues accumulating from exactly the counts
        the snapshot recorded, so the final counters are bit-identical
        to an uninterrupted run.  ``work`` is derived and dropped; every
        other unknown key goes back to ``extra``.  :attr:`timings` and
        :attr:`impl` are untouched — wall-clock and environment are
        never bit-compared.
        """
        for name in cls._KNOWN_FIELDS:
            setattr(counters, name, int(snapshot.get(name, 0)))
        counters.extra = {
            key: value
            for key, value in snapshot.items()
            if key not in cls._KNOWN_FIELDS and key != "work"
        }
