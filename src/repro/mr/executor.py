"""Execution backends for the MR engine.

The engine hands an executor a mapping ``{key: [values]}``; the executor
partitions the key groups across ``num_workers`` simulated machines,
applies the reducer to every group, and reports per-worker loads so the
engine can accumulate the round's critical-path cost.

Two backends are provided:

* :class:`SerialExecutor` — applies reducers in one process.  This is the
  default and, on a single-core host, also the fastest; worker loads are
  still tracked so the critical-path *model* reflects a multi-machine
  platform.
* :class:`MultiprocessingExecutor` — fans worker shards out to a process
  pool.  Reducers must be picklable (module-level functions).  On
  multi-core hosts this provides real parallel speedup; it exists mainly
  to demonstrate that the engine's contract supports genuine parallelism.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Tuple

from repro.mr.partitioner import hash_partition

__all__ = ["SerialExecutor", "MultiprocessingExecutor"]

Reducer = Callable[[Hashable, List[object]], Iterable[Tuple[Hashable, object]]]


def _apply_shard(args):
    """Run a reducer over one worker's shard of key groups (picklable)."""
    shard, reducer = args
    out: List[Tuple[Hashable, object]] = []
    load = 0
    for key, values in shard:
        load += len(values)
        produced = list(reducer(key, values))
        load += len(produced)
        out.extend(produced)
    return out, load


def _shard_groups(
    groups: Dict[Hashable, List[object]], num_workers: int
) -> List[List[Tuple[Hashable, List[object]]]]:
    shards: List[List[Tuple[Hashable, List[object]]]] = [
        [] for _ in range(num_workers)
    ]
    for key, values in groups.items():
        shards[hash_partition(key, num_workers)].append((key, values))
    return shards


class SerialExecutor:
    """Apply all reducers in-process, modelling ``num_workers`` machines."""

    def run(
        self,
        groups: Dict[Hashable, List[object]],
        reducer: Reducer,
        num_workers: int,
    ) -> Tuple[List[Tuple[Hashable, object]], List[int]]:
        shards = _shard_groups(groups, num_workers)
        output: List[Tuple[Hashable, object]] = []
        loads: List[int] = []
        for shard in shards:
            out, load = _apply_shard((shard, reducer))
            output.extend(out)
            loads.append(load)
        return output, loads


class MultiprocessingExecutor:
    """Apply reducers through a :mod:`multiprocessing` pool.

    Parameters
    ----------
    processes:
        Pool size; defaults to ``num_workers`` passed at run time (capped
        at the host CPU count by the pool itself).

    Notes
    -----
    The pool is created lazily on first use and reused across rounds; call
    :meth:`close` (or use the instance as a context manager) when done.
    """

    def __init__(self, processes: int = None):
        self.processes = processes
        self._pool = None

    def _ensure_pool(self, num_workers: int):
        if self._pool is None:
            import multiprocessing

            size = self.processes or num_workers
            self._pool = multiprocessing.Pool(processes=size)
        return self._pool

    def run(
        self,
        groups: Dict[Hashable, List[object]],
        reducer: Reducer,
        num_workers: int,
    ) -> Tuple[List[Tuple[Hashable, object]], List[int]]:
        shards = _shard_groups(groups, num_workers)
        pool = self._ensure_pool(num_workers)
        results = pool.map(_apply_shard, [(shard, reducer) for shard in shards])
        output: List[Tuple[Hashable, object]] = []
        loads: List[int] = []
        for out, load in results:
            output.extend(out)
            loads.append(load)
        return output, loads

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
