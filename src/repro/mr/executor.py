"""Execution backends for the MR engine.

For legacy per-key rounds the engine hands an executor a mapping
``{key: [values]}``; the executor partitions the key groups across
``num_workers`` simulated machines, applies the reducer to every group,
and reports per-worker loads so the engine can accumulate the round's
critical-path cost.  For batch rounds (see :mod:`repro.mr.batch`) the
engine performs the vectorized shuffle itself and hands executors that
implement ``run_batch`` the grouped ``(keys, offsets, values)`` arrays.

Four backends are provided:

* :class:`SerialExecutor` — applies per-key reducers in one process.
  This is the default and the paper-literal simulation; worker loads are
  still tracked so the critical-path *model* reflects a multi-machine
  platform.
* :class:`MultiprocessingExecutor` — fans per-key worker shards out to a
  process pool.  Reducers must be picklable (module-level functions).
  Every key group is re-pickled each round, so the speedup rarely covers
  the serialization cost; it survives as the contrast case for the
  shared-memory backend.
* :class:`VectorExecutor` — runs batch rounds by applying the batch
  reducer to all groups in one NumPy call, in-process.  This is the fast
  single-host backend (``--executor vector``).
* :class:`SharedMemoryExecutor` — runs batch rounds on a
  :class:`concurrent.futures.ProcessPoolExecutor`, shipping the grouped
  arrays to workers through ``multiprocessing.shared_memory`` so the
  payload crosses the process boundary exactly once and pickle-free
  (``--executor parallel``).
* :class:`MmapExecutor` — same pool protocol, but each round's grouped
  arrays spill to one file that every worker memory-maps read-only
  (``--executor mmap``).  Workers receive a *path + offsets*, never
  arrays; on a warm page cache this matches shared memory while also
  working where ``/dev/shm`` is tiny or absent (containers) and leaving
  a file handle a future multi-host transport could ship.

The pool backends publish each round's payload through a
:class:`_RoundPayload` context manager backed by a ``weakref.finalize``
finalizer, so the segments/files are reclaimed even when a worker raises
mid-round (or the round is abandoned without ``close``).  They also
account, per round, the bytes actually *pickled* to workers
(``bytes_shipped_per_round``) versus the bytes *published* zero-copy
(``bytes_published_per_round``) — the zero-copy tests assert that graph-
and payload-scale data never travels through pickle.

The batch backends still accept legacy per-key rounds (delegated to
the serial shard loop), so one engine can mix batch hot-path rounds with
per-key rounds in the same computation.

A sixth backend, the owner-compute :class:`~repro.mr.sharded.ShardedExecutor`
(``--executor sharded``), lives in :mod:`repro.mr.sharded`: instead of
re-shipping each round's grouped batch to stateless pool workers, its
persistent workers own a contiguous node range (memory-mapping their
shard of a partitioned GraphStore) and rounds exchange only the
candidates that cross shard boundaries.
"""

from __future__ import annotations

import pickle
import weakref
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.mr.partitioner import hash_partition, hash_partition_array

__all__ = [
    "SerialExecutor",
    "MultiprocessingExecutor",
    "VectorExecutor",
    "SharedMemoryExecutor",
    "MmapExecutor",
    "make_executor",
    "EXECUTOR_NAMES",
]

Reducer = Callable[[Hashable, List[object]], Iterable[Tuple[Hashable, object]]]


def _apply_shard(args):
    """Run a reducer over one worker's shard of key groups (picklable)."""
    shard, reducer = args
    out: List[Tuple[Hashable, object]] = []
    load = 0
    for key, values in shard:
        load += len(values)
        produced = list(reducer(key, values))
        load += len(produced)
        out.extend(produced)
    return out, load


def _shard_groups(
    groups: Dict[Hashable, List[object]], num_workers: int
) -> List[List[Tuple[Hashable, List[object]]]]:
    shards: List[List[Tuple[Hashable, List[object]]]] = [
        [] for _ in range(num_workers)
    ]
    for key, values in groups.items():
        shards[hash_partition(key, num_workers)].append((key, values))
    return shards


class SerialExecutor:
    """Apply all reducers in-process, modelling ``num_workers`` machines."""

    def run(
        self,
        groups: Dict[Hashable, List[object]],
        reducer: Reducer,
        num_workers: int,
    ) -> Tuple[List[Tuple[Hashable, object]], List[int]]:
        shards = _shard_groups(groups, num_workers)
        output: List[Tuple[Hashable, object]] = []
        loads: List[int] = []
        for shard in shards:
            out, load = _apply_shard((shard, reducer))
            output.extend(out)
            loads.append(load)
        return output, loads


class MultiprocessingExecutor:
    """Apply reducers through a :mod:`multiprocessing` pool.

    Parameters
    ----------
    processes:
        Pool size; defaults to ``num_workers`` passed at run time (capped
        at the host CPU count by the pool itself).

    Notes
    -----
    The pool is created lazily on first use and reused across rounds; call
    :meth:`close` (or use the instance as a context manager) when done.
    """

    def __init__(self, processes: int = None):
        self.processes = processes
        self._pool = None

    def _ensure_pool(self, num_workers: int):
        if self._pool is None:
            import multiprocessing

            size = self.processes or num_workers
            self._pool = multiprocessing.Pool(processes=size)
        return self._pool

    def run(
        self,
        groups: Dict[Hashable, List[object]],
        reducer: Reducer,
        num_workers: int,
    ) -> Tuple[List[Tuple[Hashable, object]], List[int]]:
        shards = _shard_groups(groups, num_workers)
        pool = self._ensure_pool(num_workers)
        results = pool.map(_apply_shard, [(shard, reducer) for shard in shards])
        output: List[Tuple[Hashable, object]] = []
        loads: List[int] = []
        for out, load in results:
            output.extend(out)
            loads.append(load)
        return output, loads

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class VectorExecutor:
    """Vectorized single-process backend for batch rounds.

    ``run_batch`` applies the batch reducer to every group in one call —
    no per-key Python loop, no per-pair objects.  Legacy per-key rounds
    fall back to the serial shard loop so algorithms can mix both round
    kinds on one engine.
    """

    #: Batch reducers run synchronously in the engine's process, so the
    #: engine may hand scatter-capable reducers the ungrouped batch
    #: (skipping the shuffle permutation entirely).
    in_process_batch = True

    def run(
        self,
        groups: Dict[Hashable, List[object]],
        reducer: Reducer,
        num_workers: int,
    ) -> Tuple[List[Tuple[Hashable, object]], List[int]]:
        return SerialExecutor().run(groups, reducer, num_workers)

    def run_batch(
        self,
        keys: np.ndarray,
        offsets: np.ndarray,
        values: np.ndarray,
        reducer,
        num_workers: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return reducer(keys, offsets, values)


def _attach_shared(name: str, deregister: bool):
    """Attach to a shared-memory block without racing the resource tracker.

    Workers only borrow the block — the parent owns creation and unlink.
    Under a ``spawn``/``forkserver`` pool each worker has its *own*
    resource tracker, which would warn about a "leaked" block at exit, so
    the attach is deregistered (``deregister=True``).  Under ``fork`` the
    tracker process is shared with the parent and deregistering would
    race the parent's unlink, so the registration is left alone.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if deregister:
        try:  # pragma: no cover - tracker layout is an implementation detail
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


# --------------------------------------------------------------------- #
# Round payloads: parent-side publication of one round's grouped batch
# --------------------------------------------------------------------- #


class _RoundPayload:
    """One round's published ``(keys, offsets, values)`` batch.

    A context manager whose cleanup is *also* registered as a
    ``weakref.finalize`` finalizer, so the published resources (shared
    memory segments or spill files) are reclaimed on every exit path:
    normal completion, a worker raising mid-round, the parent abandoning
    the round, or interpreter shutdown.  ``close`` is idempotent.
    """

    _finalizer = None

    @property
    def nbytes(self) -> int:
        """Bytes published zero-copy (for the shipping accounting)."""
        return self._nbytes

    def handle(self):
        """Picklable descriptor workers use to map the batch (no arrays)."""
        raise NotImplementedError

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()  # runs cleanup once, then detaches

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class _ShmPayload(_RoundPayload):
    """Batch published as three ``multiprocessing.shared_memory`` blocks."""

    def __init__(self, keys, offsets, values, *, deregister: bool):
        from multiprocessing import shared_memory

        self._deregister = deregister
        self._nbytes = 0
        blocks = []
        try:
            for array in (keys, offsets, values):
                array = np.ascontiguousarray(array)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1)
                )
                blocks.append(shm)
                np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)[
                    ...
                ] = array
                self._nbytes += array.nbytes
        except BaseException:
            self._cleanup(blocks)
            raise
        self._names = tuple(shm.name for shm in blocks)
        self._finalizer = weakref.finalize(self, self._cleanup, blocks)

    @staticmethod
    def _cleanup(blocks) -> None:
        for shm in blocks:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def handle(self):
        return ("shm", self._names, self._deregister)


class _MmapPayload(_RoundPayload):
    """Batch spilled to one file that workers memory-map read-only.

    Sections are 64-byte aligned, mirroring the GraphStore layout; the
    handle carries only the path and section offsets.  The file lives in
    ``spill_dir`` (default: the system temp directory, usually tmpfs- or
    page-cache-backed, so a warm round never touches the disk).
    """

    def __init__(self, keys, offsets, values, *, spill_dir=None):
        import os
        import tempfile

        fd, path = tempfile.mkstemp(
            prefix="repro-round-", suffix=".batch", dir=spill_dir
        )
        self._nbytes = 0
        section_offsets = []
        try:
            with os.fdopen(fd, "wb") as fh:
                pos = 0
                for array in (keys, offsets, values):
                    array = np.ascontiguousarray(array)
                    pad = (-pos) % 64
                    fh.write(b"\x00" * pad)
                    pos += pad
                    section_offsets.append(pos)
                    data = array.tobytes()
                    fh.write(data)
                    pos += len(data)
                    self._nbytes += array.nbytes
        except BaseException:
            self._cleanup(path)
            raise
        self.path = path
        self._section_offsets = tuple(section_offsets)
        self._finalizer = weakref.finalize(self, self._cleanup, path)

    @staticmethod
    def _cleanup(path) -> None:
        import os

        try:
            os.unlink(path)
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def handle(self):
        return ("mmap", self.path, self._section_offsets)


def _map_payload(handle, g: int, rows: int, width: int):
    """Worker side: build zero-copy batch views from a payload handle.

    Returns ``(keys, offsets, values, closers)``; the caller must call
    every closer when done (shared-memory attaches need an explicit
    ``close``; mmaps are dropped with their arrays).
    """
    kind = handle[0]
    if kind == "shm":
        _, names, deregister = handle
        closers = []
        try:
            shm_k = _attach_shared(names[0], deregister)
            closers.append(shm_k.close)
            keys = np.ndarray((g,), dtype=np.int64, buffer=shm_k.buf)
            shm_o = _attach_shared(names[1], deregister)
            closers.append(shm_o.close)
            offsets = np.ndarray((g + 1,), dtype=np.int64, buffer=shm_o.buf)
            shm_v = _attach_shared(names[2], deregister)
            closers.append(shm_v.close)
            values = np.ndarray(
                (rows, width), dtype=np.float64, buffer=shm_v.buf
            )
        except BaseException:
            # A later attach failing must not leak the earlier mappings
            # in this long-lived pool worker.
            for close in closers:
                close()
            raise
        return keys, offsets, values, closers
    if kind == "mmap":
        import mmap as _mmap

        _, path, (k_off, o_off, v_off) = handle
        with open(path, "rb") as fh:
            buf = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
        keys = np.frombuffer(buf, dtype=np.int64, count=g, offset=k_off)
        offsets = np.frombuffer(buf, dtype=np.int64, count=g + 1, offset=o_off)
        values = np.frombuffer(
            buf, dtype=np.float64, count=rows * width, offset=v_off
        ).reshape(rows, width)
        return keys, offsets, values, []
    raise ValueError(f"unknown payload handle kind {kind!r}")


def _reduce_batch_shard(handle, shape, group_idx_bytes, reducer):
    """Worker side of the pool batch backends.

    Reconstructs the grouped batch from the published payload (shared
    memory or mmap — never pickle), gathers this worker's groups,
    applies the batch reducer, and returns the shard's output (small
    relative to the input; plain pickling suffices).
    """
    g, rows, width = shape
    gidx = np.frombuffer(group_idx_bytes, dtype=np.int64)
    keys, offsets, values, closers = _map_payload(handle, g, rows, width)
    try:
        counts = offsets[gidx + 1] - offsets[gidx]
        total = int(counts.sum())
        ends = np.cumsum(counts)
        row_idx = (
            np.arange(total, dtype=np.int64)
            - np.repeat(ends - counts, counts)
            + np.repeat(offsets[gidx], counts)
        )
        shard_keys = keys[gidx].copy()
        shard_offsets = np.concatenate(([0], ends)).astype(np.int64)
        shard_values = values[row_idx]

        out_keys, out_values, out_counts = reducer(
            shard_keys, shard_offsets, shard_values
        )
        return (
            np.ascontiguousarray(out_keys),
            np.ascontiguousarray(out_values),
            np.ascontiguousarray(out_counts),
        )
    finally:
        for close in closers:
            close()


class _PoolBatchExecutor:
    """Shared machinery of the process-pool batch backends.

    Subclasses implement :meth:`_publish` to choose the zero-copy
    transport (shared memory vs spill file + mmap).  Everything else —
    pool lifecycle, sharding, the worker protocol, result scatter, and
    the shipping accounting — is identical.

    Parameters
    ----------
    processes:
        Pool size; defaults to ``min(num_workers, cpu_count)`` at first
        use.

    Attributes
    ----------
    bytes_shipped_per_round:
        Pickled bytes submitted to the pool each batch round (payload
        handle + group indices + reducer reference; measured as the
        once-per-round fixed part plus each shard's raw group-index
        bytes, so the accounting itself does not re-serialize anything
        on the hot path).  This is the quantity that must stay
        O(metadata): the zero-copy tests assert it never scales with
        the graph or candidate arrays.
    bytes_published_per_round:
        Bytes each round placed in the zero-copy transport instead.

    Notes
    -----
    The pool is created lazily and reused across rounds; call
    :meth:`close` (or use the instance as a context manager) when done.
    Batch reducers must be picklable by reference (module-level functions
    or ``functools.partial`` of them).  Legacy per-key rounds run through
    the serial shard loop in-process.
    """

    def __init__(self, processes: Optional[int] = None):
        self.processes = processes
        self._pool = None
        self._ctx = None
        self.bytes_shipped_per_round: List[int] = []
        self.bytes_published_per_round: List[int] = []

    @property
    def bytes_shipped(self) -> int:
        """Total pickled bytes submitted to workers across all rounds."""
        return sum(self.bytes_shipped_per_round)

    # -- legacy per-key rounds ----------------------------------------- #

    def run(
        self,
        groups: Dict[Hashable, List[object]],
        reducer: Reducer,
        num_workers: int,
    ) -> Tuple[List[Tuple[Hashable, object]], List[int]]:
        return SerialExecutor().run(groups, reducer, num_workers)

    # -- batch rounds --------------------------------------------------- #

    def _ensure_pool(self, num_workers: int):
        if self._pool is None:
            import multiprocessing
            import os
            from concurrent.futures import ProcessPoolExecutor

            # Build (and load) the native kernel library once in the
            # parent before any worker starts: forked children inherit
            # the loaded .so, and spawn-based children find the cached
            # build instead of racing N simultaneous compiles.  A
            # no-compiler host is a cheap no-op (pure-tier fallback).
            from repro.mr import native

            native.native_available()

            # Prefer fork: workers share the parent's resource tracker,
            # start instantly, and inherit mmap-backed graphs without a
            # single copied page; fall back to the platform default
            # elsewhere.
            methods = multiprocessing.get_all_start_methods()
            self._ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            size = self.processes or max(
                1, min(num_workers, os.cpu_count() or 1)
            )
            self._pool = ProcessPoolExecutor(max_workers=size, mp_context=self._ctx)
        return self._pool

    def _publish(self, keys, offsets, values) -> _RoundPayload:
        raise NotImplementedError

    def run_batch(
        self,
        keys: np.ndarray,
        offsets: np.ndarray,
        values: np.ndarray,
        reducer,
        num_workers: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        g = len(keys)
        width = values.shape[1]
        workers = hash_partition_array(keys, num_workers)
        shards = [np.flatnonzero(workers == p) for p in range(num_workers)]
        shards = [s for s in shards if len(s)]
        if not shards:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, width), dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )

        pool = self._ensure_pool(num_workers)
        shape = (g, len(values), width)

        with self._publish(keys, offsets, values) as payload:
            handle = payload.handle()
            # The handle/shape/reducer part of every shard's args is
            # identical — pickle it once for the accounting instead of
            # re-serializing per shard on the hot path.
            fixed_cost = len(
                pickle.dumps(
                    (handle, shape, reducer),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
            shipped = 0
            futures = []
            for gidx in shards:
                gidx_bytes = gidx.tobytes()
                shipped += fixed_cost + len(gidx_bytes)
                futures.append(
                    pool.submit(
                        _reduce_batch_shard, handle, shape, gidx_bytes, reducer
                    )
                )
            self.bytes_shipped_per_round.append(shipped)
            self.bytes_published_per_round.append(payload.nbytes)
            # Settle every future before the payload is reclaimed: a
            # worker that raises must not strand siblings on an unlinked
            # segment (and a failing round must still clean up — the
            # lifecycle test asserts no segment survives).
            results = []
            first_error = None
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                from concurrent.futures.process import BrokenProcessPool

                if isinstance(first_error, (BrokenProcessPool, BrokenPipeError)):
                    # A pool process died (OOM kill, SIGKILL): surface
                    # the structured fault so the recovery loop can
                    # rebuild the pool and replay, instead of the raw
                    # executor internals.  The pool object is broken
                    # beyond this round either way.
                    from repro.errors import WorkerFailure

                    raise WorkerFailure(
                        f"pool worker died: {first_error!r}"
                    ) from first_error
                raise first_error

        out_keys = np.concatenate([r[0] for r in results])
        out_values = np.concatenate([r[1] for r in results])
        # Scatter each shard's per-group output counts back to the
        # engine's group order so load attribution matches VectorExecutor.
        out_counts = np.zeros(g, dtype=np.int64)
        for gidx, (_, _, counts) in zip(shards, results):
            out_counts[gidx] = counts
        return out_keys, out_values, out_counts

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class SharedMemoryExecutor(_PoolBatchExecutor):
    """Parallel batch backend: process pool + shared-memory shards.

    Each round the grouped key/offset/value arrays are published once in
    ``multiprocessing.shared_memory`` blocks; every pool worker receives
    only the block names plus its group-index list, builds zero-copy
    views, and reduces its shard.  Unlike
    :class:`MultiprocessingExecutor`, the payload is never pickled, so
    the per-round overhead is O(shard metadata) instead of O(data).

    See :class:`_PoolBatchExecutor` for the pool lifecycle, accounting
    attributes, and per-key fallback.
    """

    def _publish(self, keys, offsets, values) -> _RoundPayload:
        deregister = self._ctx.get_start_method() != "fork"
        return _ShmPayload(keys, offsets, values, deregister=deregister)


class MmapExecutor(_PoolBatchExecutor):
    """Parallel batch backend: process pool + memory-mapped spill files.

    Each round the grouped arrays are written once into a spill file
    whose sections are 64-byte aligned; workers receive the *path and
    section offsets* — never arrays — and build read-only mmap views.
    On a warm page cache this is byte-for-byte the shared-memory
    transport minus ``/dev/shm`` (helpful in containers with tiny shm
    mounts), and the spill file is a natural hand-off point for a future
    multi-host transport.

    Parameters
    ----------
    processes:
        Pool size; defaults to ``min(num_workers, cpu_count)``.
    spill_dir:
        Directory for the per-round spill files; defaults to the system
        temp directory.  Files are removed as each round completes (or
        fails — the payload finalizer guarantees it).
    """

    def __init__(
        self, processes: Optional[int] = None, *, spill_dir=None
    ):
        super().__init__(processes=processes)
        self.spill_dir = spill_dir

    def _publish(self, keys, offsets, values) -> _RoundPayload:
        return _MmapPayload(keys, offsets, values, spill_dir=self.spill_dir)


#: CLI/config names of the selectable backends.
EXECUTOR_NAMES = ("serial", "vector", "parallel", "mmap", "sharded")

#: Backends that run a process pool (and hence default to CPU-count
#: workers rather than the single-machine simulation).
POOL_EXECUTOR_NAMES = ("parallel", "mmap")


def make_executor(
    name: str, *, processes: Optional[int] = None, shards: Optional[int] = None
):
    """Build an executor from its CLI/config name.

    ``serial`` is the paper-literal per-key simulation, ``vector`` the
    single-process vectorized batch backend, ``parallel`` the
    shared-memory process-pool backend, ``mmap`` the spill-file
    process-pool backend, and ``sharded`` the owner-compute backend of
    :mod:`repro.mr.sharded` (persistent shard-owning workers, boundary-
    only exchange; ``shards`` sets the shard count, defaulting to
    ``processes`` or the CPU count).  Raises ``ValueError`` on any
    other name.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "vector":
        return VectorExecutor()
    if name == "parallel":
        return SharedMemoryExecutor(processes=processes)
    if name == "mmap":
        return MmapExecutor(processes=processes)
    if name == "sharded":
        from repro.mr.sharded import ShardedExecutor

        return ShardedExecutor(num_shards=shards or processes)
    raise ValueError(
        f"unknown executor {name!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
    )
