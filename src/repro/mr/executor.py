"""Execution backends for the MR engine.

For legacy per-key rounds the engine hands an executor a mapping
``{key: [values]}``; the executor partitions the key groups across
``num_workers`` simulated machines, applies the reducer to every group,
and reports per-worker loads so the engine can accumulate the round's
critical-path cost.  For batch rounds (see :mod:`repro.mr.batch`) the
engine performs the vectorized shuffle itself and hands executors that
implement ``run_batch`` the grouped ``(keys, offsets, values)`` arrays.

Four backends are provided:

* :class:`SerialExecutor` — applies per-key reducers in one process.
  This is the default and the paper-literal simulation; worker loads are
  still tracked so the critical-path *model* reflects a multi-machine
  platform.
* :class:`MultiprocessingExecutor` — fans per-key worker shards out to a
  process pool.  Reducers must be picklable (module-level functions).
  Every key group is re-pickled each round, so the speedup rarely covers
  the serialization cost; it survives as the contrast case for the
  shared-memory backend.
* :class:`VectorExecutor` — runs batch rounds by applying the batch
  reducer to all groups in one NumPy call, in-process.  This is the fast
  single-host backend (``--executor vector``).
* :class:`SharedMemoryExecutor` — runs batch rounds on a
  :class:`concurrent.futures.ProcessPoolExecutor`, shipping the grouped
  arrays to workers through ``multiprocessing.shared_memory`` so the
  payload crosses the process boundary exactly once and pickle-free
  (``--executor parallel``).

The two batch backends still accept legacy per-key rounds (delegated to
the serial shard loop), so one engine can mix batch hot-path rounds with
per-key rounds in the same computation.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.mr.partitioner import hash_partition, hash_partition_array

__all__ = [
    "SerialExecutor",
    "MultiprocessingExecutor",
    "VectorExecutor",
    "SharedMemoryExecutor",
    "make_executor",
    "EXECUTOR_NAMES",
]

Reducer = Callable[[Hashable, List[object]], Iterable[Tuple[Hashable, object]]]


def _apply_shard(args):
    """Run a reducer over one worker's shard of key groups (picklable)."""
    shard, reducer = args
    out: List[Tuple[Hashable, object]] = []
    load = 0
    for key, values in shard:
        load += len(values)
        produced = list(reducer(key, values))
        load += len(produced)
        out.extend(produced)
    return out, load


def _shard_groups(
    groups: Dict[Hashable, List[object]], num_workers: int
) -> List[List[Tuple[Hashable, List[object]]]]:
    shards: List[List[Tuple[Hashable, List[object]]]] = [
        [] for _ in range(num_workers)
    ]
    for key, values in groups.items():
        shards[hash_partition(key, num_workers)].append((key, values))
    return shards


class SerialExecutor:
    """Apply all reducers in-process, modelling ``num_workers`` machines."""

    def run(
        self,
        groups: Dict[Hashable, List[object]],
        reducer: Reducer,
        num_workers: int,
    ) -> Tuple[List[Tuple[Hashable, object]], List[int]]:
        shards = _shard_groups(groups, num_workers)
        output: List[Tuple[Hashable, object]] = []
        loads: List[int] = []
        for shard in shards:
            out, load = _apply_shard((shard, reducer))
            output.extend(out)
            loads.append(load)
        return output, loads


class MultiprocessingExecutor:
    """Apply reducers through a :mod:`multiprocessing` pool.

    Parameters
    ----------
    processes:
        Pool size; defaults to ``num_workers`` passed at run time (capped
        at the host CPU count by the pool itself).

    Notes
    -----
    The pool is created lazily on first use and reused across rounds; call
    :meth:`close` (or use the instance as a context manager) when done.
    """

    def __init__(self, processes: int = None):
        self.processes = processes
        self._pool = None

    def _ensure_pool(self, num_workers: int):
        if self._pool is None:
            import multiprocessing

            size = self.processes or num_workers
            self._pool = multiprocessing.Pool(processes=size)
        return self._pool

    def run(
        self,
        groups: Dict[Hashable, List[object]],
        reducer: Reducer,
        num_workers: int,
    ) -> Tuple[List[Tuple[Hashable, object]], List[int]]:
        shards = _shard_groups(groups, num_workers)
        pool = self._ensure_pool(num_workers)
        results = pool.map(_apply_shard, [(shard, reducer) for shard in shards])
        output: List[Tuple[Hashable, object]] = []
        loads: List[int] = []
        for out, load in results:
            output.extend(out)
            loads.append(load)
        return output, loads

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class VectorExecutor:
    """Vectorized single-process backend for batch rounds.

    ``run_batch`` applies the batch reducer to every group in one call —
    no per-key Python loop, no per-pair objects.  Legacy per-key rounds
    fall back to the serial shard loop so algorithms can mix both round
    kinds on one engine.
    """

    def run(
        self,
        groups: Dict[Hashable, List[object]],
        reducer: Reducer,
        num_workers: int,
    ) -> Tuple[List[Tuple[Hashable, object]], List[int]]:
        return SerialExecutor().run(groups, reducer, num_workers)

    def run_batch(
        self,
        keys: np.ndarray,
        offsets: np.ndarray,
        values: np.ndarray,
        reducer,
        num_workers: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return reducer(keys, offsets, values)


def _attach_shared(name: str, deregister: bool):
    """Attach to a shared-memory block without racing the resource tracker.

    Workers only borrow the block — the parent owns creation and unlink.
    Under a ``spawn``/``forkserver`` pool each worker has its *own*
    resource tracker, which would warn about a "leaked" block at exit, so
    the attach is deregistered (``deregister=True``).  Under ``fork`` the
    tracker process is shared with the parent and deregistering would
    race the parent's unlink, so the registration is left alone.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if deregister:
        try:  # pragma: no cover - tracker layout is an implementation detail
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


def _reduce_batch_shard(meta, group_idx_bytes, reducer):
    """Worker side of :meth:`SharedMemoryExecutor.run_batch`.

    Reconstructs the grouped batch from shared memory, gathers this
    worker's groups, applies the batch reducer, and returns the shard's
    output (small relative to the input; plain pickling suffices).
    """
    keys_name, offsets_name, values_name, g, rows, width, deregister = meta
    gidx = np.frombuffer(group_idx_bytes, dtype=np.int64)
    shms = []
    try:
        shm_k = _attach_shared(keys_name, deregister)
        shms.append(shm_k)
        keys = np.ndarray((g,), dtype=np.int64, buffer=shm_k.buf)
        shm_o = _attach_shared(offsets_name, deregister)
        shms.append(shm_o)
        offsets = np.ndarray((g + 1,), dtype=np.int64, buffer=shm_o.buf)
        shm_v = _attach_shared(values_name, deregister)
        shms.append(shm_v)
        values = np.ndarray((rows, width), dtype=np.float64, buffer=shm_v.buf)

        counts = offsets[gidx + 1] - offsets[gidx]
        total = int(counts.sum())
        ends = np.cumsum(counts)
        row_idx = (
            np.arange(total, dtype=np.int64)
            - np.repeat(ends - counts, counts)
            + np.repeat(offsets[gidx], counts)
        )
        shard_keys = keys[gidx].copy()
        shard_offsets = np.concatenate(([0], ends)).astype(np.int64)
        shard_values = values[row_idx]

        out_keys, out_values, out_counts = reducer(
            shard_keys, shard_offsets, shard_values
        )
        return (
            np.ascontiguousarray(out_keys),
            np.ascontiguousarray(out_values),
            np.ascontiguousarray(out_counts),
        )
    finally:
        for shm in shms:
            shm.close()


class SharedMemoryExecutor:
    """Parallel batch backend: process pool + shared-memory shards.

    Each round the grouped key/offset/value arrays are published once in
    ``multiprocessing.shared_memory`` blocks; every pool worker receives
    only the block names plus its group-index list, builds zero-copy
    views, and reduces its shard.  Unlike
    :class:`MultiprocessingExecutor`, the payload is never pickled, so
    the per-round overhead is O(shard metadata) instead of O(data).

    Parameters
    ----------
    processes:
        Pool size; defaults to ``min(num_workers, cpu_count)`` at first
        use.

    Notes
    -----
    The pool is created lazily and reused across rounds; call
    :meth:`close` (or use the instance as a context manager) when done.
    Batch reducers must be picklable by reference (module-level functions
    or ``functools.partial`` of them).  Legacy per-key rounds run through
    the serial shard loop in-process.
    """

    def __init__(self, processes: Optional[int] = None):
        self.processes = processes
        self._pool = None
        self._ctx = None

    # -- legacy per-key rounds ----------------------------------------- #

    def run(
        self,
        groups: Dict[Hashable, List[object]],
        reducer: Reducer,
        num_workers: int,
    ) -> Tuple[List[Tuple[Hashable, object]], List[int]]:
        return SerialExecutor().run(groups, reducer, num_workers)

    # -- batch rounds --------------------------------------------------- #

    def _ensure_pool(self, num_workers: int):
        if self._pool is None:
            import multiprocessing
            import os
            from concurrent.futures import ProcessPoolExecutor

            # Prefer fork: workers share the parent's resource tracker and
            # start instantly; fall back to the platform default elsewhere.
            methods = multiprocessing.get_all_start_methods()
            self._ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            size = self.processes or max(
                1, min(num_workers, os.cpu_count() or 1)
            )
            self._pool = ProcessPoolExecutor(max_workers=size, mp_context=self._ctx)
        return self._pool

    def run_batch(
        self,
        keys: np.ndarray,
        offsets: np.ndarray,
        values: np.ndarray,
        reducer,
        num_workers: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        from multiprocessing import shared_memory

        g = len(keys)
        width = values.shape[1]
        workers = hash_partition_array(keys, num_workers)
        shards = [np.flatnonzero(workers == p) for p in range(num_workers)]
        shards = [s for s in shards if len(s)]
        if not shards:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, width), dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )

        pool = self._ensure_pool(num_workers)

        def publish(array):
            array = np.ascontiguousarray(array)
            shm = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
            np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)[...] = array
            return shm

        shms = []
        try:
            for array in (keys, offsets, values):
                shms.append(publish(array))
            deregister = self._ctx.get_start_method() != "fork"
            meta = (
                shms[0].name, shms[1].name, shms[2].name,
                g, len(values), width, deregister,
            )
            futures = [
                pool.submit(
                    _reduce_batch_shard, meta, gidx.tobytes(), reducer
                )
                for gidx in shards
            ]
            results = [f.result() for f in futures]
        finally:
            for shm in shms:
                shm.close()
                shm.unlink()

        out_keys = np.concatenate([r[0] for r in results])
        out_values = np.concatenate([r[1] for r in results])
        # Scatter each shard's per-group output counts back to the
        # engine's group order so load attribution matches VectorExecutor.
        out_counts = np.zeros(g, dtype=np.int64)
        for gidx, (_, _, counts) in zip(shards, results):
            out_counts[gidx] = counts
        return out_keys, out_values, out_counts

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


#: CLI/config names of the selectable backends.
EXECUTOR_NAMES = ("serial", "vector", "parallel")


def make_executor(name: str, *, processes: Optional[int] = None):
    """Build an executor from its CLI/config name.

    ``serial`` is the paper-literal per-key simulation, ``vector`` the
    single-process vectorized batch backend, ``parallel`` the
    shared-memory process-pool backend.  Raises ``ValueError`` on any
    other name.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "vector":
        return VectorExecutor()
    if name == "parallel":
        return SharedMemoryExecutor(processes=processes)
    raise ValueError(
        f"unknown executor {name!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
    )
