"""Round-by-round execution traces.

``Counters`` aggregates; a :class:`RoundTrace` additionally keeps the
per-round series — messages, updates, and a phase label — which is what
you need to *see* the algorithms' shapes: CLUSTER's per-stage sawtooth
(forced broadcast, geometric decay to fixpoint, next stage), Δ-stepping's
long flat tail of small buckets, ANF's diameter-length plateau.  The
``profile`` benches render these series as sparkline-style charts.

A trace subclasses :class:`~repro.mr.metrics.Counters`, so any API that
accepts ``counters=`` can be handed one with zero further changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.mr.metrics import Counters

__all__ = ["RoundRecord", "RoundTrace"]


@dataclass(frozen=True)
class RoundRecord:
    """One round's traffic."""

    index: int
    messages: int
    updates: int
    relaxations: int
    phase: str


@dataclass
class RoundTrace(Counters):
    """A :class:`Counters` that also records the per-round series.

    Use :meth:`set_phase` from driver code to label subsequent rounds
    (e.g. ``stage-3`` or ``bucket-17``); algorithms that are handed a
    plain ``Counters`` never notice the difference.
    """

    records: List[RoundRecord] = field(default_factory=list)
    _phase: str = ""

    def set_phase(self, phase: str) -> None:
        """Label all subsequent rounds with ``phase``."""
        self._phase = phase

    def record_round(self, messages: int, updates: int, relaxations: int = 0) -> None:
        super().record_round(messages, updates, relaxations)
        self.records.append(
            RoundRecord(
                index=len(self.records),
                messages=int(messages),
                updates=int(updates),
                relaxations=int(relaxations),
                phase=self._phase,
            )
        )

    # ------------------------------------------------------------------ #

    def series(self, field_name: str = "messages") -> List[int]:
        """The per-round series of one field (for charts)."""
        return [getattr(r, field_name) for r in self.records]

    def phases(self) -> List[str]:
        """Distinct phase labels in first-seen order."""
        seen: List[str] = []
        for record in self.records:
            if record.phase not in seen:
                seen.append(record.phase)
        return seen

    def phase_summary(self) -> List[dict]:
        """Aggregated rounds/messages/updates per phase label."""
        out: List[dict] = []
        for phase in self.phases():
            rows = [r for r in self.records if r.phase == phase]
            out.append(
                {
                    "phase": phase or "(unlabelled)",
                    "rounds": len(rows),
                    "messages": sum(r.messages for r in rows),
                    "updates": sum(r.updates for r in rows),
                }
            )
        return out

    def sparkline(self, field_name: str = "messages", *, width: int = 60) -> str:
        """Compact unicode-free chart of a per-round series.

        Buckets the series into ``width`` columns (max within bucket) and
        renders each column with a height character from ``" .:-=+*#%@"``.
        """
        values = self.series(field_name)
        if not values:
            return "(no rounds recorded)"
        levels = " .:-=+*#%@"
        if len(values) > width:
            per = len(values) / width
            values = [
                max(values[int(i * per) : max(int((i + 1) * per), int(i * per) + 1)])
                for i in range(width)
            ]
        peak = max(max(values), 1)
        return "".join(
            levels[min(int(v / peak * (len(levels) - 1) + 0.5), len(levels) - 1)]
            for v in values
        )
