"""Deterministic fault injection for the data and process planes.

``REPRO_FAULT_PLAN`` names a schedule of faults executed at exact
ordinals, so the crash/recovery *and* corruption test matrices are
reproducible down to the round::

    REPRO_FAULT_PLAN="kill:shard=2,round=5;kill:shard=driver,round=9"
    REPRO_FAULT_PLAN="delay:shard=1,round=3,seconds=2.5"
    REPRO_FAULT_PLAN="corrupt:target=ckpt,round=4;enospc:target=store,round=1"

Actions:

``kill:shard=<k|driver>,round=<r>``
    Kill shard worker *k* (``os._exit(1)`` — indistinguishable from a
    SIGKILL as far as the driver's pipes are concerned; under the
    in-process pool a simulated :class:`~repro.errors.WorkerFailure` is
    raised instead) or the driver itself at growing-step ``r``.
``delay:shard=<k>,round=<r>,seconds=<s>``
    Make shard worker *k* sleep ``s`` seconds inside the step — the
    deterministic way to trip the ``REPRO_WORKER_TIMEOUT_S`` deadline
    supervision without an actual hang.
``ioerror:target=<store|ckpt>,round=<r>`` / ``enospc:target=...``
    Raise ``OSError(EIO)`` / ``OSError(ENOSPC)`` at the start of the
    targeted write: checkpoint round ``r`` for ``ckpt``, the ``r``-th
    ``write_store`` call of the process (1-based) for ``store``.
``corrupt:target=<store|ckpt>,round=<r>``
    Flip one payload byte in the artifact *after* it publishes — the
    deterministic stand-in for silent media corruption that the verify
    / quarantine machinery must catch.

Each entry fires **once per process**: the plan is consumed as it
triggers, so an in-process recovery replay passing through the same
ordinal does not re-fire (the counters restored from the checkpoint
keep the ordinal monotone, and the consumed set persists).  A resumed
*process* starts with a fresh plan — resume tests unset the variable.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "get_fault_plan",
    "maybe_kill_driver",
    "reset_fault_plan",
    "store_write_ordinal",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Sentinel shard id meaning "kill the driver process itself".
DRIVER = "driver"

_ACTIONS = ("kill", "delay", "corrupt", "ioerror", "enospc")
_TARGETS = ("store", "ckpt")


class FaultPlan:
    """Parsed, one-shot-per-entry fault schedule."""

    def __init__(self, raw: str):
        self.raw = raw
        #: (action, subject, round) -> entry dict; subject is a shard id
        #: (int or ``DRIVER``) for kill/delay, a target name otherwise.
        self._entries: Dict[Tuple[str, object, int], dict] = {}
        self._consumed: set = set()
        for entry in raw.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            action, _, params = entry.partition(":")
            action = action.strip()
            if action not in _ACTIONS:
                raise ValueError(
                    f"unsupported fault action {action!r} in plan {raw!r}"
                )
            shard: Optional[object] = None
            rnd: Optional[int] = None
            target: Optional[str] = None
            seconds: Optional[float] = None
            for field in params.split(","):
                key, _, value = field.partition("=")
                key = key.strip()
                value = value.strip()
                if key == "shard":
                    shard = DRIVER if value == DRIVER else int(value)
                elif key == "round":
                    rnd = int(value)
                elif key == "target":
                    if value not in _TARGETS:
                        raise ValueError(
                            f"unknown fault target {value!r} in plan {raw!r}"
                        )
                    target = value
                elif key == "seconds":
                    seconds = float(value)
                else:
                    raise ValueError(
                        f"unknown fault field {key!r} in plan {raw!r}"
                    )
            if rnd is None:
                raise ValueError(f"fault entry {entry!r} needs round=")
            if action in ("kill", "delay"):
                if shard is None:
                    raise ValueError(f"fault entry {entry!r} needs shard=")
                if action == "delay" and seconds is None:
                    raise ValueError(f"fault entry {entry!r} needs seconds=")
                subject: object = shard
            else:
                if target is None:
                    raise ValueError(f"fault entry {entry!r} needs target=")
                subject = target
            self._entries[(action, subject, rnd)] = {
                "action": action,
                "subject": subject,
                "round": rnd,
                "seconds": seconds,
            }

    def _consume(self, key: Tuple[str, object, int]) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None or key in self._consumed:
            return None
        self._consumed.add(key)
        return entry

    def _subjects(self, action: str, ordinal: int) -> List[object]:
        return [
            subject
            for (act, subject, rnd) in self._entries
            if act == action and rnd == ordinal
        ]

    def shard_kills(self, ordinal: int) -> List[int]:
        """Consume and return the shard ids to kill at this step ordinal.

        Each (round, shard) entry fires at most once per plan instance.
        """
        shards: List[int] = []
        for subject in self._subjects("kill", ordinal):
            if subject == DRIVER:
                continue
            if self._consume(("kill", subject, ordinal)) is not None:
                shards.append(subject)
        return shards

    def driver_kill(self, ordinal: int) -> bool:
        """Consume and return whether the driver dies at this ordinal."""
        return self._consume(("kill", DRIVER, ordinal)) is not None

    def shard_delays(self, ordinal: int) -> Dict[int, float]:
        """Consume and return ``{shard: seconds}`` delays at this ordinal."""
        delays: Dict[int, float] = {}
        for subject in self._subjects("delay", ordinal):
            entry = self._consume(("delay", subject, ordinal))
            if entry is not None:
                delays[subject] = float(entry["seconds"])
        return delays

    def io_fault(self, target: str, ordinal: int) -> Optional[str]:
        """Consume a scheduled I/O failure for ``target`` at this ordinal.

        Returns ``"ioerror"`` or ``"enospc"`` (the caller raises the
        matching ``OSError``), or ``None``.
        """
        for action in ("ioerror", "enospc"):
            if self._consume((action, target, ordinal)) is not None:
                return action
        return None

    def corrupt_fault(self, target: str, ordinal: int) -> bool:
        """Consume and return whether to corrupt ``target`` at this ordinal."""
        return self._consume(("corrupt", target, ordinal)) is not None


_plan: Optional[FaultPlan] = None
_store_writes: int = 0


def store_write_ordinal(advance: bool = False) -> int:
    """The process-wide ``write_store`` ordinal (1-based) fault targets use.

    ``advance=True`` counts a new write and returns its ordinal; the
    corrupting post-publish hook re-reads the same ordinal with
    ``advance=False``.  Reset together with the plan.
    """
    global _store_writes
    if advance:
        _store_writes += 1
    return _store_writes


def get_fault_plan() -> Optional[FaultPlan]:
    """The process-wide plan for the current ``REPRO_FAULT_PLAN`` value.

    Re-parsed (with consumption state reset) whenever the env string
    changes; ``None`` when unset.  Tests that reuse one plan string
    across several runs in a single process must call
    :func:`reset_fault_plan` between runs.
    """
    global _plan
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        _plan = None
        return None
    if _plan is None or _plan.raw != raw:
        _plan = FaultPlan(raw)
    return _plan


def reset_fault_plan() -> None:
    """Forget consumption state so the plan can fire again (test helper)."""
    global _plan, _store_writes
    _plan = None
    _store_writes = 0


def maybe_kill_driver(ordinal: int, checkpoint=None) -> None:
    """Fire a scheduled ``shard=driver`` kill: ``os._exit(1)``, no cleanup.

    Called by the CLUSTER/CLUSTER2 driver loops at each growing-step
    ordinal.  ``os._exit`` skips atexit/finally exactly like a SIGKILL
    would, which is the point — the ``--resume`` tests want a driver
    death that only a durable checkpoint survives.

    ``checkpoint`` (a :class:`RunCheckpointer`), when given, is drained
    before the exit: the plan schedules kills in growing-step ordinals,
    and letting the write-behind publish land first keeps "which rounds
    are durable at ordinal R" deterministic instead of a race between
    the writer thread and the simulated death.
    """
    plan = get_fault_plan()
    if plan is not None and plan.driver_kill(ordinal):
        if checkpoint is not None:
            try:
                checkpoint.flush()
            except Exception:
                pass  # dying anyway; resume falls back to older rounds
        os._exit(1)
