"""Deterministic fault injection for the sharded backend.

``REPRO_FAULT_PLAN`` names a schedule of worker kills that the driver
executes at exact growing-step ordinals, so the crash/recovery test
matrix is reproducible down to the round::

    REPRO_FAULT_PLAN="kill:shard=2,round=5;kill:shard=driver,round=9"

``shard=<k>`` kills shard worker *k* at the start of growing step
``round`` (the worker calls ``os._exit(1)`` — indistinguishable from a
SIGKILL as far as the driver's pipes are concerned; under the
in-process pool a simulated :class:`~repro.errors.WorkerFailure` is
raised instead, since ``os._exit`` would take the driver with it).
``shard=driver`` makes the *driver* process ``os._exit(1)`` at that
step, which is how the CLI ``--resume`` tests produce a SIGKILL-style
death with a durable checkpoint behind it.

Each entry fires **once per process**: the plan is consumed as it
triggers, so an in-process recovery replay passing through the same
ordinal does not re-fire (the counters restored from the checkpoint
keep the ordinal monotone, and the consumed set persists).  A resumed
*process* starts with a fresh plan — resume tests unset the variable.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "get_fault_plan",
    "maybe_kill_driver",
    "reset_fault_plan",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Sentinel shard id meaning "kill the driver process itself".
DRIVER = "driver"


class FaultPlan:
    """Parsed, one-shot-per-entry kill schedule."""

    def __init__(self, raw: str):
        self.raw = raw
        #: round ordinal -> list of shard targets (ints or ``DRIVER``)
        self._kills: Dict[int, List[object]] = {}
        self._consumed: set = set()
        for entry in raw.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            action, _, params = entry.partition(":")
            if action.strip() != "kill":
                raise ValueError(
                    f"unsupported fault action {action.strip()!r} in plan {raw!r}"
                )
            shard: Optional[object] = None
            rnd: Optional[int] = None
            for field in params.split(","):
                key, _, value = field.partition("=")
                key = key.strip()
                value = value.strip()
                if key == "shard":
                    shard = DRIVER if value == DRIVER else int(value)
                elif key == "round":
                    rnd = int(value)
                else:
                    raise ValueError(
                        f"unknown fault field {key!r} in plan {raw!r}"
                    )
            if shard is None or rnd is None:
                raise ValueError(
                    f"fault entry {entry!r} needs both shard= and round="
                )
            self._kills.setdefault(rnd, []).append(shard)

    def shard_kills(self, ordinal: int) -> List[int]:
        """Consume and return the shard ids to kill at this step ordinal.

        Each (round, shard) entry fires at most once per plan instance.
        """
        shards: List[int] = []
        for target in self._kills.get(ordinal, ()):
            if target == DRIVER:
                continue
            key = (ordinal, target)
            if key in self._consumed:
                continue
            self._consumed.add(key)
            shards.append(target)
        return shards

    def driver_kill(self, ordinal: int) -> bool:
        """Consume and return whether the driver dies at this ordinal."""
        key = (ordinal, DRIVER)
        if DRIVER in self._kills.get(ordinal, ()) and key not in self._consumed:
            self._consumed.add(key)
            return True
        return False


_plan: Optional[FaultPlan] = None


def get_fault_plan() -> Optional[FaultPlan]:
    """The process-wide plan for the current ``REPRO_FAULT_PLAN`` value.

    Re-parsed (with consumption state reset) whenever the env string
    changes; ``None`` when unset.  Tests that reuse one plan string
    across several runs in a single process must call
    :func:`reset_fault_plan` between runs.
    """
    global _plan
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        _plan = None
        return None
    if _plan is None or _plan.raw != raw:
        _plan = FaultPlan(raw)
    return _plan


def reset_fault_plan() -> None:
    """Forget consumption state so the plan can fire again (test helper)."""
    global _plan
    _plan = None


def maybe_kill_driver(ordinal: int, checkpoint=None) -> None:
    """Fire a scheduled ``shard=driver`` kill: ``os._exit(1)``, no cleanup.

    Called by the CLUSTER/CLUSTER2 driver loops at each growing-step
    ordinal.  ``os._exit`` skips atexit/finally exactly like a SIGKILL
    would, which is the point — the ``--resume`` tests want a driver
    death that only a durable checkpoint survives.

    ``checkpoint`` (a :class:`RunCheckpointer`), when given, is drained
    before the exit: the plan schedules kills in growing-step ordinals,
    and letting the write-behind publish land first keeps "which rounds
    are durable at ordinal R" deterministic instead of a race between
    the writer thread and the simulated death.
    """
    plan = get_fault_plan()
    if plan is not None and plan.driver_kill(ordinal):
        if checkpoint is not None:
            try:
                checkpoint.flush()
            except Exception:
                pass  # dying anyway; resume falls back to older rounds
        os._exit(1)
